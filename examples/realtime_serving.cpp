// Real-time serving — the deployment architecture of the paper's
// Figure 2(b): a trained APAN model behind the asynchronous pipeline.
// The synchronous link returns a score for every incoming interaction
// in O(encoder + decoder); the k-hop mail propagation runs on a
// background worker, off the latency path.
//
//   ./build/examples/realtime_serving

#include <cstdio>

#include "data/synthetic.h"
#include "serve/async_pipeline.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

int main() {
  using namespace apan;

  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.2));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Train offline first (weights ship to the serving tier).
  core::ApanConfig config;
  config.num_nodes = dataset->num_nodes;
  config.embedding_dim = dataset->feature_dim();
  train::ApanLinkModel trained(config, &dataset->features, /*seed=*/11);
  train::LinkTrainConfig tc;
  tc.max_epochs = 4;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&trained, *dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("offline training done: test AP %.2f%%\n\n",
              100 * report->test.ap);

  // "Deploy": reset streaming state and replay the event stream through
  // the async pipeline, as a production gateway would feed transactions.
  trained.ResetState();
  serve::AsyncPipeline::Options options;
  options.queue_capacity = 64;
  serve::AsyncPipeline pipeline(&trained.model(), options);

  const size_t batch = 200;  // paper's serving batch
  size_t served = 0;
  for (size_t lo = 0; lo + batch <= dataset->events.size(); lo += batch) {
    std::vector<graph::Event> events(dataset->events.begin() + lo,
                                     dataset->events.begin() + lo + batch);
    auto result = pipeline.InferBatch(events);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    served += result->scores.size();
  }
  pipeline.Flush();

  std::printf("served %zu interactions in %zu batches\n", served,
              static_cast<size_t>(pipeline.sync_latency().count()));
  std::printf("\nsynchronous link (what the user waits for):\n");
  std::printf("  mean %.3f ms/batch | p50 %.3f | p99 %.3f\n",
              pipeline.sync_latency().Mean(), pipeline.sync_latency().P50(),
              pipeline.sync_latency().P99());
  std::printf("asynchronous link (graph query + propagation, off-path):\n");
  std::printf("  mean %.3f ms/batch | p50 %.3f | p99 %.3f\n",
              pipeline.async_latency().Mean(),
              pipeline.async_latency().P50(),
              pipeline.async_latency().P99());
  std::printf(
      "\nthe asynchronous link costs %.1fx the synchronous one — this is "
      "the work APAN moves off the user's critical path.\n",
      pipeline.async_latency().Mean() /
          (pipeline.sync_latency().Mean() + 1e-9));
  return 0;
}
