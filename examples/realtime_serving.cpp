// Real-time serving — the deployment architecture of the paper's
// Figure 2(b), scaled out: a trained APAN model behind the sharded
// serving engine. The synchronous link scores every incoming interaction
// with shard-parallel encoding; the k-hop mail propagation runs on
// per-shard background workers, with cross-shard mail routed between
// them (out of order by construction — the §3.6 mailbox absorbs it).
//
// The run ends with a metrics snapshot scraped from the engine's
// obs::Registry — the same per-shard counters, queue high-waters and
// stage histograms a production scrape would export (docs/observability.md).
//
// --transport=inproc|uds picks the shard-to-shard messaging plane:
// in-process delivery, or a Unix-domain-socket lane per shard pair
// carrying serve/wire.h frames (the distributed-deployment shape).
// --trace=<path> records stage spans during the replay and flushes them
// as Chrome trace_event JSON (open at https://ui.perfetto.dev).
//
//   ./build/examples/realtime_serving
//   ./build/examples/realtime_serving --transport=uds --trace=serve.json

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/sharded_engine.h"
#include "serve/transport.h"
#include "tensor/arena.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

int main(int argc, char** argv) {
  using namespace apan;

  serve::TransportKind transport = serve::TransportKind::kInProcess;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      auto kind = serve::ParseTransportKind(arg.substr(strlen("--transport=")));
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      transport = *kind;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = std::string(arg.substr(strlen("--trace=")));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--transport=inproc|uds] [--trace=<path>]\n",
                   argv[0]);
      return 1;
    }
  }
  if (transport == serve::TransportKind::kUnixSocket &&
      !serve::UnixSocketTransport::Available()) {
    std::fprintf(stderr, "--transport=uds: AF_UNIX unavailable here\n");
    return 1;
  }
  if (!trace_path.empty() && !obs::TraceRecorder::kCompiledIn) {
    std::fprintf(stderr,
                 "--trace: tracing compiled out (APAN_TRACING=OFF); "
                 "ignoring\n");
    trace_path.clear();
  }

  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.2));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Train offline first (weights ship to the serving tier).
  core::ApanConfig config;
  config.num_nodes = dataset->num_nodes;
  config.embedding_dim = dataset->feature_dim();
  train::ApanLinkModel trained(config, &dataset->features, /*seed=*/11);
  train::LinkTrainConfig tc;
  tc.max_epochs = 4;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&trained, *dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("offline training done: test AP %.2f%%\n\n",
              100 * report->test.ap);

  // "Deploy": reset streaming state and replay the event stream through
  // the sharded engine, as a production gateway would feed transactions.
  // Each shard owns a hash slice of the node space — a private
  // NodeStateStore (its mailbox slice + z(t−) rows), a graph slice, a
  // bounded inbox, and one propagation worker — while the trained weights
  // are shared const-only across shards (replicate weights, partition
  // state: the paper's §3.6 deployment split).
  trained.ResetState();
  serve::ShardedEngine::Options options;
  options.num_shards = 4;
  options.queue_capacity = 64;
  options.transport = serve::MakeTransportFactory(transport);
  serve::ShardedEngine engine(&trained.model(), options);

  // Arena traffic attributable to serving alone (training ran above).
  const int64_t arena_fresh_before = tensor::TensorArena::TotalFreshImpls();
  const int64_t arena_reused_before = tensor::TensorArena::TotalReusedImpls();

  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().Enable();
  }

  const size_t batch = 200;  // paper's serving batch
  size_t served = 0;
  for (size_t lo = 0; lo + batch <= dataset->events.size(); lo += batch) {
    std::vector<graph::Event> events(dataset->events.begin() + lo,
                                     dataset->events.begin() + lo + batch);
    auto result = engine.InferBatch(events);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    served += result->scores.size();
  }
  engine.Flush();

  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Disable();
    const Status st =
        obs::TraceRecorder::Global().WriteChromeTrace(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "--trace: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const auto stats = engine.stats();
  std::printf(
      "served %zu interactions in %lld batches across %d shards "
      "(transport: %s)\n",
      served, (long long)stats.batches_ingested,
      engine.router().num_shards(), engine.transport_name());
  std::printf("\nsynchronous link (what the user waits for):\n");
  std::printf("  mean %.3f ms/batch | p50 %.3f | p99 %.3f\n",
              engine.sync_latency().Mean(), engine.sync_latency().P50(),
              engine.sync_latency().P99());
  std::printf("asynchronous link (per-shard sampling + mail application):\n");
  std::printf("  mean %.3f ms/merge | p50 %.3f | p99 %.3f\n",
              engine.async_latency().Mean(), engine.async_latency().P50(),
              engine.async_latency().P99());

  // ---- End-of-run metrics snapshot, scraped from the registry ----------
  const obs::Registry::Snapshot snap = engine.registry()->Scrape();
  const int num_shards = engine.router().num_shards();
  const auto* homed = snap.FindCounter("serve.events_homed");
  const auto* merges = snap.FindCounter("serve.batches_propagated");
  const auto* job_hw = snap.FindGauge("serve.job_queue_highwater");
  const auto* mail_hw = snap.FindGauge("serve.mail_queue_highwater");
  std::printf("\nper-shard snapshot (obs::Registry scrape):\n");
  std::printf("  %-6s | %12s | %8s | %10s | %11s\n", "shard", "events homed",
              "merges", "job max q", "mail max q");
  for (int s = 0; s < num_shards; ++s) {
    const size_t cell = static_cast<size_t>(s);
    std::printf("  %-6d | %12lld | %8lld | %10lld | %11lld\n", s,
                homed != nullptr ? (long long)homed->cells[cell] : 0LL,
                merges != nullptr ? (long long)merges->cells[cell] : 0LL,
                job_hw != nullptr ? (long long)job_hw->cells[cell] : 0LL,
                mail_hw != nullptr ? (long long)mail_hw->cells[cell] : 0LL);
  }

  const auto* frames = snap.FindCounter("transport.frames");
  const auto* bytes = snap.FindCounter("transport.bytes");
  std::printf(
      "\ntransport: %lld frames; %lld mail deliveries, %lld crossed "
      "shards (%.1f%%) — out-of-order arrivals the FIFO mailbox absorbs "
      "by keeping slots time-sorted at write (paper §3.6)\n",
      frames != nullptr ? (long long)frames->total : 0LL,
      (long long)stats.mails_routed, (long long)stats.mails_cross_shard,
      stats.mails_routed > 0
          ? 100.0 * static_cast<double>(stats.mails_cross_shard) /
                static_cast<double>(stats.mails_routed)
          : 0.0);
  if (bytes != nullptr && bytes->total > 0) {
    std::printf("  %lld bytes over socket lanes\n", (long long)bytes->total);
  }
  std::printf(
      "tensor arena: %lld fresh allocations, %lld recycled during "
      "serving\n",
      (long long)(tensor::TensorArena::TotalFreshImpls() -
                  arena_fresh_before),
      (long long)(tensor::TensorArena::TotalReusedImpls() -
                  arena_reused_before));

  std::printf("\nstate plane (weights replicated, state partitioned):\n");
  int64_t state_sum = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto& store = engine.state_store(s);
    state_sum += store.MemoryBytes();
    std::printf("  shard %d: %lld nodes, %lld bytes mailbox + z rows\n", s,
                (long long)store.owned_count(),
                (long long)store.MemoryBytes());
  }
  std::printf("  summed: %lld bytes (%.2fx the monolithic store)\n",
              (long long)state_sum,
              static_cast<double>(state_sum) /
                  static_cast<double>(
                      trained.model().state_store().MemoryBytes()));
  if (!trace_path.empty()) {
    std::printf("\ntrace written to %s — open at https://ui.perfetto.dev\n",
                trace_path.c_str());
  }
  return 0;
}
