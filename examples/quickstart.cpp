// Quickstart: generate a temporal graph, train APAN on streaming link
// prediction, and inspect the learned model — in ~30 seconds on a laptop.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

int main() {
  using namespace apan;

  // 1. A Wikipedia-like CTDG: bipartite user/item interactions with
  //    timestamps, 32-d edge features and sparse dynamic labels.
  data::SyntheticConfig config =
      data::SyntheticConfig::WikipediaLike().Scaled(0.2);
  auto dataset = data::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld nodes, %lld temporal edges, %lld-d features\n",
              (long long)dataset->num_nodes,
              (long long)dataset->num_events(),
              (long long)dataset->feature_dim());

  // 2. APAN with the paper's hyper-parameters (§4.4): 2 attention heads,
  //    10 mailbox slots, 10 sampled neighbors, 2 propagation hops.
  core::ApanConfig apan_config;
  apan_config.num_nodes = dataset->num_nodes;
  apan_config.embedding_dim = dataset->feature_dim();
  train::ApanLinkModel model(apan_config, &dataset->features, /*seed=*/42);
  std::printf("APAN parameters: %lld trainable scalars\n",
              (long long)model.model().ParameterCount());

  // 3. Streaming link-prediction training: chronological batches of 200
  //    events, one dynamic negative per event, early stopping on
  //    validation AP.
  train::LinkTrainConfig train_config;
  train_config.max_epochs = 6;
  train_config.verbose = true;
  train::LinkTrainer trainer(train_config);
  auto report = trainer.Run(&model, *dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== results ===\n");
  std::printf("validation: AP %.2f%%  accuracy %.2f%%\n",
              100 * report->validation.ap, 100 * report->validation.accuracy);
  std::printf("test:       AP %.2f%%  accuracy %.2f%%\n",
              100 * report->test.ap, 100 * report->test.accuracy);
  std::printf("train speed: %.2f s/epoch | inference: %.2f ms/batch\n",
              report->mean_train_seconds_per_epoch,
              report->mean_inference_millis_per_batch);
  std::printf(
      "graph queries on the inference path: %lld  <- the asynchronous "
      "design\n",
      (long long)report->sync_graph_queries);
  return 0;
}
