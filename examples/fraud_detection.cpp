// Fraud detection on an Alipay-like transaction graph — the paper's
// motivating application (§1): fraud communities produce bursty,
// feature-shifted transactions; the system must flag them from the edge
// representation (z_src ‖ e ‖ z_dst).
//
//   ./build/examples/fraud_detection

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"
#include "train/probe.h"

int main() {
  using namespace apan;

  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::AlipayLike().Scaled(0.08));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  int64_t fraud = 0, labeled = 0;
  for (int8_t l : dataset->labels) {
    fraud += (l == 1);
    labeled += (l >= 0);
  }
  std::printf(
      "transaction graph: %lld accounts, %lld transfers, %lld labeled "
      "(%lld fraud)\n",
      (long long)dataset->num_nodes, (long long)dataset->num_events(),
      (long long)labeled, (long long)fraud);

  // Stage 1: unsupervised-ish representation learning — train APAN on the
  // link prediction pretext task over the transaction stream.
  core::ApanConfig config;
  config.num_nodes = dataset->num_nodes;
  config.embedding_dim = dataset->feature_dim();
  train::ApanLinkModel model(config, &dataset->features, /*seed=*/7);
  train::LinkTrainConfig tc;
  tc.max_epochs = 5;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&model, *dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("pretext link prediction: test AP %.2f%%\n",
              100 * report->test.ap);

  // Stage 2: edge-classification probe on frozen embeddings — the Table 3
  // Alipay protocol.
  auto rows = train::CollectTemporalRows(&model, *dataset, 200);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  train::ProbeConfig pc;
  pc.epochs = 12;
  auto probe = train::TrainClassificationProbe(*rows, pc);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 1;
  }
  std::printf("fraud detection AUC: validation %.2f%%, test %.2f%%\n",
              100 * probe->val_auc, 100 * probe->test_auc);
  std::printf("(probe trained on %lld rows, evaluated on %lld)\n",
              (long long)probe->train_rows, (long long)probe->eval_rows);

  // Stage 3: what would the bank act on? Rank the test-range labeled
  // transactions by a simple risk signal — here, how many fraud rows land
  // in the top decile when ranked by the probe's training signal proxy
  // (feature-shift magnitude along the planted direction is unknown to
  // us, so we report the label mix of the probe's eval rows instead).
  int64_t eval_fraud = 0, eval_total = 0;
  for (const auto& r : *rows) {
    if (r.split != data::Split::kTrain) {
      ++eval_total;
      eval_fraud += r.label;
    }
  }
  std::printf("eval-range label mix: %lld fraud / %lld labeled — AUC above "
              "0.5 means the embedding separates them\n",
              (long long)eval_fraud, (long long)eval_total);
  return 0;
}
