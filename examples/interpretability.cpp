// Interpretability (paper §3.6): because the mailbox stores the detailed
// mails of past interactions, the encoder's attention weights say *which
// past interaction* drove a node's current embedding — something models
// that only keep a compressed memory vector cannot do.
//
//   ./build/examples/interpretability

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

int main() {
  using namespace apan;

  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.15));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  core::ApanConfig config;
  config.num_nodes = dataset->num_nodes;
  config.embedding_dim = dataset->feature_dim();
  train::ApanLinkModel model(config, &dataset->features, /*seed=*/3);
  train::LinkTrainConfig tc;
  tc.max_epochs = 4;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&model, *dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained model: test AP %.2f%%\n\n", 100 * report->test.ap);

  // Pick the busiest user and ask the encoder which of its mailbox mails
  // carries the most attention mass right now.
  core::ApanModel& apan = model.model();
  graph::NodeId busiest = 0;
  int64_t best_count = 0;
  for (graph::NodeId v = 0; v < dataset->num_users; ++v) {
    if (apan.mailbox().ValidCount(v) > best_count) {
      best_count = apan.mailbox().ValidCount(v);
      busiest = v;
    }
  }
  std::printf("node %lld holds %lld mails; attention over its mailbox:\n",
              (long long)busiest, (long long)best_count);

  apan.SetTraining(false);
  tensor::NoGradGuard no_grad;
  auto out = apan.EncodeNodes({busiest});
  const auto& config_ref = apan.config();
  const int64_t heads = config_ref.num_heads;
  const int64_t slots = config_ref.mailbox_slots;

  // Average the heads into one importance score per (time-sorted) slot.
  std::vector<float> importance(static_cast<size_t>(slots), 0.0f);
  for (int64_t h = 0; h < heads; ++h) {
    for (int64_t m = 0; m < slots; ++m) {
      importance[static_cast<size_t>(m)] +=
          out.attention.item(h * slots + m) / static_cast<float>(heads);
    }
  }
  for (int64_t m = 0; m < slots; ++m) {
    const bool valid = m < best_count;
    std::printf("  slot %2lld (%s): %5.1f%% ", (long long)m,
                valid ? "mail " : "empty", 100.0f * importance[m]);
    const int bar = static_cast<int>(importance[m] * 50);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  const auto top = std::max_element(importance.begin(),
                                    importance.begin() + best_count);
  if (top != importance.begin() + best_count) {
    std::printf(
        "\n-> the model's current view of node %lld is dominated by its "
        "%lldth-oldest retained interaction (%.1f%% of attention mass).\n",
        (long long)busiest, (long long)(top - importance.begin() + 1),
        100.0f * *top);
  }
  return 0;
}
