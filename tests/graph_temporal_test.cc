#include "graph/temporal_graph.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

namespace apan {
namespace graph {
namespace {

TemporalGraph MakeLine() {
  // 0-1 @1, 1-2 @2, 2-3 @3, 1-3 @4.
  TemporalGraph g(4);
  EXPECT_TRUE(g.AddEvent({0, 1, 1.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({1, 2, 2.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({2, 3, 3.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({1, 3, 4.0, -1}).ok());
  return g;
}

TEST(TemporalGraphTest, AddEventValidatesEndpoints) {
  TemporalGraph g(3);
  EXPECT_TRUE(g.AddEvent({0, 2, 1.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({0, 3, 2.0, -1}).IsInvalidArgument());
  EXPECT_TRUE(g.AddEvent({-1, 0, 2.0, -1}).IsInvalidArgument());
}

TEST(TemporalGraphTest, RejectsOutOfOrderAppend) {
  TemporalGraph g(3);
  EXPECT_TRUE(g.AddEvent({0, 1, 5.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({1, 2, 4.0, -1}).IsFailedPrecondition());
  // Equal timestamps are fine (batch arrivals).
  EXPECT_TRUE(g.AddEvent({1, 2, 5.0, -1}).ok());
}

TEST(TemporalGraphTest, EdgeIdsAutoAssignedDense) {
  TemporalGraph g(3);
  ASSERT_TRUE(g.AddEvent({0, 1, 1.0, -1}).ok());
  ASSERT_TRUE(g.AddEvent({1, 2, 2.0, -1}).ok());
  EXPECT_EQ(g.event(0).edge_id, 0);
  EXPECT_EQ(g.event(1).edge_id, 1);
  EXPECT_EQ(g.num_events(), 2);
  EXPECT_EQ(g.latest_timestamp(), 2.0);
}

TEST(TemporalGraphTest, NeighborsBeforeExcludesFuture) {
  TemporalGraph g = MakeLine();
  // Node 1 interacted at t=1 (with 0), t=2 (with 2), t=4 (with 3).
  auto n = g.NeighborsBefore(1, 3.0);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].node, 0);
  EXPECT_EQ(n[1].node, 2);
  for (const auto& x : n) EXPECT_LT(x.timestamp, 3.0);
  // Strict: events at exactly before_time excluded.
  EXPECT_EQ(g.NeighborsBefore(1, 2.0).size(), 1u);
}

TEST(TemporalGraphTest, MostRecentKeepsLatest) {
  TemporalGraph g = MakeLine();
  auto n = g.MostRecentNeighbors(1, 5.0, 2);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].node, 2);  // t=2
  EXPECT_EQ(n[1].node, 3);  // t=4, ascending order
}

TEST(TemporalGraphTest, MostRecentHandlesSmallHistory) {
  TemporalGraph g = MakeLine();
  EXPECT_EQ(g.MostRecentNeighbors(0, 10.0, 5).size(), 1u);
  EXPECT_TRUE(g.MostRecentNeighbors(0, 0.5, 5).empty());
  EXPECT_TRUE(g.MostRecentNeighbors(0, 10.0, 0).empty());
  EXPECT_TRUE(g.MostRecentNeighbors(99, 10.0, 5).empty());
}

TEST(TemporalGraphTest, UniformSampleValidSubset) {
  TemporalGraph g(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.AddEvent({0, 1, static_cast<double>(i + 1), -1}).ok());
  }
  Rng rng(9);
  auto n = g.UniformNeighbors(0, 30.0, 10, &rng);
  EXPECT_EQ(n.size(), 10u);
  for (const auto& x : n) {
    EXPECT_EQ(x.node, 1);
    EXPECT_LT(x.timestamp, 30.0);
  }
}

TEST(TemporalGraphTest, BothEndpointsGainAdjacency) {
  TemporalGraph g(3);
  ASSERT_TRUE(g.AddEvent({0, 1, 1.0, -1}).ok());
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(TemporalGraphTest, SelfLoopCountedOnce) {
  TemporalGraph g(2);
  ASSERT_TRUE(g.AddEvent({0, 0, 1.0, -1}).ok());
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(TemporalGraphTest, QueryCounterTracksReads) {
  TemporalGraph g = MakeLine();
  g.ResetQueryCount();
  g.NeighborsBefore(1, 2.0);
  g.MostRecentNeighbors(1, 2.0, 3);
  Rng rng(1);
  g.UniformNeighbors(1, 2.0, 3, &rng);
  EXPECT_EQ(g.query_count(), 3);
}

TEST(TemporalGraphTest, ResetKeepsNodeCount) {
  TemporalGraph g = MakeLine();
  g.Reset();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_events(), 0);
  EXPECT_EQ(g.Degree(1), 0);
  EXPECT_TRUE(g.AddEvent({0, 1, 0.5, -1}).ok());  // time restarts
}

// Regression: a moved-from graph used to keep its num_nodes_ and
// latest_timestamp_ while its adjacency was emptied, so a later AddEvent
// passed validation and indexed an empty vector (UB). The moved-from
// object must be inert: every mutation and query fails validation.
TEST(TemporalGraphTest, MovedFromGraphIsInert) {
  TemporalGraph g = MakeLine();
  TemporalGraph taken = std::move(g);
  EXPECT_EQ(taken.num_nodes(), 4);
  EXPECT_EQ(taken.num_events(), 4);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_events(), 0);
  EXPECT_EQ(g.latest_timestamp(), 0.0);
  EXPECT_TRUE(g.AddEvent({0, 1, 9.0, -1}).IsInvalidArgument());
  EXPECT_TRUE(g.NeighborsBefore(0, 10.0).empty());
  EXPECT_EQ(g.Degree(0), 0);

  TemporalGraph assigned(2);
  assigned = std::move(taken);
  EXPECT_EQ(assigned.num_nodes(), 4);
  EXPECT_EQ(assigned.num_events(), 4);
  EXPECT_EQ(taken.num_nodes(), 0);
  EXPECT_TRUE(taken.AddEvent({0, 1, 9.0, -1}).IsInvalidArgument());
  // The move target keeps working.
  EXPECT_TRUE(assigned.AddEvent({0, 1, 9.0, -1}).ok());
  EXPECT_EQ(assigned.num_events(), 5);
}

// Property: adjacency is time-sorted and queries never leak the future,
// for a random stream.
TEST(TemporalGraphProperty, NoFutureLeakage) {
  Rng rng(123);
  TemporalGraph g(20);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Exponential(1.0);
    const auto a = static_cast<NodeId>(rng.UniformInt(20));
    const auto b = static_cast<NodeId>(rng.UniformInt(20));
    ASSERT_TRUE(g.AddEvent({a, b, t, -1}).ok());
  }
  for (int trial = 0; trial < 100; ++trial) {
    const auto v = static_cast<NodeId>(rng.UniformInt(20));
    const double cutoff = rng.Uniform(0.0, t);
    const auto recent = g.MostRecentNeighbors(v, cutoff, 7);
    double prev = -1.0;
    for (const auto& n : recent) {
      EXPECT_LT(n.timestamp, cutoff);
      EXPECT_GE(n.timestamp, prev);  // ascending
      prev = n.timestamp;
    }
    // The k most-recent really are the latest valid ones.
    const auto all = g.NeighborsBefore(v, cutoff);
    if (all.size() > recent.size()) {
      const double oldest_kept = recent.front().timestamp;
      const auto skipped = all.size() - recent.size();
      for (size_t i = 0; i < skipped; ++i) {
        EXPECT_LE(all[i].timestamp, oldest_kept);
      }
    }
  }
}

}  // namespace
}  // namespace graph
}  // namespace apan
