#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, ShapeAndBias) {
  Rng rng(1);
  Linear fc(4, 3, &rng);
  Tensor x = Tensor::Ones({2, 4});
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(fc.Parameters().size(), 2u);  // weight + bias
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(1);
  Linear fc(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(fc.Parameters().size(), 1u);
  // Zero input -> zero output without bias.
  Tensor y = fc.Forward(Tensor::Zeros({2, 4}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.item(i), 0.0f);
}

TEST(LinearTest, Rank3InputFlattensOverLastDim) {
  Rng rng(1);
  Linear fc(4, 3, &rng);
  Tensor x3 = Tensor::Ones({2, 5, 4});
  Tensor y3 = fc.Forward(x3);
  EXPECT_EQ(y3.shape(), (Shape{2, 5, 3}));
  // Same values as the flattened rank-2 application.
  Tensor y2 = fc.Forward(Tensor::Ones({10, 4}));
  for (int64_t i = 0; i < y3.numel(); ++i) {
    EXPECT_FLOAT_EQ(y3.item(i), y2.item(i));
  }
}

TEST(LinearTest, MatchesManualMatmul) {
  Rng rng(7);
  Linear fc(2, 2, &rng, /*bias=*/false);
  Tensor x = Tensor::FromVector({1, 2}, {1.0f, 2.0f});
  Tensor y = fc.Forward(x);
  const Tensor& w = fc.weight();
  EXPECT_NEAR(y.item(0), 1.0f * w.at(0, 0) + 2.0f * w.at(1, 0), 1e-5f);
  EXPECT_NEAR(y.item(1), 1.0f * w.at(0, 1) + 2.0f * w.at(1, 1), 1e-5f);
}

TEST(MlpTest, TwoLayerShapeAndGradients) {
  Rng rng(2);
  Mlp mlp(6, 80, 1, &rng);  // the paper's hidden width
  Tensor x = Tensor::Randn({3, 6}, &rng);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 1}));
  ASSERT_TRUE(tensor::SumAll(y).Backward().ok());
  // All four parameter tensors receive gradients.
  for (auto& p : mlp.Parameters()) {
    const auto g = p.GradToVector();
    ASSERT_FALSE(g.empty());
  }
}

TEST(MlpTest, DropoutOnlyInTraining) {
  Rng rng(3);
  Mlp mlp(4, 8, 4, &rng, /*dropout=*/0.5f);
  Tensor x = Tensor::Ones({1, 4});
  mlp.SetTraining(false);
  Tensor a = mlp.Forward(x, &rng);
  Tensor b = mlp.Forward(x, &rng);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.item(i), b.item(i));  // eval is deterministic
  }
}

TEST(LayerNormTest, NormalizesThenAffine) {
  LayerNorm ln(4);
  Tensor x = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  Tensor y = ln.Forward(x);
  // Default gain=1 bias=0: output is standardized.
  float mean = 0.0f;
  for (int c = 0; c < 4; ++c) mean += y.at(0, c);
  EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-4f);
  EXPECT_EQ(ln.Parameters().size(), 2u);
}

TEST(LayerNormTest, GainBiasLearnable) {
  LayerNorm ln(3);
  auto params = ln.Parameters();
  params[0].data()[0] = 2.0f;  // gain
  params[1].data()[0] = 1.0f;  // bias
  Tensor x = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor y = ln.Forward(x);
  // First channel = 2*norm + 1.
  Tensor plain = tensor::RowNormalize(x);
  EXPECT_NEAR(y.at(0, 0), 2.0f * plain.at(0, 0) + 1.0f, 1e-4f);
}

TEST(EmbeddingTableTest, LookupAndScatterGrad) {
  Rng rng(4);
  EmbeddingTable table(5, 3, &rng);
  Tensor e = table.Forward({1, 1, 4});
  EXPECT_EQ(e.shape(), (Shape{3, 3}));
  ASSERT_TRUE(tensor::SumAll(e).Backward().ok());
  auto g = table.table().GradToVector();
  // Row 1 hit twice, row 4 once, others zero.
  EXPECT_FLOAT_EQ(g[1 * 3], 2.0f);
  EXPECT_FLOAT_EQ(g[4 * 3], 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(ModuleTest, ParameterCountAndStateRoundTrip) {
  Rng rng(5);
  Mlp mlp(4, 8, 2, &rng);
  EXPECT_EQ(mlp.ParameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
  auto state = mlp.StateToVector();
  // Perturb then restore.
  for (auto& p : mlp.Parameters()) p.data()[0] += 1.0f;
  ASSERT_TRUE(mlp.LoadStateFromVector(state).ok());
  EXPECT_EQ(mlp.StateToVector(), state);
  // Wrong-size state rejected.
  state.pop_back();
  EXPECT_TRUE(mlp.LoadStateFromVector(state).IsInvalidArgument());
}

TEST(ModuleTest, SetTrainingPropagatesToChildren) {
  Rng rng(6);
  Mlp mlp(2, 4, 2, &rng);
  EXPECT_TRUE(mlp.training());
  mlp.SetTraining(false);
  EXPECT_FALSE(mlp.training());
}

}  // namespace
}  // namespace nn
}  // namespace apan
