#include "nn/attention.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

class AttentionTest : public ::testing::Test {
 protected:
  Rng rng_{11};
};

TEST_F(AttentionTest, OutputAndWeightShapes) {
  MultiHeadAttention mha(8, 2, &rng_);
  Tensor q = Tensor::Randn({3, 8}, &rng_);
  Tensor kv = Tensor::Randn({3, 5, 8}, &rng_);
  auto out = mha.Forward(q, kv, kv);
  EXPECT_EQ(out.output.shape(), (Shape{3, 8}));
  EXPECT_EQ(out.weights.shape(), (Shape{3, 2, 5}));
}

TEST_F(AttentionTest, WeightsSumToOnePerHead) {
  MultiHeadAttention mha(8, 4, &rng_);
  Tensor q = Tensor::Randn({2, 8}, &rng_);
  Tensor kv = Tensor::Randn({2, 6, 8}, &rng_);
  auto out = mha.Forward(q, kv, kv);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t h = 0; h < 4; ++h) {
      float sum = 0.0f;
      for (int64_t m = 0; m < 6; ++m) {
        sum += out.weights.item((b * 4 + h) * 6 + m);
      }
      EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
  }
}

TEST_F(AttentionTest, MaskRemovesSlots) {
  MultiHeadAttention mha(4, 2, &rng_);
  Tensor q = Tensor::Randn({1, 4}, &rng_);
  Tensor kv = Tensor::Randn({1, 3, 4}, &rng_);
  std::vector<float> mask = {0.0f, MultiHeadAttention::kMaskedOut,
                             MultiHeadAttention::kMaskedOut};
  auto out = mha.Forward(q, kv, kv, &mask);
  // All weight mass on slot 0 for every head.
  for (int64_t h = 0; h < 2; ++h) {
    EXPECT_NEAR(out.weights.item(h * 3 + 0), 1.0f, 1e-4f);
    EXPECT_NEAR(out.weights.item(h * 3 + 1), 0.0f, 1e-4f);
  }
}

TEST_F(AttentionTest, MaskedSlotValuesDoNotAffectOutput) {
  MultiHeadAttention mha(4, 2, &rng_);
  Tensor q = Tensor::Randn({1, 4}, &rng_);
  Tensor kv1 = Tensor::Randn({1, 3, 4}, &rng_);
  Tensor kv2 = kv1.Clone();
  // Corrupt the masked slot of kv2.
  for (int64_t j = 0; j < 4; ++j) kv2.set_item(2 * 4 + j, 123.0f);
  std::vector<float> mask = {0.0f, 0.0f, MultiHeadAttention::kMaskedOut};
  auto o1 = mha.Forward(q, kv1, kv1, &mask);
  auto o2 = mha.Forward(q, kv2, kv2, &mask);
  for (int64_t i = 0; i < o1.output.numel(); ++i) {
    EXPECT_NEAR(o1.output.item(i), o2.output.item(i), 1e-4f);
  }
}

TEST_F(AttentionTest, AttendsToMatchingKey) {
  // With identity-ish content, the query should put most weight on the
  // key that equals it after training-free dot-product scoring. Use a
  // single head and strongly separated keys.
  MultiHeadAttention mha(4, 1, &rng_);
  // Make the projections identity to test the score mechanics directly.
  auto params = mha.Parameters();  // wq, wk, wv, wo
  for (int p = 0; p < 4; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        params[p].data()[i * 4 + j] = (i == j) ? 1.0f : 0.0f;
      }
    }
  }
  Tensor q = Tensor::FromVector({1, 4}, {10, 0, 0, 0});
  Tensor kv = Tensor::FromVector(
      {1, 3, 4},
      {10, 0, 0, 0, 0, 10, 0, 0, 0, 0, 10, 0});
  auto out = mha.Forward(q, kv, kv);
  EXPECT_GT(out.weights.item(0), 0.99f);
}

TEST_F(AttentionTest, DistinctKeyValueQueryDims) {
  MultiHeadAttention mha(8, 2, &rng_, /*key_dim=*/12, /*value_dim=*/12,
                         /*query_dim=*/6);
  Tensor q = Tensor::Randn({2, 6}, &rng_);
  Tensor kv = Tensor::Randn({2, 4, 12}, &rng_);
  auto out = mha.Forward(q, kv, kv);
  EXPECT_EQ(out.output.shape(), (Shape{2, 8}));
}

TEST_F(AttentionTest, GradientsReachAllProjections) {
  MultiHeadAttention mha(4, 2, &rng_);
  Tensor q = Tensor::Randn({2, 4}, &rng_);
  Tensor kv = Tensor::Randn({2, 3, 4}, &rng_);
  auto out = mha.Forward(q, kv, kv);
  ASSERT_TRUE(tensor::SumAll(out.output).Backward().ok());
  for (auto& p : mha.Parameters()) {
    const auto g = p.GradToVector();
    double norm = 0.0;
    for (float x : g) norm += std::abs(x);
    EXPECT_GT(norm, 0.0) << "a projection received no gradient";
  }
}

TEST_F(AttentionTest, WeightsAreDetached) {
  MultiHeadAttention mha(4, 1, &rng_);
  Tensor q = Tensor::Randn({1, 4}, &rng_);
  Tensor kv = Tensor::Randn({1, 2, 4}, &rng_);
  auto out = mha.Forward(q, kv, kv);
  EXPECT_FALSE(out.weights.requires_grad());
}

}  // namespace
}  // namespace nn
}  // namespace apan
