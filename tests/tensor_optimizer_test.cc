#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace tensor {
namespace {

// Quadratic bowl: L(w) = sum((w - target)^2). Any sane optimizer converges.
float QuadraticStep(Optimizer* opt, Tensor w, const Tensor& target) {
  opt->ZeroGrad();
  Tensor diff = Sub(w, target);
  Tensor loss = SumAll(Mul(diff, diff));
  EXPECT_TRUE(loss.Backward().ok());
  const float l = loss.item();
  opt->Step();
  return l;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Tensor w = Tensor::Randn({4}, &rng, 1.0f, true);
  Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Sgd opt({w}, {.lr = 0.1f});
  float last = 1e9f;
  for (int i = 0; i < 100; ++i) last = QuadraticStep(&opt, w, target);
  EXPECT_LT(last, 1e-4f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.item(i), target.item(i), 1e-2f);
  }
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Rng rng(1);
  Tensor w1 = Tensor::Full({4}, 5.0f, true);
  Tensor w2 = Tensor::Full({4}, 5.0f, true);
  Tensor target = Tensor::Zeros({4});
  Sgd plain({w1}, {.lr = 0.01f});
  Sgd heavy({w2}, {.lr = 0.01f, .momentum = 0.9f});
  float l1 = 0, l2 = 0;
  for (int i = 0; i < 30; ++i) {
    l1 = QuadraticStep(&plain, w1, target);
    l2 = QuadraticStep(&heavy, w2, target);
  }
  EXPECT_LT(l2, l1);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(2);
  Tensor w = Tensor::Randn({8}, &rng, 2.0f, true);
  Tensor target = Tensor::Zeros({8});
  Adam opt({w}, {.lr = 0.05f});
  float last = 1e9f;
  for (int i = 0; i < 300; ++i) last = QuadraticStep(&opt, w, target);
  EXPECT_LT(last, 1e-3f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::Full({2}, 1.0f, true);
  Adam opt({w}, {.lr = 0.01f, .weight_decay = 1.0f});
  // Loss gradient is zero; only decay acts.
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    w.grad_data();  // ensure grad buffer exists (all zeros)
    opt.Step();
  }
  EXPECT_LT(std::abs(w.item(0)), 1.0f);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, |Δw| of the first step ≈ lr regardless of grad
  // magnitude.
  Tensor w = Tensor::Zeros({1}, true);
  Adam opt({w}, {.lr = 0.1f});
  opt.ZeroGrad();
  w.grad_data()[0] = 1000.0f;
  opt.Step();
  EXPECT_NEAR(std::abs(w.item(0)), 0.1f, 1e-3f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::Zeros({3}, true);
  Sgd opt({w}, {.lr = 1.0f});
  float* g = w.grad_data();
  g[0] = 3.0f;
  g[1] = 4.0f;
  g[2] = 0.0f;
  const double pre = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  const auto clipped = w.GradToVector();
  const double post = std::sqrt(clipped[0] * clipped[0] +
                                clipped[1] * clipped[1] +
                                clipped[2] * clipped[2]);
  EXPECT_NEAR(post, 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpBelowThreshold) {
  Tensor w = Tensor::Zeros({2}, true);
  Sgd opt({w}, {.lr = 1.0f});
  w.grad_data()[0] = 0.3f;
  opt.ClipGradNorm(10.0);
  EXPECT_FLOAT_EQ(w.GradToVector()[0], 0.3f);
}

TEST(OptimizerTest, ZeroGradClearsAllParams) {
  Tensor a = Tensor::Zeros({2}, true);
  Tensor b = Tensor::Zeros({2}, true);
  Adam opt({a, b}, {});
  a.grad_data()[0] = 1.0f;
  b.grad_data()[1] = 2.0f;
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(a.GradToVector()[0], 0.0f);
  EXPECT_FLOAT_EQ(b.GradToVector()[1], 0.0f);
}

TEST(OptimizerTest, TrainsTinyLinearRegression) {
  // y = x * W; fit W to a known matrix from noisy-free data.
  Rng rng(7);
  Tensor w_true = Tensor::FromVector({2, 2}, {1.0f, -0.5f, 0.25f, 2.0f});
  Tensor w = Tensor::Zeros({2, 2}, true);
  Adam opt({w}, {.lr = 0.05f});
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::Randn({8, 2}, &rng);
    Tensor y_true = MatMul(x, w_true);
    opt.ZeroGrad();
    Tensor diff = Sub(MatMul(x, w), y_true);
    Tensor loss = MeanAll(Mul(diff, diff));
    ASSERT_TRUE(loss.Backward().ok());
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.item(i), w_true.item(i), 0.05f);
  }
}

}  // namespace
}  // namespace tensor
}  // namespace apan
