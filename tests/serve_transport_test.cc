// Determinism of the sharded engine over real transports and under
// injected faults (ISSUE 3's tentpole claim): the final mailbox state
// must stay bitwise-equal to the single-worker AsyncPipeline when every
// cross-shard message crosses a Unix-domain socket, and when a
// FaultyTransport delays, reorders, and duplicates messages under a
// seeded RNG — sequence-tag replay absorbs reordering, and replay tags
// drop duplicates instead of re-applying them.

#include "serve/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "graph/node_partition.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve_state_util.h"

namespace apan {
namespace serve {
namespace {

using testutil::ExpectStitchedMailboxEqual;

struct Fixture {
  Fixture()
      : dataset(*data::GenerateSynthetic(
            data::SyntheticConfig::WikipediaLike().Scaled(0.05))) {
    config.num_nodes = dataset.num_nodes;
    config.embedding_dim = dataset.feature_dim();
    config.mailbox_slots = 5;
    config.sampled_neighbors = 5;
    config.propagation_hops = 1;
    config.dropout = 0.0f;
  }

  std::vector<graph::Event> BatchEvents(size_t lo, size_t hi) const {
    return std::vector<graph::Event>(dataset.events.begin() + lo,
                                     dataset.events.begin() + hi);
  }

  data::Dataset dataset;
  core::ApanConfig config;
};

/// Reference run: the single-worker pipeline over the first `n` events.
std::unique_ptr<core::ApanModel> RunPipeline(const Fixture& f, size_t n,
                                             size_t batch) {
  auto model = std::make_unique<core::ApanModel>(f.config,
                                                 &f.dataset.features, 7);
  AsyncPipeline pipeline(model.get(), {});
  for (size_t lo = 0; lo + batch <= n; lo += batch) {
    EXPECT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  pipeline.Flush();
  return model;
}

struct ShardedRun {
  // Declaration order matters: the engine reads the model's weights and
  // holds the served state, so it must be destroyed first (it is — members
  // destruct in reverse order).
  std::unique_ptr<core::ApanModel> model;
  std::unique_ptr<ShardedEngine> engine;  ///< Kept alive: owns the stores.
  ShardedEngine::Stats stats;
};

/// The engine over `factory`'s transport, free-running (no flush between
/// batches, so reordering/duplication genuinely interleaves in flight).
/// A null `partition` leaves the engine on the default hash ownership.
ShardedRun RunSharded(const Fixture& f, TransportFactory factory, size_t n,
                      size_t batch, bool shutdown_without_flush = false,
                      int num_shards = 4,
                      std::shared_ptr<const graph::NodePartition> partition =
                          nullptr) {
  ShardedRun run;
  run.model = std::make_unique<core::ApanModel>(f.config,
                                                &f.dataset.features, 7);
  ShardedEngine::Options options;
  options.num_shards = num_shards;
  options.partition = std::move(partition);
  options.transport = std::move(factory);
  run.engine = std::make_unique<ShardedEngine>(run.model.get(), options);
  for (size_t lo = 0; lo + batch <= n; lo += batch) {
    EXPECT_TRUE(run.engine->InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  if (shutdown_without_flush) {
    run.engine->Shutdown();  // must drain the transport, not just the deques
  } else {
    run.engine->Flush();
  }
  run.stats = run.engine->stats();
  return run;
}

TransportFactory FaultyFactory(TransportKind inner, uint64_t seed,
                               double duplicate_probability = 0.3) {
  return [inner, seed, duplicate_probability]() -> std::unique_ptr<Transport> {
    FaultyTransport::Options options;
    options.seed = seed;
    options.delay_probability = 0.5;
    options.duplicate_probability = duplicate_probability;
    options.max_delay_micros = 1500;
    options.flush_period_micros = 100;
    return std::make_unique<FaultyTransport>(MakeTransportFactory(inner)(),
                                             options);
  };
}

// ---- Clean transports reproduce the pipeline -------------------------------

TEST(TransportTest, InProcessTransportMatchesPipelineBitwise) {
  Fixture f;
  const auto reference = RunPipeline(f, 400, 50);
  const auto run =
      RunSharded(f, MakeTransportFactory(TransportKind::kInProcess), 400, 50);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  EXPECT_EQ(run.stats.duplicates_dropped, 0);
}

TEST(TransportTest, UnixSocketMatchesPipelineBitwiseOneHop) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  const auto reference = RunPipeline(f, 400, 50);
  const auto run =
      RunSharded(f, MakeTransportFactory(TransportKind::kUnixSocket), 400, 50);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  // A lossless FIFO lane delivers exactly once.
  EXPECT_EQ(run.stats.duplicates_dropped, 0);
  EXPECT_GT(run.stats.mails_cross_shard, 0);
}

TEST(TransportTest, UnixSocketMatchesPipelineBitwiseTwoHops) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  f.config.propagation_hops = 2;  // chained foreign frontiers over the wire
  const auto reference = RunPipeline(f, 300, 50);
  const auto run =
      RunSharded(f, MakeTransportFactory(TransportKind::kUnixSocket), 300, 50);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  EXPECT_GT(run.stats.frontier_nodes_forwarded, 0);
}

// ---- Fault-injection determinism soak --------------------------------------
// delay + reorder + duplicate under 10 RNG seeds per (transport, hops)
// combination — 20 seeds per hop count, 20 per transport. Every run must
// land bitwise on the single-worker mailbox.

void FaultySoak(int32_t hops, TransportKind inner, uint64_t seed_base,
                int num_shards = 4, bool locality_partition = false) {
  if (inner == TransportKind::kUnixSocket &&
      !UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  f.config.propagation_hops = hops;
  const size_t events = 120, batch = 40;
  const auto reference = RunPipeline(f, events, batch);
  std::shared_ptr<const graph::NodePartition> partition;
  if (locality_partition) {
    partition = graph::NodePartition::BuildLocality(
        f.config.num_nodes, num_shards,
        std::span<const graph::Event>(f.dataset.events.data(), events));
  }
  int64_t duplicates_dropped = 0;
  for (uint64_t seed = seed_base; seed < seed_base + 10; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const auto run = RunSharded(f, FaultyFactory(inner, seed), events, batch,
                                /*shutdown_without_flush=*/false, num_shards,
                                partition);
    ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
    duplicates_dropped += run.stats.duplicates_dropped;
  }
  // With duplicate_probability 0.3 over hundreds of messages, the soak
  // has exercised the tag-drop path, not just clean orderings.
  EXPECT_GT(duplicates_dropped, 0);
}

TEST(TransportFaultSoakTest, OneHopInProcess) {
  FaultySoak(1, TransportKind::kInProcess, 0);
}

TEST(TransportFaultSoakTest, OneHopUnixSocket) {
  FaultySoak(1, TransportKind::kUnixSocket, 100);
}

TEST(TransportFaultSoakTest, TwoHopsInProcess) {
  FaultySoak(2, TransportKind::kInProcess, 200);
}

TEST(TransportFaultSoakTest, TwoHopsUnixSocket) {
  FaultySoak(2, TransportKind::kUnixSocket, 300);
}

TEST(TransportFaultSoakTest, EveryMessageDuplicatedIsDroppedByTag) {
  // duplicate_probability = 1: every message arrives at least twice.
  // Re-applying any of them would double mail counts or wedge the
  // sender-count barrier; the tags must drop them all.
  Fixture f;
  const auto reference = RunPipeline(f, 200, 50);
  const auto run = RunSharded(
      f, FaultyFactory(TransportKind::kInProcess, 99, /*duplicate=*/1.0),
      200, 50);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  EXPECT_GT(run.stats.duplicates_dropped, 0);
}

// ---- Partition independence ------------------------------------------------
// Determinism must not depend on WHERE nodes live: any disjoint ownership
// map yields the same stitched mailbox, because sequence-tag replay keys
// on (batch, sequence), never on shard ids. The suite re-runs bitwise
// equality and the fault soak under the locality-aware partitioner at
// 2, 4, and 8 shards over both real transports.

void LocalityMatchesPipeline(TransportKind kind) {
  if (kind == TransportKind::kUnixSocket &&
      !UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  const size_t events = 400, batch = 50;
  const auto reference = RunPipeline(f, events, batch);
  for (const int num_shards : {2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << num_shards << " shards");
    // Prior-epoch style: the partition is built from the exact stream it
    // will serve, the best case the greedy builder can see.
    const auto partition = graph::NodePartition::BuildLocality(
        f.config.num_nodes, num_shards,
        std::span<const graph::Event>(f.dataset.events.data(), events));
    const auto run = RunSharded(f, MakeTransportFactory(kind), events, batch,
                                /*shutdown_without_flush=*/false, num_shards,
                                partition);
    ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);

    // And the point of the partitioner: co-location keeps propagation
    // local. The hash baseline at the same shard count must route
    // strictly more mail across shard boundaries.
    const auto hash_run =
        RunSharded(f, MakeTransportFactory(kind), events, batch,
                   /*shutdown_without_flush=*/false, num_shards);
    ExpectStitchedMailboxEqual(*hash_run.engine, *reference,
                               f.config.num_nodes);
    EXPECT_LT(run.stats.mails_cross_shard, hash_run.stats.mails_cross_shard);
  }
}

TEST(TransportPartitionTest, LocalityMatchesPipelineInProcess) {
  LocalityMatchesPipeline(TransportKind::kInProcess);
}

TEST(TransportPartitionTest, LocalityMatchesPipelineUnixSocket) {
  LocalityMatchesPipeline(TransportKind::kUnixSocket);
}

TEST(TransportPartitionFaultSoakTest, TwoShardsLocalityInProcess) {
  FaultySoak(1, TransportKind::kInProcess, 400, 2, /*locality=*/true);
}

TEST(TransportPartitionFaultSoakTest, TwoShardsLocalityUnixSocket) {
  FaultySoak(1, TransportKind::kUnixSocket, 500, 2, /*locality=*/true);
}

TEST(TransportPartitionFaultSoakTest, FourShardsLocalityInProcess) {
  FaultySoak(1, TransportKind::kInProcess, 600, 4, /*locality=*/true);
}

TEST(TransportPartitionFaultSoakTest, FourShardsLocalityUnixSocket) {
  FaultySoak(1, TransportKind::kUnixSocket, 700, 4, /*locality=*/true);
}

TEST(TransportPartitionFaultSoakTest, EightShardsLocalityInProcess) {
  FaultySoak(1, TransportKind::kInProcess, 800, 8, /*locality=*/true);
}

TEST(TransportPartitionFaultSoakTest, EightShardsLocalityUnixSocket) {
  FaultySoak(1, TransportKind::kUnixSocket, 900, 8, /*locality=*/true);
}

// ---- Shutdown under load ---------------------------------------------------

TEST(TransportShutdownTest, ShutdownUnderLoadDrainsUnixSocketLanes) {
  // Regression for the satellite fix: Shutdown during in-flight
  // cross-shard work must drain the socket lanes before joining workers —
  // a deque cannot lose frames, a socket (or delay buffer) can.
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  f.config.propagation_hops = 2;
  const auto reference = RunPipeline(f, 300, 50);
  const auto run =
      RunSharded(f, MakeTransportFactory(TransportKind::kUnixSocket), 300, 50,
                 /*shutdown_without_flush=*/true);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
}

TEST(TransportShutdownTest, ShutdownUnderLoadFlushesHeldFaultFrames) {
  // Same regression against the fault decorator: frames sitting in the
  // delay buffer at Shutdown must be flushed (released to the inner
  // transport), never dropped.
  Fixture f;
  const auto reference = RunPipeline(f, 300, 50);
  for (const uint64_t seed : {7u, 8u, 9u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const auto run =
        RunSharded(f, FaultyFactory(TransportKind::kInProcess, seed), 300, 50,
                   /*shutdown_without_flush=*/true);
    ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  }
}

// ---- Transport unit behavior -----------------------------------------------

TEST(TransportTest, SendBeforeStartFails) {
  InProcessTransport inproc;
  EXPECT_FALSE(inproc.Send(0, 0, ShardMessage(FrontierRequest{})).ok());
  UnixSocketTransport uds;
  EXPECT_FALSE(uds.Send(0, 0, ShardMessage(FrontierRequest{})).ok());
}

TEST(TransportTest, SendAfterStopFails) {
  InProcessTransport inproc;
  ASSERT_TRUE(inproc.Start(2, [](int, ShardMessage) {}).ok());
  inproc.Stop();
  EXPECT_FALSE(inproc.Send(0, 1, ShardMessage(FrontierRequest{})).ok());
}

TEST(TransportTest, UnixSocketDeliversAcrossLanes) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  UnixSocketTransport uds;
  std::mutex mu;
  std::vector<std::pair<int, int64_t>> received;  // (to_shard, batch)
  ASSERT_TRUE(uds.Start(3,
                        [&](int to, ShardMessage m) {
                          std::lock_guard<std::mutex> lock(mu);
                          received.emplace_back(
                              to, std::get<FrontierRequest>(m).batch);
                        })
                  .ok());
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      FrontierRequest request;
      request.batch = from * 3 + to;
      request.from_shard = from;
      ASSERT_TRUE(uds.Send(from, to, ShardMessage(std::move(request))).ok());
    }
  }
  uds.Stop();  // drains every accepted frame before returning
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 9u);
  int64_t batch_sum = 0;
  for (const auto& [to, batch] : received) {
    EXPECT_EQ(batch % 3, to);  // delivered to the lane's receiver
    batch_sum += batch;
  }
  EXPECT_EQ(batch_sum, 36);  // 0 + 1 + ... + 8, each exactly once
}

TEST(TransportTest, ParseTransportKindNames) {
  EXPECT_EQ(*ParseTransportKind("inproc"), TransportKind::kInProcess);
  EXPECT_EQ(*ParseTransportKind("uds"), TransportKind::kUnixSocket);
  EXPECT_FALSE(ParseTransportKind("tcp").ok());
}

}  // namespace
}  // namespace serve
}  // namespace apan
