#include <gtest/gtest.h>

#include <memory>

#include "baselines/dyrep.h"
#include "baselines/gae.h"
#include "baselines/jodie.h"
#include "baselines/random_walk.h"
#include "baselines/static_gnn.h"
#include "baselines/temporal_attention.h"
#include "baselines/tgat.h"
#include "baselines/tgn.h"
#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"
#include "train/probe.h"

namespace apan {
namespace baselines {
namespace {

data::Dataset& SharedDataset() {
  static data::Dataset ds = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.06));
  return ds;
}

train::EventBatch FirstBatch(const data::Dataset& ds, size_t n) {
  train::EventBatch batch{&ds, 0, n, {}};
  for (size_t i = 0; i < n; ++i) {
    batch.negatives.push_back(ds.events[i].dst);  // placeholder negatives
  }
  return batch;
}

// ---- Shape/protocol conformance for every TemporalModel -------------------

class TemporalModelConformance
    : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<train::TemporalModel> Make(int which) {
    auto& ds = SharedDataset();
    const int64_t n = ds.num_nodes, d = ds.feature_dim();
    switch (which) {
      case 0: {
        core::ApanConfig c;
        c.num_nodes = n;
        c.embedding_dim = d;
        return std::make_unique<train::ApanLinkModel>(c, &ds.features, 1);
      }
      case 1:
        return std::make_unique<Tgat>(
            Tgat::Options{.num_nodes = n, .dim = d, .num_layers = 1},
            &ds.features, 1);
      case 2:
        return std::make_unique<Tgn>(
            Tgn::Options{.num_nodes = n, .dim = d, .num_layers = 1},
            &ds.features, 1);
      case 3:
        return std::make_unique<Jodie>(
            Jodie::Options{
                .num_nodes = n, .num_users = ds.num_users, .dim = d},
            &ds.features, 1);
      case 4:
        return std::make_unique<DyRep>(
            DyRep::Options{.num_nodes = n, .dim = d}, &ds.features, 1);
      case 5:
        return std::make_unique<StaticGnn>(
            StaticGnn::Kind::kSage,
            StaticGnn::Options{.num_nodes = n, .dim = d}, 1);
      default:
        return std::make_unique<StaticGnn>(
            StaticGnn::Kind::kGat,
            StaticGnn::Options{.num_nodes = n, .dim = d}, 1);
    }
  }
};

TEST_P(TemporalModelConformance, ScoreConsumeResetProtocol) {
  auto& ds = SharedDataset();
  auto model = Make(GetParam());
  ASSERT_FALSE(model->name().empty());
  EXPECT_EQ(model->embedding_dim(), ds.feature_dim());
  EXPECT_FALSE(model->Parameters().empty());

  auto batch = FirstBatch(ds, 32);
  auto scores = model->ScoreLinks(batch);
  EXPECT_EQ(scores.pos_logits.shape(), (tensor::Shape{32, 1}));
  EXPECT_EQ(scores.neg_logits.shape(), (tensor::Shape{32, 1}));
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(std::isfinite(scores.pos_logits.item(i)));
  }

  auto emb = model->EmbedEndpoints(batch);
  EXPECT_EQ(emb.z_src.shape(),
            (tensor::Shape{32, ds.feature_dim()}));
  EXPECT_EQ(emb.z_dst.shape(),
            (tensor::Shape{32, ds.feature_dim()}));

  ASSERT_TRUE(model->Consume(batch).ok());
  // Next chronological batch must also work.
  train::EventBatch batch2{&ds, 32, 64, {}};
  for (size_t i = 32; i < 64; ++i) {
    batch2.negatives.push_back(ds.events[i].dst);
  }
  (void)model->ScoreLinks(batch2);
  ASSERT_TRUE(model->Consume(batch2).ok());

  model->ResetState();
  // After reset, the stream restarts from the beginning.
  (void)model->ScoreLinks(batch);
  ASSERT_TRUE(model->Consume(batch).ok());
}

TEST_P(TemporalModelConformance, GradientsReachParameters) {
  auto& ds = SharedDataset();
  auto model = Make(GetParam());
  auto batch = FirstBatch(ds, 16);
  ASSERT_TRUE(model->Consume(batch).ok());  // give memory models pending
  train::EventBatch batch2{&ds, 16, 32, {}};
  for (size_t i = 16; i < 32; ++i) {
    batch2.negatives.push_back(ds.events[i].dst);
  }
  auto scores = model->ScoreLinks(batch2);
  tensor::Tensor loss = tensor::BceWithLogits(
      scores.pos_logits, std::vector<float>(16, 1.0f));
  ASSERT_TRUE(loss.Backward().ok());
  int with_grad = 0;
  for (auto& p : model->Parameters()) {
    double norm = 0.0;
    for (float g : p.GradToVector()) norm += std::abs(g);
    if (norm > 0.0) ++with_grad;
  }
  EXPECT_GT(with_grad, 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, TemporalModelConformance,
                         ::testing::Range(0, 7));

// ---- Model-specific behaviour ----------------------------------------------

TEST(TgatTest, QueriesScaleWithLayers) {
  auto& ds = SharedDataset();
  Tgat one({.num_nodes = ds.num_nodes,
            .dim = ds.feature_dim(),
            .num_layers = 1},
           &ds.features, 2);
  Tgat two({.num_nodes = ds.num_nodes,
            .dim = ds.feature_dim(),
            .num_layers = 2},
           &ds.features, 2);
  auto batch = FirstBatch(ds, 32);
  ASSERT_TRUE(one.Consume(batch).ok());
  ASSERT_TRUE(two.Consume(batch).ok());
  train::EventBatch batch2{&ds, 32, 64, {}};
  for (size_t i = 32; i < 64; ++i) batch2.negatives.push_back(ds.events[i].dst);
  (void)one.ScoreLinks(batch2);
  (void)two.ScoreLinks(batch2);
  EXPECT_GT(one.SyncPathGraphQueries(), 0);
  EXPECT_GT(two.SyncPathGraphQueries(), 5 * one.SyncPathGraphQueries())
      << "2-layer TGAT must fan out far more inference-path queries";
}

TEST(MemoryModelTest, ConsumeUpdatesMemory) {
  auto& ds = SharedDataset();
  Jodie model({.num_nodes = ds.num_nodes,
               .num_users = ds.num_users,
               .dim = ds.feature_dim()},
              &ds.features, 3);
  auto batch = FirstBatch(ds, 32);
  ASSERT_TRUE(model.Consume(batch).ok());
  // Pending messages exist but memory applies on the *next* consume.
  train::EventBatch batch2{&ds, 32, 64, {}};
  ASSERT_TRUE(model.Consume(batch2).ok());
  // Memory of a node from batch 1 is now non-zero.
  const graph::NodeId touched = ds.events[0].src;
  auto emb = model.EmbedEndpoints(FirstBatch(ds, 1));
  (void)touched;
  float norm = 0.0f;
  for (int64_t i = 0; i < emb.z_src.numel(); ++i) {
    norm += std::abs(emb.z_src.item(i));
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(StaticGnnTest, EmbeddingsTimeInvariant) {
  auto& ds = SharedDataset();
  StaticGnn sage(StaticGnn::Kind::kSage,
                 {.num_nodes = ds.num_nodes,
                  .dim = ds.feature_dim(),
                  .fanout = 1000},  // take all neighbors: deterministic
                 4);
  sage.SetTraining(false);
  auto batch = FirstBatch(ds, 8);
  ASSERT_TRUE(sage.Consume(batch).ok());
  tensor::NoGradGuard no_grad;
  auto a = sage.EmbedEndpoints(batch);
  ASSERT_TRUE(sage.Consume(batch).ok());  // "streaming" has no effect
  auto b = sage.EmbedEndpoints(batch);
  for (int64_t i = 0; i < a.z_src.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.z_src.item(i), b.z_src.item(i));
  }
}

TEST(RandomWalkTest, FitProducesEmbeddings) {
  auto& ds = SharedDataset();
  for (auto kind : {RandomWalkEmbedding::Kind::kDeepWalk,
                    RandomWalkEmbedding::Kind::kNode2Vec,
                    RandomWalkEmbedding::Kind::kCtdne}) {
    RandomWalkEmbedding model(kind, {.dim = 16, .walks_per_node = 2,
                                     .walk_length = 8, .epochs = 1},
                              5);
    ASSERT_TRUE(model.Fit(ds).ok()) << model.name();
    EXPECT_GT(model.num_walks(), 20u) << model.name();
    auto e = model.Embedding(ds.events[0].src);
    EXPECT_EQ(e.size(), 16u);
    float norm = 0.0f;
    for (float v : e) norm += std::abs(v);
    EXPECT_GT(norm, 0.0f) << model.name();
  }
}

TEST(RandomWalkTest, EmbeddingsReflectGraphStructure) {
  // Two disconnected cliques: intra-clique similarity must exceed
  // inter-clique similarity on average.
  data::Dataset ds;
  ds.name = "two-cliques";
  ds.num_nodes = 10;
  ds.num_users = 10;
  ds.features = graph::EdgeFeatureStore(4);
  double t = 0.0;
  Rng rng(6);
  for (int round = 0; round < 60; ++round) {
    const int base = (round % 2) * 5;
    const auto a = static_cast<graph::NodeId>(base + rng.UniformInt(5));
    auto b = a;
    while (b == a) {
      b = static_cast<graph::NodeId>(base + rng.UniformInt(5));
    }
    t += 1.0;
    ds.features.Append({0, 0, 0, 0});
    ds.events.push_back({a, b, t, static_cast<graph::EdgeId>(round)});
    ds.labels.push_back(-1);
  }
  ASSERT_TRUE(ds.SplitByFraction(0.9, 0.05).ok());
  RandomWalkEmbedding dw(RandomWalkEmbedding::Kind::kDeepWalk,
                         {.dim = 8, .walks_per_node = 10, .epochs = 3}, 7);
  ASSERT_TRUE(dw.Fit(ds).ok());
  auto cos = [&](graph::NodeId x, graph::NodeId y) {
    auto ex = dw.Embedding(x), ey = dw.Embedding(y);
    float dot = 0, nx = 0, ny = 0;
    for (size_t i = 0; i < ex.size(); ++i) {
      dot += ex[i] * ey[i];
      nx += ex[i] * ex[i];
      ny += ey[i] * ey[i];
    }
    return dot / (std::sqrt(nx) * std::sqrt(ny) + 1e-9f);
  };
  float intra = (cos(0, 1) + cos(2, 3) + cos(5, 6) + cos(7, 8)) / 4.0f;
  float inter = (cos(0, 5) + cos(1, 7) + cos(3, 9) + cos(4, 6)) / 4.0f;
  EXPECT_GT(intra, inter);
}

TEST(GaeTest, FitAndEmbedBothVariants) {
  auto& ds = SharedDataset();
  for (bool variational : {false, true}) {
    Gae model({.num_nodes = ds.num_nodes,
               .dim = ds.feature_dim(),
               .epochs = 1,
               .variational = variational},
              8);
    ASSERT_TRUE(model.Fit(ds).ok()) << model.name();
    auto e = model.Embedding(0);
    EXPECT_EQ(static_cast<int64_t>(e.size()), ds.feature_dim());
  }
}

TEST(StaticLinkProbeTest, RunsEndToEnd) {
  auto& ds = SharedDataset();
  RandomWalkEmbedding dw(RandomWalkEmbedding::Kind::kDeepWalk,
                         {.dim = 16, .walks_per_node = 3, .epochs = 1}, 9);
  ASSERT_TRUE(dw.Fit(ds).ok());
  train::ProbeConfig cfg;
  cfg.epochs = 2;
  auto result = train::EvaluateStaticLink(dw, ds, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->test.ap, 0.4);  // far above zero, below the dynamic models
  EXPECT_EQ(result->test.num_events,
            ds.events.size() - ds.val_end);
}

}  // namespace
}  // namespace baselines
}  // namespace apan
