#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace apan {
namespace {

// The LatencyRecorder tests that used to live here moved to
// tests/obs_metrics_test.cc when the recorder was folded into
// obs::Histogram (same clamp semantics, bucketed quantiles).

TEST(StopwatchTest, ElapsedIsMonotonicNonNegative) {
  Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double s = watch.ElapsedSeconds();
  const double ms = watch.ElapsedMillis();
  const double us = watch.ElapsedMicros();
  // Three reads at slightly different instants: each later read is in a
  // larger unit-scaled value, so the conversions bound each other.
  EXPECT_GE(ms, s * 1e3);
  EXPECT_GE(us, ms * 1e3 * 0.0);  // non-negative
  EXPECT_GT(us, s * 1e6 * 0.5);
}

TEST(StopwatchTest, RestartRewindsTheEpoch) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double before = watch.ElapsedMillis();
  watch.Restart();
  const double after = watch.ElapsedMillis();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace apan
