#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <cmath>

namespace apan {
namespace {

TEST(LatencyRecorderTest, EmptyRecorderReturnsZeroNotNaN) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.StdDev(), 0.0);
  EXPECT_EQ(rec.Quantile(0.5), 0.0);
  EXPECT_EQ(rec.P50(), 0.0);
  EXPECT_EQ(rec.P99(), 0.0);
  EXPECT_FALSE(std::isnan(rec.Mean()));
  EXPECT_FALSE(std::isnan(rec.StdDev()));
}

TEST(LatencyRecorderTest, SingleSampleStdDevIsZero) {
  LatencyRecorder rec;
  rec.Record(4.0);
  EXPECT_EQ(rec.Mean(), 4.0);
  EXPECT_EQ(rec.StdDev(), 0.0);
  EXPECT_FALSE(std::isnan(rec.StdDev()));
}

TEST(LatencyRecorderTest, QuantileInterpolates) {
  LatencyRecorder rec;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) rec.Record(v);
  EXPECT_EQ(rec.Quantile(0.0), 1.0);
  EXPECT_EQ(rec.Quantile(0.5), 3.0);
  EXPECT_EQ(rec.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(rec.Quantile(0.875), 4.5);
}

// Regression: q outside [0,1] used to index past the sorted array (q > 1)
// or wrap through the size_t cast (q < 0). Out-of-range q now clamps to
// the extreme order statistics.
TEST(LatencyRecorderTest, QuantileClampsOutOfRangeQ) {
  LatencyRecorder rec;
  for (const double v : {10.0, 20.0, 30.0}) rec.Record(v);
  EXPECT_EQ(rec.Quantile(1.5), 30.0);
  EXPECT_EQ(rec.Quantile(100.0), 30.0);
  EXPECT_EQ(rec.Quantile(-0.3), 10.0);
  EXPECT_EQ(rec.Quantile(-100.0), 10.0);
  // NaN q maps to a defined extreme, never into the index cast.
  EXPECT_EQ(rec.Quantile(std::nan("")), 30.0);
  // Clamping applies on the empty recorder too.
  LatencyRecorder empty;
  EXPECT_EQ(empty.Quantile(7.0), 0.0);
  EXPECT_EQ(empty.Quantile(-7.0), 0.0);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder rec;
  rec.Record(1.0);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.Quantile(0.99), 0.0);
}

}  // namespace
}  // namespace apan
