#include "graph/sampling.h"

#include <gtest/gtest.h>

#include "graph/static_graph.h"

namespace apan {
namespace graph {
namespace {

TemporalGraph MakeStar() {
  // Hub 0 connected to 1..4 at t=1..4; spoke 1 also touches 5 at t=5.
  TemporalGraph g(6);
  EXPECT_TRUE(g.AddEvent({0, 1, 1.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({0, 2, 2.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({0, 3, 3.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({0, 4, 4.0, -1}).ok());
  EXPECT_TRUE(g.AddEvent({1, 5, 5.0, -1}).ok());
  return g;
}

TEST(KHopTest, SingleHopMostRecent) {
  TemporalGraph g = MakeStar();
  auto hops = KHopMostRecent(g, {0}, 10.0, 1, 2);
  ASSERT_EQ(hops.size(), 2u);
  // Two most recent neighbors of 0: nodes 3 (t=3) and 4 (t=4).
  EXPECT_EQ(hops[0].node, 3);
  EXPECT_EQ(hops[1].node, 4);
  EXPECT_EQ(hops[0].hop, 1);
}

TEST(KHopTest, SecondHopExpandsFrontier) {
  TemporalGraph g = MakeStar();
  auto hops = KHopMostRecent(g, {5}, 10.0, 2, 3);
  // Hop 1 from 5: node 1. Hop 2 from 1: nodes {0, 5}.
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].node, 1);
  EXPECT_EQ(hops[0].hop, 1);
  EXPECT_EQ(hops[1].hop, 2);
  EXPECT_EQ(hops[2].hop, 2);
}

TEST(KHopTest, RespectsBeforeTime) {
  TemporalGraph g = MakeStar();
  auto hops = KHopMostRecent(g, {0}, 2.5, 1, 10);
  ASSERT_EQ(hops.size(), 2u);  // only t=1, t=2 edges exist before 2.5
  for (const auto& h : hops) EXPECT_LT(h.timestamp, 2.5);
}

TEST(KHopTest, DuplicatesPreserved) {
  // Node reachable from both seeds appears twice — ρ deduplicates later.
  TemporalGraph g(3);
  ASSERT_TRUE(g.AddEvent({0, 2, 1.0, -1}).ok());
  ASSERT_TRUE(g.AddEvent({1, 2, 2.0, -1}).ok());
  auto hops = KHopMostRecent(g, {0, 1}, 10.0, 1, 5);
  int count2 = 0;
  for (const auto& h : hops) {
    if (h.node == 2) ++count2;
  }
  EXPECT_EQ(count2, 2);
}

TEST(KHopTest, EmptyFrontierStopsEarly) {
  TemporalGraph g(4);
  auto hops = KHopMostRecent(g, {0}, 10.0, 3, 5);
  EXPECT_TRUE(hops.empty());
}

TEST(KHopTest, ZeroHopsIsEmpty) {
  TemporalGraph g = MakeStar();
  EXPECT_TRUE(KHopMostRecent(g, {0}, 10.0, 0, 5).empty());
}

TEST(KHopProperty, AllEntriesRespectCutoffAndFanout) {
  Rng rng(77);
  TemporalGraph g(30);
  double t = 0.0;
  for (int i = 0; i < 800; ++i) {
    t += rng.Exponential(1.0);
    ASSERT_TRUE(g.AddEvent({static_cast<NodeId>(rng.UniformInt(30)),
                            static_cast<NodeId>(rng.UniformInt(30)), t, -1})
                    .ok());
  }
  for (int trial = 0; trial < 50; ++trial) {
    const double cutoff = rng.Uniform(0.0, t);
    const auto seeds = std::vector<NodeId>{
        static_cast<NodeId>(rng.UniformInt(30)),
        static_cast<NodeId>(rng.UniformInt(30))};
    const int64_t fanout = 3;
    auto hops = KHopMostRecent(g, seeds, cutoff, 2, fanout);
    size_t hop1 = 0;
    for (const auto& h : hops) {
      EXPECT_LT(h.timestamp, cutoff);
      EXPECT_GE(h.hop, 1);
      EXPECT_LE(h.hop, 2);
      if (h.hop == 1) ++hop1;
    }
    EXPECT_LE(hop1, seeds.size() * static_cast<size_t>(fanout));
  }
}

}  // namespace
}  // namespace graph
}  // namespace apan
