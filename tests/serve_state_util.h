// Shared test helper: stitched-mailbox equality between a ShardedEngine's
// per-shard NodeStateStores and a reference model's monolithic mailbox.
//
// After the state-plane split the engine's served state lives in N
// disjoint per-shard stores, not in the model. Determinism is asserted by
// *stitching*: for every node, read the owner shard's store and compare
// against the single-worker reference — counts and timestamps must match
// bitwise (no tolerance), which is the acceptance bar inherited from the
// pre-split tests. Used by serve_sharded_test, serve_transport_test, and
// serve_state_test.

#ifndef APAN_TESTS_SERVE_STATE_UTIL_H_
#define APAN_TESTS_SERVE_STATE_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>

#include "core/apan_model.h"
#include "serve/sharded_engine.h"

namespace apan {
namespace serve {
namespace testutil {

/// Asserts the engine's stitched per-shard mailbox state is bitwise-equal
/// (valid counts + time-sorted timestamps) to `reference`'s monolithic
/// mailbox, and that at least `min_nonempty` nodes actually hold mail (a
/// trivially-empty comparison must not pass). Call after Flush/Shutdown
/// while the engine is still alive (the stores live in the engine).
inline void ExpectStitchedMailboxEqual(const ShardedEngine& engine,
                                       const core::ApanModel& reference,
                                       int64_t num_nodes,
                                       int64_t min_nonempty = 10) {
  int64_t nonempty = 0;
  for (graph::NodeId v = 0; v < num_nodes; ++v) {
    const core::NodeStateStore& store =
        engine.state_store(engine.router().ShardOf(v));
    ASSERT_TRUE(store.Owns(v)) << "router/store ownership disagree, node " << v;
    ASSERT_EQ(store.ValidCount(v), reference.mailbox().ValidCount(v))
        << "node " << v;
    if (store.ValidCount(v) == 0) continue;
    ++nonempty;
    const auto ra = store.ReadBatch({v});
    const auto rb = reference.mailbox().ReadBatch({v});
    ASSERT_EQ(ra.counts[0], rb.counts[0]) << "node " << v;
    for (size_t i = 0; i < ra.timestamps.size(); ++i) {
      ASSERT_EQ(ra.timestamps[i], rb.timestamps[i])
          << "node " << v << " slot " << i;  // bitwise: no tolerance
    }
  }
  EXPECT_GT(nonempty, min_nonempty);
}

/// Asserts the engine left the model's own mutable state untouched. The
/// strongest form holds when nothing else used the model monolithically:
/// the lazily-allocated default store was never even materialized. When
/// another actor did materialize it (e.g. offline training before
/// deployment), fall back to checking it holds no mail.
inline void ExpectModelStateUntouched(const core::ApanModel& model,
                                      int64_t num_nodes) {
  if (!model.state_store_allocated()) return;  // never materialized
  for (graph::NodeId v = 0; v < num_nodes; ++v) {
    ASSERT_EQ(model.mailbox().ValidCount(v), 0)
        << "engine wrote the model's mailbox, node " << v;
  }
}

}  // namespace testutil
}  // namespace serve
}  // namespace apan

#endif  // APAN_TESTS_SERVE_STATE_UTIL_H_
