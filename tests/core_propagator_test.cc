#include "core/propagator.h"

#include <gtest/gtest.h>

#include <map>

namespace apan {
namespace core {
namespace {

constexpr int64_t kDim = 4;

ApanConfig Config(int32_t hops) {
  ApanConfig c;
  c.num_nodes = 6;
  c.embedding_dim = kDim;
  c.mailbox_slots = 4;
  c.sampled_neighbors = 2;
  c.propagation_hops = hops;
  return c;
}

InteractionRecord Record(graph::NodeId src, graph::NodeId dst, double t,
                         graph::EdgeId edge, float zs, float zd) {
  InteractionRecord r;
  r.event = {src, dst, t, edge};
  r.z_src.assign(kDim, zs);
  r.z_dst.assign(kDim, zd);
  return r;
}

struct Fixture {
  Fixture() : graph(6), features(kDim) {
    // Pre-existing history: 0-1 @1, 1-2 @2, 2-3 @3.
    for (int i = 0; i < 3; ++i) {
      features.Append(std::vector<float>(kDim, 0.0f));
      APAN_CHECK(graph.AddEvent({i, i + 1, static_cast<double>(i + 1),
                                 static_cast<graph::EdgeId>(i)})
                     .ok());
    }
  }
  graph::TemporalGraph graph;
  graph::EdgeFeatureStore features;
};

TEST(MailPropagatorTest, MakeMailIsSum) {
  Fixture f;
  MailPropagator prop(Config(1), &f.graph, &f.features);
  graph::EdgeId e = f.features.Append({1, 2, 3, 4});
  auto mail = prop.MakeMail(Record(0, 1, 10.0, e, 0.5f, 0.25f));
  // mail = z_src + e + z_dst.
  EXPECT_FLOAT_EQ(mail[0], 0.5f + 1.0f + 0.25f);
  EXPECT_FLOAT_EQ(mail[3], 0.5f + 4.0f + 0.25f);
}

TEST(MailPropagatorTest, EndpointsAlwaysReceiveUnreduced) {
  Fixture f;
  MailPropagator prop(Config(0), &f.graph, &f.features);
  graph::EdgeId e1 = f.features.Append(std::vector<float>(kDim, 0.0f));
  graph::EdgeId e2 = f.features.Append(std::vector<float>(kDim, 0.0f));
  // Node 0 involved in two events: gets two separate deliveries.
  auto deliveries = prop.ComputeDeliveries(
      {Record(0, 4, 10.0, e1, 1.0f, 0.0f), Record(0, 5, 11.0, e2, 2.0f, 0.0f)});
  int node0 = 0;
  for (const auto& d : deliveries) {
    if (d.recipient == 0) {
      ++node0;
      EXPECT_EQ(d.contributions, 1);
    }
  }
  EXPECT_EQ(node0, 2);
  EXPECT_EQ(deliveries.size(), 4u);  // 2 events x 2 endpoints, no hops
}

TEST(MailPropagatorTest, PropagatedMailsAreMeanReduced) {
  Fixture f;
  // Node 2 is a 1-hop neighbor of both 1 and 3; two events touching 1 and
  // 3 both reach node 2, reduced to one delivery.
  MailPropagator prop(Config(1), &f.graph, &f.features);
  graph::EdgeId e1 = f.features.Append(std::vector<float>(kDim, 0.0f));
  graph::EdgeId e2 = f.features.Append(std::vector<float>(kDim, 0.0f));
  auto deliveries = prop.ComputeDeliveries(
      {Record(1, 4, 10.0, e1, 1.0f, 0.0f),
       Record(3, 5, 11.0, e2, 3.0f, 0.0f)});
  const MailDelivery* to2 = nullptr;
  for (const auto& d : deliveries) {
    if (d.recipient == 2) {
      EXPECT_EQ(to2, nullptr) << "node 2 must get exactly one delivery";
      to2 = &d;
    }
  }
  ASSERT_NE(to2, nullptr);
  EXPECT_EQ(to2->contributions, 2);
  // Mean of mails (1.0) and (3.0) elementwise = 2.0.
  EXPECT_FLOAT_EQ(to2->mail[0], 2.0f);
  EXPECT_EQ(to2->timestamp, 11.0);  // newest contribution
}

TEST(MailPropagatorTest, ZeroHopsReachesOnlyEndpoints) {
  Fixture f;
  MailPropagator prop(Config(0), &f.graph, &f.features);
  graph::EdgeId e = f.features.Append(std::vector<float>(kDim, 0.0f));
  auto deliveries =
      prop.ComputeDeliveries({Record(1, 4, 10.0, e, 0.0f, 0.0f)});
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].recipient, 1);
  EXPECT_EQ(deliveries[1].recipient, 4);
}

TEST(MailPropagatorTest, TwoHopReachesNeighborsOfNeighbors) {
  Fixture f;
  MailPropagator prop(Config(2), &f.graph, &f.features);
  graph::EdgeId e = f.features.Append(std::vector<float>(kDim, 0.0f));
  // Event at node 3: hop1 = {2}, hop2 = neighbors of 2 = {1, 3}; 3 is an
  // endpoint so only 1 appears in the reduced section.
  auto deliveries =
      prop.ComputeDeliveries({Record(3, 5, 10.0, e, 0.0f, 0.0f)});
  std::map<graph::NodeId, int64_t> got;
  for (const auto& d : deliveries) got[d.recipient] += 1;
  EXPECT_TRUE(got.count(3));  // endpoint
  EXPECT_TRUE(got.count(5));  // endpoint
  EXPECT_TRUE(got.count(2));  // 1-hop
  EXPECT_TRUE(got.count(1));  // 2-hop via 2
}

TEST(MailPropagatorTest, SamplingNeverUsesTheFuture) {
  Fixture f;
  MailPropagator prop(Config(1), &f.graph, &f.features);
  graph::EdgeId e = f.features.Append(std::vector<float>(kDim, 0.0f));
  // At t=1.5, node 1's only past neighbor is 0 (edge @1); edge to 2 (@2)
  // is in the future.
  auto deliveries =
      prop.ComputeDeliveries({Record(1, 5, 1.5, e, 0.0f, 0.0f)});
  for (const auto& d : deliveries) {
    EXPECT_NE(d.recipient, 2) << "future edge leaked into propagation";
  }
}

TEST(MailPropagatorTest, PropagateWritesMailboxes) {
  Fixture f;
  ApanConfig cfg = Config(1);
  MailPropagator prop(cfg, &f.graph, &f.features);
  Mailbox box(cfg.num_nodes, cfg.mailbox_slots, cfg.embedding_dim);
  graph::EdgeId e = f.features.Append(std::vector<float>(kDim, 0.0f));
  const int64_t delivered =
      prop.Propagate({Record(1, 4, 10.0, e, 1.0f, 1.0f)}, &box);
  EXPECT_GT(delivered, 2);
  EXPECT_EQ(box.ValidCount(1), 1);
  EXPECT_EQ(box.ValidCount(4), 1);
  EXPECT_FLOAT_EQ(box.RawSlot(1, 0)[0], 2.0f);  // 1 + 0 + 1
}

TEST(MailPropagatorTest, SelfLoopSingleEndpointDelivery) {
  Fixture f;
  MailPropagator prop(Config(0), &f.graph, &f.features);
  graph::EdgeId e = f.features.Append(std::vector<float>(kDim, 0.0f));
  auto deliveries =
      prop.ComputeDeliveries({Record(2, 2, 10.0, e, 1.0f, 1.0f)});
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].recipient, 2);
}

TEST(MailPropagatorTest, DimensionMismatchRejectedAtConstruction) {
  graph::TemporalGraph g(3);
  graph::EdgeFeatureStore wrong(kDim + 1);
  ApanConfig cfg = Config(1);
  cfg.num_nodes = 3;
  EXPECT_DEATH(MailPropagator(cfg, &g, &wrong), "mail dim");
}

}  // namespace
}  // namespace core
}  // namespace apan
