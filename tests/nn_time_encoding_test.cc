#include "nn/time_encoding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(TimeEncodingTest, Shape) {
  Rng rng(1);
  TimeEncoding enc(8, &rng);
  Tensor phi = enc.Forward({0.0, 1.0, 2.5});
  EXPECT_EQ(phi.shape(), (Shape{3, 8}));
}

TEST(TimeEncodingTest, ZeroDeltaIsCosPhase) {
  Rng rng(2);
  TimeEncoding enc(4, &rng);
  Tensor phi = enc.Forward({0.0, 0.0});
  // Φ(0) = cos(phase); phases start at 0 -> all ones, and the two rows
  // are identical.
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(phi.at(0, j), 1.0f, 1e-5f);
    EXPECT_FLOAT_EQ(phi.at(0, j), phi.at(1, j));
  }
}

TEST(TimeEncodingTest, ValuesBounded) {
  Rng rng(3);
  TimeEncoding enc(16, &rng);
  Tensor phi = enc.Forward({0.001, 1.0, 100.0, 12345.0});
  for (int64_t i = 0; i < phi.numel(); ++i) {
    EXPECT_LE(std::abs(phi.item(i)), 1.0f + 1e-5f);
  }
}

TEST(TimeEncodingTest, DistinctDeltasDistinctCodes) {
  Rng rng(4);
  TimeEncoding enc(16, &rng);
  Tensor phi = enc.Forward({0.5, 5.0});
  float diff = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::abs(phi.at(0, j) - phi.at(1, j));
  }
  EXPECT_GT(diff, 0.1f);
}

TEST(TimeEncodingTest, FrequencyLadderIsGeometric) {
  // The untrained frequencies follow 10^{-4 i / d}; the first is 1.
  Rng rng(5);
  TimeEncoding enc(4, &rng);
  auto params = enc.Parameters();
  ASSERT_EQ(params.size(), 2u);  // omega, phase
  EXPECT_NEAR(params[0].item(0), 1.0f, 1e-5f);
  EXPECT_GT(params[0].item(0), params[0].item(3));
}

TEST(TimeEncodingTest, TrainableParametersReceiveGradients) {
  Rng rng(6);
  TimeEncoding enc(8, &rng);
  Tensor phi = enc.Forward({1.0, 2.0});
  ASSERT_TRUE(tensor::SumAll(phi).Backward().ok());
  for (auto& p : enc.Parameters()) {
    double norm = 0.0;
    for (float g : p.GradToVector()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
  }
}

}  // namespace
}  // namespace nn
}  // namespace apan
