#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace apan {
namespace obs {
namespace {

// ---- Counter ---------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // Four threads hammer the same counter: two on private cells, two
  // sharing cell 0. Every increment must survive (relaxed atomics lose
  // ordering, never counts). TSan runs this too — the label `obs` is in
  // the sanitizer jobs' filters.
  Counter counter(3);
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter, t] {
      const int cell = t < 2 ? 0 : t - 1;
      for (int i = 0; i < kPerThread; ++i) counter.Add(cell, 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), 4 * kPerThread);
  EXPECT_EQ(counter.CellValue(0), 2 * kPerThread);
  EXPECT_EQ(counter.CellValue(1), kPerThread);
  EXPECT_EQ(counter.CellValue(2), kPerThread);
}

// ---- Gauge -----------------------------------------------------------------

TEST(GaugeTest, SetSumMax) {
  Gauge gauge(3);
  gauge.Set(0, 5);
  gauge.Set(1, 9);
  gauge.Set(2, 2);
  EXPECT_EQ(gauge.Sum(), 16);
  EXPECT_EQ(gauge.Max(), 9);
}

TEST(GaugeTest, UpdateMaxRatchetsUnderContention) {
  Gauge gauge(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10000; ++i) {
        gauge.UpdateMax(0, static_cast<int64_t>(t * 10000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gauge.Max(), 39999);
  gauge.UpdateMax(0, 7);  // lower value never regresses the high-water
  EXPECT_EQ(gauge.Max(), 39999);
}

// ---- Histogram: LatencyRecorder-contract semantics ------------------------

TEST(HistogramTest, EmptyReturnsZeroNotNaN) {
  Histogram rec(1);
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.StdDev(), 0.0);
  EXPECT_EQ(rec.Quantile(0.5), 0.0);
  EXPECT_EQ(rec.P50(), 0.0);
  EXPECT_EQ(rec.P99(), 0.0);
  EXPECT_FALSE(std::isnan(rec.Mean()));
  EXPECT_FALSE(std::isnan(rec.StdDev()));
}

TEST(HistogramTest, SingleSampleStdDevIsZero) {
  Histogram rec(1);
  rec.Record(4.0);
  EXPECT_EQ(rec.Mean(), 4.0);
  EXPECT_EQ(rec.StdDev(), 0.0);
  EXPECT_FALSE(std::isnan(rec.StdDev()));
  // A single sample pins every quantile via the observed-range clamp.
  EXPECT_EQ(rec.Quantile(0.0), 4.0);
  EXPECT_EQ(rec.Quantile(1.0), 4.0);
}

// Regression carried over from LatencyRecorder: q outside [0,1] clamps
// to the extreme order statistics, and NaN q maps to the max side
// (fmin/fmax eat NaN) rather than flowing into an index cast.
TEST(HistogramTest, QuantileClampsOutOfRangeQ) {
  Histogram rec(1);
  for (const double v : {10.0, 20.0, 30.0}) rec.Record(v);
  EXPECT_EQ(rec.Quantile(1.5), 30.0);
  EXPECT_EQ(rec.Quantile(100.0), 30.0);
  EXPECT_EQ(rec.Quantile(-0.3), 10.0);
  EXPECT_EQ(rec.Quantile(-100.0), 10.0);
  EXPECT_EQ(rec.Quantile(std::nan("")), 30.0);
  Histogram empty(1);
  EXPECT_EQ(empty.Quantile(7.0), 0.0);
  EXPECT_EQ(empty.Quantile(-7.0), 0.0);
}

TEST(HistogramTest, NegativeAndNaNValuesClampToZero) {
  Histogram rec(1);
  rec.Record(-3.0);
  rec.Record(std::nan(""));
  rec.Record(2.0);
  EXPECT_EQ(rec.count(), 3u);
  EXPECT_FALSE(std::isnan(rec.Mean()));
  EXPECT_EQ(rec.Min(), 0.0);
  EXPECT_EQ(rec.Max(), 2.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram rec(1);
  rec.Record(1.0);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.Quantile(0.99), 0.0);
}

TEST(HistogramTest, MeanAndStdDevMatchClosedForm) {
  Histogram rec(1);
  for (int i = 1; i <= 100; ++i) rec.Record(static_cast<double>(i));
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
  // Sample stddev of 1..100 = sqrt(sum((i-50.5)^2)/99) = 29.011...
  EXPECT_NEAR(rec.StdDev(), 29.0115, 1e-3);
  EXPECT_EQ(rec.Min(), 1.0);
  EXPECT_EQ(rec.Max(), 100.0);
  EXPECT_NEAR(rec.Sum(), 5050.0, 1e-9);
}

// ---- Histogram: quantile accuracy vs exact sort ----------------------------

// Seeded LCG so the sample set is reproducible without <random> variance
// across standard libraries.
uint64_t NextLcg(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

TEST(HistogramTest, QuantilesWithinBucketErrorBoundOfExactSort) {
  // Log-uniform samples over ~6 decades — the latency-like shape the
  // bucket layout is designed for.
  uint64_t state = 42;
  std::vector<double> samples;
  Histogram rec(4);
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(NextLcg(&state) % 1000000) / 1000000.0;
    const double v = std::pow(10.0, -3.0 + 6.0 * u);  // 1e-3 .. 1e3
    samples.push_back(v);
    rec.Record(i % 4, v);  // spread across cells; aggregation must merge
  }
  std::sort(samples.begin(), samples.end());

  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    // Exact quantile by the same interpolation rule LatencyRecorder used.
    const double pos = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double exact = samples[lo] * (1.0 - frac) + samples[hi] * frac;

    const double approx = rec.Quantile(q);
    // The histogram cannot localize a value more finely than its bucket:
    // the answer must fall within the bucket bounds of the exact value
    // (~3.2% relative width), with interpolation slop of one extra
    // bucket on either side for samples straddling the rank.
    double lower = 0.0, upper = 0.0;
    Histogram::BucketBounds(exact, &lower, &upper);
    const double width = upper - lower;
    EXPECT_GE(approx, lower - width) << "q=" << q << " exact=" << exact;
    EXPECT_LE(approx, upper + width) << "q=" << q << " exact=" << exact;
  }
}

// ---- Histogram: scrape-while-writing soak ----------------------------------

TEST(HistogramTest, ScrapeWhileWritingSoak) {
  // Readers aggregate while writers record. Nothing may tear, crash, or
  // produce impossible aggregates (NaN, negative counts, quantiles wildly
  // outside the recorded range). Run under TSan via the `obs` label.
  Histogram rec(2);
  std::atomic<bool> stop{false};
  std::thread writers[2];
  for (int t = 0; t < 2; ++t) {
    writers[t] = std::thread([&rec, &stop, t] {
      uint64_t state = 7 + static_cast<uint64_t>(t);
      // At least 1000 records even if the readers finish first (a 1-core
      // box can run all 200 scrape iterations before this thread starts).
      for (int n = 0; n < 1000 || !stop.load(std::memory_order_relaxed);
           ++n) {
        rec.Record(t, 0.001 + static_cast<double>(NextLcg(&state) % 1000));
      }
    });
  }
  for (int iter = 0; iter < 200; ++iter) {
    const uint64_t n = rec.count();
    const double mean = rec.Mean();
    const double p99 = rec.P99();
    EXPECT_FALSE(std::isnan(mean));
    EXPECT_FALSE(std::isnan(p99));
    EXPECT_GE(p99, 0.0);
    EXPECT_LE(p99, 1002.0);
    EXPECT_GE(rec.count(), n);  // monotone under concurrent writes
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  EXPECT_GT(rec.count(), 0u);
}

// ---- Registry --------------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndShared) {
  Registry registry;
  Counter* a = registry.GetCounter("serve.x", 4);
  Counter* b = registry.GetCounter("serve.x", 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("serve.x", 2)),
            static_cast<void*>(a));  // separate namespaces per type
  Histogram* h = registry.GetHistogram("stage.merge", 2);
  EXPECT_EQ(h, registry.GetHistogram("stage.merge", 2));
}

TEST(RegistryTest, ScrapeReportsEverything) {
  Registry registry;
  Counter* c = registry.GetCounter("serve.mails", 2);
  c->Add(0, 3);
  c->Add(1, 4);
  Gauge* g = registry.GetGauge("serve.depth", 2);
  g->Set(0, 5);
  g->Set(1, 9);
  Histogram* h = registry.GetHistogram("stage.sync");
  h->Record(1.5);
  h->Record(2.5);

  const Registry::Snapshot snap = registry.Scrape();
  const auto* crow = snap.FindCounter("serve.mails");
  ASSERT_NE(crow, nullptr);
  EXPECT_EQ(crow->total, 7);
  ASSERT_EQ(crow->cells.size(), 2u);
  EXPECT_EQ(crow->cells[1], 4);

  const auto* grow = snap.FindGauge("serve.depth");
  ASSERT_NE(grow, nullptr);
  EXPECT_EQ(grow->sum, 14);
  EXPECT_EQ(grow->max, 9);

  const auto* hrow = snap.FindHistogram("stage.sync");
  ASSERT_NE(hrow, nullptr);
  EXPECT_EQ(hrow->count, 2u);
  EXPECT_NEAR(hrow->mean, 2.0, 1e-9);
  EXPECT_NEAR(hrow->total_ms, 4.0, 1e-9);
  EXPECT_EQ(snap.FindHistogram("no.such"), nullptr);
}

TEST(RegistryTest, ConcurrentGetOrCreateIsSafe) {
  Registry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("contended", 2);
      c->Add(t % 2, 1);
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[0], seen[static_cast<size_t>(t)]);
  EXPECT_EQ(seen[0]->Value(), 8);
}

}  // namespace
}  // namespace obs
}  // namespace apan
