#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace apan {
namespace tensor {
namespace {

constexpr float kTol = 1e-5f;

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at(1, 1), 44.0f);
}

TEST(OpsTest, AddBroadcastLastDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36.0f);
}

TEST(OpsTest, AddBroadcastGradientSumsOverRows) {
  Tensor a = Tensor::Ones({3, 2}, true);
  Tensor bias = Tensor::Zeros({2}, true);
  bias.set_requires_grad(true);
  Tensor y = SumAll(Add(a, bias));
  ASSERT_TRUE(y.Backward().ok());
  auto g = bias.GradToVector();
  EXPECT_FLOAT_EQ(g[0], 3.0f);
  EXPECT_FLOAT_EQ(g[1], 3.0f);
}

TEST(OpsTest, SubAndNeg) {
  Tensor a = Tensor::FromVector({2}, {5, 7});
  Tensor b = Tensor::FromVector({2}, {2, 3});
  Tensor c = Sub(a, b);
  EXPECT_FLOAT_EQ(c.item(0), 3.0f);
  EXPECT_FLOAT_EQ(Neg(c).item(1), -4.0f);
}

TEST(OpsTest, MulElementwiseAndScalar) {
  Tensor a = Tensor::FromVector({2}, {3, 4});
  Tensor b = Tensor::FromVector({2}, {5, 6});
  EXPECT_FLOAT_EQ(Mul(a, b).item(1), 24.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, 0.5f).item(0), 1.5f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f).item(0), 4.0f);
}

TEST(OpsTest, ActivationValues) {
  Tensor x = Tensor::FromVector({4}, {-2, -0.5f, 0, 3});
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r.item(0), 0.0f);
  EXPECT_FLOAT_EQ(r.item(3), 3.0f);
  Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.item(2), 0.5f, kTol);
  EXPECT_NEAR(s.item(3), 1.0f / (1.0f + std::exp(-3.0f)), kTol);
  Tensor t = Tanh(x);
  EXPECT_NEAR(t.item(2), 0.0f, kTol);
  EXPECT_NEAR(t.item(0), std::tanh(-2.0f), kTol);
}

TEST(OpsTest, SigmoidExtremeInputsStable) {
  Tensor x = Tensor::FromVector({2}, {-100.0f, 100.0f});
  Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.item(0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.item(1), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(s.item(0)));
}

TEST(OpsTest, ExpLog) {
  Tensor x = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(Exp(x).item(1), std::exp(1.0f), 1e-4f);
  Tensor y = Tensor::FromVector({2}, {1.0f, std::exp(2.0f)});
  EXPECT_NEAR(Log(y).item(1), 2.0f, 1e-4f);
  // Log clamps non-positive inputs instead of producing -inf.
  Tensor z = Tensor::FromVector({1}, {0.0f});
  EXPECT_TRUE(std::isfinite(Log(z).item(0)));
}

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, BmmKnownValues) {
  // Two independent 1x2 @ 2x1 products.
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {5, 6, 7, 8});
  Tensor c = Bmm(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_FLOAT_EQ(c.item(0), 17.0f);  // 1*5+2*6
  EXPECT_FLOAT_EQ(c.item(1), 53.0f);  // 3*7+4*8
}

TEST(OpsTest, Transpose2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

TEST(OpsTest, Permute3D) {
  // {2,3,4} -> {4,2,3}
  std::vector<float> vals(24);
  for (int i = 0; i < 24; ++i) vals[i] = static_cast<float>(i);
  Tensor a = Tensor::FromVector({2, 3, 4}, vals);
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  // p[d][i][j] == a[i][j][d]; check (d=1, i=1, j=2) -> a flat 1*12+2*4+1=21
  EXPECT_FLOAT_EQ(p.item(1 * 6 + 1 * 3 + 2), 21.0f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(OpsTest, ConcatLastDim) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 10});
  Tensor c = ConcatLastDim({a, b});
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
}

TEST(OpsTest, ConcatRows) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(OpsTest, GatherRowsSelectsAndRepeats) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(OpsTest, GatherRowsGradScatterAdds) {
  Tensor a = Tensor::Ones({3, 2}, true);
  Tensor g = GatherRows(a, {1, 1});
  ASSERT_TRUE(SumAll(g).Backward().ok());
  auto grad = a.GradToVector();
  EXPECT_FLOAT_EQ(grad[0], 0.0f);  // row 0 untouched
  EXPECT_FLOAT_EQ(grad[2], 2.0f);  // row 1 hit twice
  EXPECT_FLOAT_EQ(grad[3], 2.0f);
  EXPECT_FLOAT_EQ(grad[4], 0.0f);
}

TEST(OpsTest, SliceCols) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = SliceCols(a, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 7.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = SoftmaxLastDim(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += s.at(r, c);
    EXPECT_NEAR(sum, 1.0f, kTol);
  }
  EXPECT_GT(s.at(0, 2), s.at(0, 1));
}

TEST(OpsTest, SoftmaxInvariantToShift) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({1, 3}, {1001, 1002, 1003});
  Tensor sa = SoftmaxLastDim(a);
  Tensor sb = SoftmaxLastDim(b);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(sa.at(0, c), sb.at(0, c), kTol);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromVector({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  Tensor ls = LogSoftmaxLastDim(a);
  Tensor s = SoftmaxLastDim(a);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(ls.at(0, c), std::log(s.at(0, c)), 1e-4f);
  }
}

TEST(OpsTest, RowNormalizeZeroMeanUnitVar) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, -5, 0, 5, 10});
  Tensor y = RowNormalize(a);
  for (int r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int c = 0; c < 4; ++c) mean += y.at(r, c);
    mean /= 4.0f;
    for (int c = 0; c < 4; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(OpsTest, RowNormalizeConstantRowIsFinite) {
  Tensor a = Tensor::Full({1, 4}, 3.0f);
  Tensor y = RowNormalize(a);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(std::isfinite(y.at(0, c)));
    EXPECT_NEAR(y.at(0, c), 0.0f, 1e-3f);
  }
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor y = Dropout(a, 0.5f, /*training=*/false, &rng);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.item(i), a.item(i));
}

TEST(OpsTest, DropoutTrainKeepsExpectation) {
  Rng rng(3);
  Tensor a = Tensor::Ones({20000});
  Tensor y = Dropout(a, 0.25f, /*training=*/true, &rng);
  double sum = 0.0;
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    sum += y.item(i);
    if (y.item(i) == 0.0f) ++zeros;
  }
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.03);  // inverted scaling
  EXPECT_NEAR(zeros / 20000.0, 0.25, 0.02);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 2.5f);
}

TEST(OpsTest, MeanDim1) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor m = MeanDim1(a);
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 20.0f);
}

TEST(OpsTest, RowwiseDot) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 3}, {1, 1, 1, 2, 2, 2});
  Tensor d = RowwiseDot(a, b);
  EXPECT_EQ(d.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(d.item(0), 6.0f);
  EXPECT_FLOAT_EQ(d.item(1), 30.0f);
}

TEST(OpsTest, BceWithLogitsKnownValue) {
  // x=0, t=1 -> log(2); x=0, t=0 -> log(2).
  Tensor logits = Tensor::Zeros({2});
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(OpsTest, BceWithLogitsExtremeLogitsFinite) {
  Tensor logits = Tensor::FromVector({2}, {80.0f, -80.0f});
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
}

TEST(OpsTest, BceGradientSign) {
  Tensor logits = Tensor::Zeros({1}, true);
  Tensor loss = BceWithLogits(logits, {1.0f});
  ASSERT_TRUE(loss.Backward().ok());
  EXPECT_LT(logits.GradToVector()[0], 0.0f);  // push logit up for target 1
}

TEST(OpsTest, GaussianKlZeroAtStandardNormal) {
  Tensor mu = Tensor::Zeros({3, 2});
  Tensor logvar = Tensor::Zeros({3, 2});
  EXPECT_NEAR(GaussianKl(mu, logvar).item(), 0.0f, 1e-6f);
}

TEST(OpsTest, GaussianKlPositiveOffOrigin) {
  Tensor mu = Tensor::Ones({2, 2});
  Tensor logvar = Tensor::Zeros({2, 2});
  EXPECT_GT(GaussianKl(mu, logvar).item(), 0.0f);
}

}  // namespace
}  // namespace tensor
}  // namespace apan
