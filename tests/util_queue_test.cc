#include "util/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace apan {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i).ok());
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.TryPop().has_value());
  ASSERT_TRUE(q.Push(1).ok());
  EXPECT_TRUE(q.TryPop().has_value());
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, DropNewestRejectsWhenFull) {
  BoundedQueue<int> q(2, OverflowPolicy::kDropNewest);
  ASSERT_TRUE(q.Push(1).ok());
  ASSERT_TRUE(q.Push(2).ok());
  Status s = q.Push(3);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, DropOldestEvicts) {
  BoundedQueue<int> q(2, OverflowPolicy::kDropOldest);
  ASSERT_TRUE(q.Push(1).ok());
  ASSERT_TRUE(q.Push(2).ok());
  ASSERT_TRUE(q.Push(3).ok());
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BoundedQueueTest, DropOldestReportsEvictedItem) {
  BoundedQueue<int> q(2, OverflowPolicy::kDropOldest);
  std::optional<int> evicted;
  ASSERT_TRUE(q.Push(1, &evicted).ok());
  EXPECT_FALSE(evicted.has_value());
  ASSERT_TRUE(q.Push(2, &evicted).ok());
  EXPECT_FALSE(evicted.has_value());
  ASSERT_TRUE(q.Push(3, &evicted).ok());
  ASSERT_TRUE(evicted.has_value());  // producers can account for the loss
  EXPECT_EQ(*evicted, 1);
  // A non-evicting push clears a reused out-param — no stale item.
  ASSERT_TRUE(q.Pop().has_value());
  ASSERT_TRUE(q.Push(4, &evicted).ok());
  EXPECT_FALSE(evicted.has_value());
}

TEST(BoundedQueueTest, DropNewestLeavesEvictedEmpty) {
  BoundedQueue<int> q(1, OverflowPolicy::kDropNewest);
  std::optional<int> evicted;
  ASSERT_TRUE(q.Push(1, &evicted).ok());
  EXPECT_TRUE(q.Push(2, &evicted).IsResourceExhausted());
  EXPECT_FALSE(evicted.has_value());  // the incoming item was rejected
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7).ok());
  q.Close();
  EXPECT_EQ(q.Push(8).code(), StatusCode::kCancelled);
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, BlockingPushUnblocksOnPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2).ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverAll) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long long> checksum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i).ok());
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        checksum += *v;
        ++consumed;
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
  const long long n = kPerProducer * kProducers;
  EXPECT_EQ(checksum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, PushAfterCloseLeavesEvictedEmpty) {
  BoundedQueue<int> q(1, OverflowPolicy::kDropOldest);
  ASSERT_TRUE(q.Push(1).ok());
  q.Close();
  // Seed the out-param with a stale value: the rejected push must clear
  // it, or a producer reusing the optional would double-count the item.
  std::optional<int> evicted = 99;
  EXPECT_EQ(q.Push(2, &evicted).code(), StatusCode::kCancelled);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(q.dropped(), 0u);  // Close is not an eviction
}

TEST(BoundedQueueTest, ConcurrentOverflowAccountsEveryItem) {
  // kDropOldest under producer contention: every pushed item must end up
  // either consumed or reported through the evicted out-param — no item
  // may vanish and none may be reported twice. Runs under the TSan tier
  // (see CMakeLists.txt), where a racy eviction path would also trip the
  // sanitizer, not just the checksum.
  BoundedQueue<int> q(4, OverflowPolicy::kDropOldest);
  constexpr int kPerProducer = 400;
  constexpr int kProducers = 4;
  std::atomic<long long> evicted_sum{0};
  std::atomic<int> evicted_count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &evicted_sum, &evicted_count, p] {
      std::optional<int> evicted;
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i, &evicted).ok());
        if (evicted.has_value()) {
          evicted_sum += *evicted;
          ++evicted_count;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  long long consumed_sum = 0;
  int consumed_count = 0;
  while (auto v = q.TryPop()) {
    consumed_sum += *v;
    ++consumed_count;
  }
  const long long n = kPerProducer * kProducers;
  EXPECT_EQ(consumed_count + evicted_count.load(), n);
  EXPECT_EQ(evicted_count.load(), static_cast<int>(q.dropped()));
  EXPECT_EQ(consumed_sum + evicted_sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  ASSERT_TRUE(q.Push(1).ok());
  EXPECT_EQ(*q.Pop(), 1);
}

}  // namespace
}  // namespace apan
