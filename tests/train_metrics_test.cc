#include "train/metrics.h"

#include <gtest/gtest.h>

namespace apan {
namespace train {
namespace {

TEST(AveragePrecisionTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}),
                   1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  // Positives ranked last: AP = (1/3 + 2/4) / 2.
  EXPECT_NEAR(AveragePrecision({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}),
              (1.0 / 3.0 + 2.0 / 4.0) / 2.0, 1e-9);
}

TEST(AveragePrecisionTest, SklearnCrossCheck) {
  // sklearn.metrics.average_precision_score(
  //   [0,0,1,1], [0.1,0.4,0.35,0.8]) == 0.8333333...
  EXPECT_NEAR(AveragePrecision({0.1f, 0.4f, 0.35f, 0.8f}, {0, 0, 1, 1}),
              0.8333333, 1e-5);
}

TEST(AveragePrecisionTest, AllSameScoreEqualsPrevalence) {
  // Uniform scores: AP collapses to the positive rate.
  EXPECT_NEAR(AveragePrecision({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5,
              0.1);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5f, 0.4f}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({}, {}), 0.0);
}

TEST(RocAucTest, PerfectAndInverted) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, KnownMidValue) {
  // Pairs: (pos 0.35 vs neg {0.1, 0.4}) + (pos 0.8 vs both) =
  // (1 + 0 + 1 + 1) / 4 = 0.75.
  EXPECT_NEAR(RocAuc({0.1f, 0.4f, 0.35f, 0.8f}, {0, 0, 1, 1}), 0.75, 1e-9);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  EXPECT_NEAR(RocAuc({0.5f, 0.5f}, {1, 0}), 0.5, 1e-9);
}

TEST(RocAucTest, DegenerateClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.1f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.1f}, {0, 0}), 0.5);
}

TEST(AccuracyTest, ThresholdBehaviour) {
  EXPECT_DOUBLE_EQ(
      AccuracyAtThreshold({0.7f, 0.3f, 0.6f, 0.4f}, {1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AccuracyAtThreshold({0.7f, 0.3f}, {1, 0}), 1.0);
  // Exactly at threshold counts as positive.
  EXPECT_DOUBLE_EQ(AccuracyAtThreshold({0.5f}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyAtThreshold({}, {}), 0.0);
}

TEST(SummarizeTest, MeanAndStdDev) {
  auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(Summarize({5.0}).stddev, 0.0);
  EXPECT_DOUBLE_EQ(Summarize({}).mean, 0.0);
}

}  // namespace
}  // namespace train
}  // namespace apan
