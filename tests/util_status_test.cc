#include "util/status.h"

#include <gtest/gtest.h>

namespace apan {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

Status FailingOperation() { return Status::IoError("disk"); }

Status Propagates() {
  APAN_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  APAN_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseAssignOrReturn(7, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace apan
