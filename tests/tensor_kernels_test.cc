// Kernel parity suite + serve-hot-path regression tests.
//
// Parity contract (see kernels.h): the dispatched implementation (AVX2 /
// NEON / blocked scalar, whatever the CPU selected) must agree with the
// portable blocked-scalar tier BITWISE on every kernel, and with the
// naive serial reference exactly on elementwise ops / matmuls and within
// 2 ULP on blocked reductions. Plus: the fused inference paths
// (attention, encoder) match the generic op compositions; a NoGradGuard
// serve encode registers zero autograd nodes; a warm TensorArena encode
// performs zero heap impl allocations; repeated encodes at one batch
// size never rebuild the learned-position id table.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/encoder.h"
#include "core/node_state_store.h"
#include "nn/attention.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace apan {
namespace {

namespace kernels = tensor::kernels;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> RandomVec(size_t n, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal()) * scale;
  return v;
}

/// Distance in representable floats (0 = bitwise equal). Treats any
/// NaN/mismatched-sign pair as huge.
int64_t UlpDiff(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map to a monotonic integer line (lexicographic float ordering).
  if (ia < 0) ia = static_cast<int32_t>(0x80000000u) - ia;
  if (ib < 0) ib = static_cast<int32_t>(0x80000000u) - ib;
  return std::abs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

void ExpectBitwise(const std::vector<float>& a, const std::vector<float>& b,
                   const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(UlpDiff(a[i], b[i]), 0)
        << what << " diverges at " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Tolerance vs the SERIAL reference, whose summation order legitimately
/// differs from the blocked kernels: a couple of ULP at the result's
/// magnitude, with an absolute floor for near-zero outputs (where pure
/// ULP distance explodes even for negligible absolute error).
void ExpectCloseToReference(const std::vector<float>& a,
                            const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const float tol =
        1e-5f + 4e-7f * std::max(std::abs(a[i]), std::abs(b[i]));
    ASSERT_NEAR(a[i], b[i], tol)
        << what << " diverges at " << i << ": " << a[i] << " vs " << b[i];
  }
}

// ---- Dispatched vs blocked-scalar: bitwise ---------------------------------

TEST(KernelParityTest, MatMulMatchesScalarAndReferenceBitwise) {
  Rng rng(1);
  const struct {
    int64_t n, k, m;
  } shapes[] = {{1, 1, 1}, {5, 7, 9},   {2, 3, 32},
                {8, 128, 33}, {32, 32, 32}, {3, 10, 200}};
  for (const auto& s : shapes) {
    const auto a = RandomVec(static_cast<size_t>(s.n * s.k), &rng);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.m), &rng);
    std::vector<float> dispatched(static_cast<size_t>(s.n * s.m));
    std::vector<float> scalar(dispatched.size());
    std::vector<float> reference(dispatched.size());
    kernels::MatMul(a.data(), b.data(), dispatched.data(), s.n, s.k, s.m);
    kernels::scalar::MatMul(a.data(), b.data(), scalar.data(), s.n, s.k,
                            s.m);
    kernels::reference::MatMul(a.data(), b.data(), reference.data(), s.n,
                               s.k, s.m);
    ExpectBitwise(dispatched, scalar, "MatMul vs scalar");
    // Per-element accumulation is serial over k in every tier, so even
    // the naive reference agrees bitwise.
    ExpectBitwise(dispatched, reference, "MatMul vs reference");
  }
}

TEST(KernelParityTest, BmmMatchesScalarBitwise) {
  Rng rng(2);
  const int64_t bs = 3, n = 4, k = 10, m = 17;
  const auto a = RandomVec(static_cast<size_t>(bs * n * k), &rng);
  const auto b = RandomVec(static_cast<size_t>(bs * k * m), &rng);
  std::vector<float> dispatched(static_cast<size_t>(bs * n * m));
  std::vector<float> scalar(dispatched.size());
  kernels::Bmm(a.data(), b.data(), dispatched.data(), bs, n, k, m);
  kernels::scalar::Bmm(a.data(), b.data(), scalar.data(), bs, n, k, m);
  ExpectBitwise(dispatched, scalar, "Bmm vs scalar");
}

TEST(KernelParityTest, SoftmaxMatchesScalarBitwiseAndReferenceUlp) {
  Rng rng(3);
  for (const int64_t d : {1, 10, 33, 100}) {
    const int64_t rows = 17;
    const auto x = RandomVec(static_cast<size_t>(rows * d), &rng, 3.0f);
    std::vector<float> dispatched(x.size()), scalar(x.size()),
        reference(x.size());
    kernels::SoftmaxLastDim(x.data(), dispatched.data(), rows, d);
    kernels::scalar::SoftmaxLastDim(x.data(), scalar.data(), rows, d);
    kernels::reference::SoftmaxLastDim(x.data(), reference.data(), rows, d);
    ExpectBitwise(dispatched, scalar, "Softmax vs scalar");
    ExpectCloseToReference(dispatched, reference, "Softmax vs reference");
    for (int64_t r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        const float p = dispatched[static_cast<size_t>(r * d + j)];
        EXPECT_GE(p, 0.0f);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST(KernelParityTest, MaskedSoftmaxMatchesScalarAndRespectsMask) {
  Rng rng(4);
  const int64_t b = 5, h = 2, m = 10;
  const auto scores = RandomVec(static_cast<size_t>(b * h * m), &rng);
  std::vector<float> mask(static_cast<size_t>(b * m), 0.0f);
  // Mask the tail slots of every row.
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t s = 6; s < m; ++s) {
      mask[static_cast<size_t>(bi * m + s)] =
          nn::MultiHeadAttention::kMaskedOut;
    }
  }
  std::vector<float> dispatched(scores.size()), scalar(scores.size());
  kernels::MaskedSoftmax(scores.data(), mask.data(), dispatched.data(), b, h,
                         m);
  kernels::scalar::MaskedSoftmax(scores.data(), mask.data(), scalar.data(),
                                 b, h, m);
  ExpectBitwise(dispatched, scalar, "MaskedSoftmax vs scalar");
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      for (int64_t s = 6; s < m; ++s) {
        EXPECT_LT(dispatched[static_cast<size_t>((bi * h + hi) * m + s)],
                  1e-12f);
      }
    }
  }
}

TEST(KernelParityTest, RowNormalizeMatchesScalarBitwiseAndReferenceUlp) {
  Rng rng(5);
  for (const int64_t d : {1, 8, 32, 50}) {
    const int64_t rows = 13;
    const auto x = RandomVec(static_cast<size_t>(rows * d), &rng, 2.0f);
    std::vector<float> dispatched(x.size()), scalar(x.size()),
        reference(x.size());
    std::vector<float> inv_d(static_cast<size_t>(rows)),
        inv_s(static_cast<size_t>(rows));
    kernels::RowNormalize(x.data(), dispatched.data(), rows, d, 1e-5f,
                          inv_d.data());
    kernels::scalar::RowNormalize(x.data(), scalar.data(), rows, d, 1e-5f,
                                  inv_s.data());
    kernels::reference::RowNormalize(x.data(), reference.data(), rows, d,
                                     1e-5f, nullptr);
    ExpectBitwise(dispatched, scalar, "RowNormalize vs scalar");
    ExpectBitwise(inv_d, inv_s, "RowNormalize inv_sigma vs scalar");
    ExpectCloseToReference(dispatched, reference,
                           "RowNormalize vs reference");
  }
}

TEST(KernelParityTest, ElementwiseKernelsMatchScalarAndReferenceExactly) {
  Rng rng(6);
  const int64_t rows = 9, d = 37;
  const auto x = RandomVec(static_cast<size_t>(rows * d), &rng);
  const auto bias = RandomVec(static_cast<size_t>(d), &rng);
  std::vector<float> dispatched(x.size()), scalar(x.size()),
      reference(x.size());

  kernels::AddBiasRelu(x.data(), bias.data(), dispatched.data(), rows, d);
  kernels::scalar::AddBiasRelu(x.data(), bias.data(), scalar.data(), rows,
                               d);
  kernels::reference::AddBiasRelu(x.data(), bias.data(), reference.data(),
                                  rows, d);
  ExpectBitwise(dispatched, scalar, "AddBiasRelu vs scalar");
  ExpectBitwise(dispatched, reference, "AddBiasRelu vs reference");

  kernels::AddBias(x.data(), bias.data(), dispatched.data(), rows, d);
  kernels::scalar::AddBias(x.data(), bias.data(), scalar.data(), rows, d);
  ExpectBitwise(dispatched, scalar, "AddBias vs scalar");

  const auto y = RandomVec(x.size(), &rng);
  kernels::AddSame(x.data(), y.data(), dispatched.data(),
                   static_cast<int64_t>(x.size()));
  kernels::scalar::AddSame(x.data(), y.data(), scalar.data(),
                           static_cast<int64_t>(x.size()));
  ExpectBitwise(dispatched, scalar, "AddSame vs scalar");
}

TEST(KernelParityTest, DotMatchesScalarBitwiseAndReferenceUlp) {
  Rng rng(7);
  for (const int64_t n : {1, 7, 8, 16, 100, 1000}) {
    const auto a = RandomVec(static_cast<size_t>(n), &rng);
    const auto b = RandomVec(static_cast<size_t>(n), &rng);
    const float dispatched = kernels::Dot(a.data(), b.data(), n);
    const float scalar = kernels::scalar::Dot(a.data(), b.data(), n);
    const float reference = kernels::reference::Dot(a.data(), b.data(), n);
    EXPECT_EQ(UlpDiff(dispatched, scalar), 0) << "Dot vs scalar, n=" << n;
    // Serial-vs-blocked drift grows with length; compare at hot sizes.
    if (n <= 100) {
      ExpectCloseToReference({dispatched}, {reference}, "Dot vs reference");
    }
  }
}

TEST(KernelParityTest, AttentionKernelsMatchScalarBitwise) {
  Rng rng(8);
  const int64_t b = 6, h = 2, m = 10, dh = 16;
  const auto q = RandomVec(static_cast<size_t>(b * h * dh), &rng);
  const auto k = RandomVec(static_cast<size_t>(b * m * h * dh), &rng);
  std::vector<float> s_d(static_cast<size_t>(b * h * m)), s_s(s_d.size());
  kernels::AttentionScores(q.data(), k.data(), s_d.data(), b, h, m, dh,
                           0.25f);
  kernels::scalar::AttentionScores(q.data(), k.data(), s_s.data(), b, h, m,
                                   dh, 0.25f);
  ExpectBitwise(s_d, s_s, "AttentionScores vs scalar");

  std::vector<float> c_d(static_cast<size_t>(b * h * dh)), c_s(c_d.size());
  kernels::AttentionContext(s_d.data(), k.data(), c_d.data(), b, h, m, dh);
  kernels::scalar::AttentionContext(s_d.data(), k.data(), c_s.data(), b, h,
                                    m, dh);
  ExpectBitwise(c_d, c_s, "AttentionContext vs scalar");
}

TEST(KernelParityTest, ResidualLayerNormMatchesScalarAndComposedOps) {
  Rng rng(9);
  const int64_t rows = 11, d = 32;
  const auto x = RandomVec(static_cast<size_t>(rows * d), &rng);
  const auto res = RandomVec(static_cast<size_t>(rows * d), &rng);
  const auto gain = RandomVec(static_cast<size_t>(d), &rng);
  const auto bias = RandomVec(static_cast<size_t>(d), &rng);
  std::vector<float> dispatched(x.size()), scalar(x.size());
  kernels::ResidualLayerNorm(x.data(), res.data(), gain.data(), bias.data(),
                             dispatched.data(), rows, d, 1e-5f);
  kernels::scalar::ResidualLayerNorm(x.data(), res.data(), gain.data(),
                                     bias.data(), scalar.data(), rows, d,
                                     1e-5f);
  ExpectBitwise(dispatched, scalar, "ResidualLayerNorm vs scalar");

  // The fusion must equal the op composition RowNormalize*gain+bias over
  // the sum — same per-element operation order, so bitwise.
  std::vector<float> sum(x.size());
  kernels::AddSame(x.data(), res.data(), sum.data(),
                   static_cast<int64_t>(x.size()));
  std::vector<float> normed(x.size());
  kernels::RowNormalize(sum.data(), normed.data(), rows, d, 1e-5f, nullptr);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < d; ++j) {
      const size_t i = static_cast<size_t>(r * d + j);
      normed[i] = normed[i] * gain[static_cast<size_t>(j)] +
                  bias[static_cast<size_t>(j)];
    }
  }
  ExpectBitwise(dispatched, normed, "ResidualLayerNorm vs composition");
}

// ---- AddBiasRelu op: autograd ----------------------------------------------

TEST(AddBiasReluOpTest, MatchesReluOfAddForwardAndBackward) {
  Rng rng(10);
  const int64_t n = 6, d = 11;
  const auto xv = RandomVec(static_cast<size_t>(n * d), &rng);
  const auto bv = RandomVec(static_cast<size_t>(d), &rng);

  Tensor x1 = Tensor::FromVector({n, d}, xv, /*requires_grad=*/true);
  Tensor b1 = Tensor::FromVector({d}, bv, /*requires_grad=*/true);
  Tensor fused = tensor::AddBiasRelu(x1, b1);

  Tensor x2 = Tensor::FromVector({n, d}, xv, /*requires_grad=*/true);
  Tensor b2 = Tensor::FromVector({d}, bv, /*requires_grad=*/true);
  Tensor composed = tensor::Relu(tensor::Add(x2, b2));

  ExpectBitwise(fused.values(), composed.values(), "AddBiasRelu forward");

  std::vector<float> grad_out(static_cast<size_t>(n * d));
  for (size_t i = 0; i < grad_out.size(); ++i) {
    grad_out[i] = 0.1f * static_cast<float>(i % 7) - 0.3f;
  }
  ASSERT_TRUE(fused.Backward(grad_out).ok());
  ASSERT_TRUE(composed.Backward(grad_out).ok());
  ExpectBitwise(x1.GradToVector(), x2.GradToVector(), "AddBiasRelu dx");
  ExpectBitwise(b1.GradToVector(), b2.GradToVector(), "AddBiasRelu dbias");
}

// ---- Training-side backward kernels (per-ISA contract) ----------------------
// The dispatched tier may contract into FMA (kernels.h: training kernels
// promise within-process determinism, not cross-ISA parity), so the
// checks are: agreement with the serial reference within tolerance,
// += accumulate semantics, and bitwise repeatability on this host.

TEST(BackwardKernelTest, MatMulGradsMatchReferenceAndAccumulate) {
  Rng rng(7101);
  const struct { int64_t n, k, m; } shapes[] = {
      {5, 17, 12},  // SIMD tails on both k and m
      {8, 32, 32},  // the paper's d=32 square case
      {1, 3, 70}};  // skinny
  for (const auto& s : shapes) {
    const auto g = RandomVec(static_cast<size_t>(s.n * s.m), &rng);
    const auto a = RandomVec(static_cast<size_t>(s.n * s.k), &rng);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.m), &rng);
    // Non-zero seeds verify the += contract, not just the product.
    const auto seed_a = RandomVec(static_cast<size_t>(s.n * s.k), &rng);
    const auto seed_b = RandomVec(static_cast<size_t>(s.k * s.m), &rng);

    std::vector<float> da = seed_a, da_ref = seed_a;
    kernels::MatMulGradA(g.data(), b.data(), da.data(), s.n, s.k, s.m);
    kernels::reference::MatMulGradA(g.data(), b.data(), da_ref.data(), s.n,
                                    s.k, s.m);
    ExpectCloseToReference(da, da_ref, "MatMulGradA vs reference");

    std::vector<float> db = seed_b, db_ref = seed_b;
    kernels::MatMulGradB(a.data(), g.data(), db.data(), s.n, s.k, s.m);
    kernels::reference::MatMulGradB(a.data(), g.data(), db_ref.data(), s.n,
                                    s.k, s.m);
    ExpectCloseToReference(db, db_ref, "MatMulGradB vs reference");

    // Same host, same inputs: bitwise repeatable.
    std::vector<float> da2 = seed_a;
    kernels::MatMulGradA(g.data(), b.data(), da2.data(), s.n, s.k, s.m);
    ExpectBitwise(da, da2, "MatMulGradA repeatability");
  }
}

TEST(BackwardKernelTest, RowwiseBackwardsMatchReference) {
  Rng rng(7102);
  const int64_t rows = 9, d = 37;  // vector width tails
  const size_t nd = static_cast<size_t>(rows * d);
  const auto x = RandomVec(nd, &rng);
  const auto g = RandomVec(nd, &rng);
  const auto seed = RandomVec(nd, &rng);

  std::vector<float> y(nd);
  kernels::SoftmaxLastDim(x.data(), y.data(), rows, d);
  std::vector<float> dx = seed, dx_ref = seed;
  kernels::SoftmaxBackward(y.data(), g.data(), dx.data(), rows, d);
  kernels::reference::SoftmaxBackward(y.data(), g.data(), dx_ref.data(), rows,
                                      d);
  ExpectCloseToReference(dx, dx_ref, "SoftmaxBackward vs reference");

  std::vector<float> normed(nd), inv_sigma(static_cast<size_t>(rows));
  kernels::RowNormalize(x.data(), normed.data(), rows, d, 1e-5f,
                        inv_sigma.data());
  std::vector<float> dn = seed, dn_ref = seed;
  kernels::RowNormalizeBackward(normed.data(), g.data(), inv_sigma.data(),
                                dn.data(), rows, d);
  kernels::reference::RowNormalizeBackward(normed.data(), g.data(),
                                           inv_sigma.data(), dn_ref.data(),
                                           rows, d);
  ExpectCloseToReference(dn, dn_ref, "RowNormalizeBackward vs reference");
}

TEST(BackwardKernelTest, AddBiasReluBackwardMatchesReferenceAndNullSinks) {
  Rng rng(7103);
  const int64_t rows = 8, d = 21;
  const size_t nd = static_cast<size_t>(rows * d);
  const auto y = RandomVec(nd, &rng);  // mixed signs: exercises the mask
  const auto g = RandomVec(nd, &rng);

  std::vector<float> dx(nd, 0.25f), dx_ref(nd, 0.25f);
  std::vector<float> db(static_cast<size_t>(d), -0.5f);
  std::vector<float> db_ref(static_cast<size_t>(d), -0.5f);
  kernels::AddBiasReluBackward(y.data(), g.data(), dx.data(), db.data(), rows,
                               d);
  kernels::reference::AddBiasReluBackward(y.data(), g.data(), dx_ref.data(),
                                          db_ref.data(), rows, d);
  ExpectCloseToReference(dx, dx_ref, "AddBiasReluBackward dx");
  ExpectCloseToReference(db, db_ref, "AddBiasReluBackward dbias");

  // Null sinks skip that side without touching the other.
  std::vector<float> dx_only(nd, 0.25f);
  kernels::AddBiasReluBackward(y.data(), g.data(), dx_only.data(), nullptr,
                               rows, d);
  ExpectBitwise(dx_only, dx, "AddBiasReluBackward dx with null dbias");
  std::vector<float> db_only(static_cast<size_t>(d), -0.5f);
  kernels::AddBiasReluBackward(y.data(), g.data(), nullptr, db_only.data(),
                               rows, d);
  ExpectBitwise(db_only, db, "AddBiasReluBackward dbias with null dx");
}

TEST(BackwardKernelTest, AccumulateFamilyMatchesSerialLoops) {
  Rng rng(7104);
  for (const int64_t n : {1, 7, 8, 64, 129}) {
    const auto x = RandomVec(static_cast<size_t>(n), &rng);
    const auto m = RandomVec(static_cast<size_t>(n), &rng);
    const auto seed = RandomVec(static_cast<size_t>(n), &rng);

    std::vector<float> y = seed, want = seed;
    kernels::Accumulate(x.data(), y.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      want[static_cast<size_t>(i)] += x[static_cast<size_t>(i)];
    }
    ExpectBitwise(y, want, "Accumulate");

    std::vector<float> ym = seed, want_m = seed;
    kernels::AccumulateMul(x.data(), m.data(), ym.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      want_m[static_cast<size_t>(i)] +=
          x[static_cast<size_t>(i)] * m[static_cast<size_t>(i)];
    }
    ExpectCloseToReference(ym, want_m, "AccumulateMul");

    std::vector<float> ya = seed, want_a = seed;
    kernels::Axpy(0.75f, x.data(), ya.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      want_a[static_cast<size_t>(i)] += 0.75f * x[static_cast<size_t>(i)];
    }
    ExpectCloseToReference(ya, want_a, "Axpy");
  }
}

// ---- Fused inference paths vs generic graphs --------------------------------

TEST(FusedForwardTest, AttentionInferenceMatchesTrainingGraph) {
  Rng rng(11);
  nn::MultiHeadAttention mha(32, 2, &rng);
  Tensor q = Tensor::Randn({7, 32}, &rng);
  Tensor kv = Tensor::Randn({7, 10, 32}, &rng);
  std::vector<float> mask(70, 0.0f);
  for (int64_t b = 0; b < 7; ++b) {
    for (int64_t s = 4 + (b % 3); s < 10; ++s) {
      mask[static_cast<size_t>(b * 10 + s)] =
          nn::MultiHeadAttention::kMaskedOut;
    }
  }
  nn::AttentionOutput generic = mha.Forward(q, kv, kv, &mask);
  nn::AttentionOutput fused;
  {
    tensor::NoGradGuard no_grad;
    fused = mha.Forward(q, kv, kv, &mask);
  }
  ASSERT_EQ(fused.output.shape(), generic.output.shape());
  ASSERT_EQ(fused.weights.shape(), generic.weights.shape());
  for (int64_t i = 0; i < generic.output.numel(); ++i) {
    EXPECT_NEAR(fused.output.item(i), generic.output.item(i), 2e-4f);
  }
  for (int64_t i = 0; i < generic.weights.numel(); ++i) {
    EXPECT_NEAR(fused.weights.item(i), generic.weights.item(i), 1e-4f);
  }
}

struct EncoderFixture {
  core::ApanConfig config;
  Rng rng{2021};
  EncoderFixture() {
    config.num_nodes = 50;
    config.embedding_dim = 32;
    config.mailbox_slots = 10;
    config.num_heads = 2;
    config.dropout = 0.0f;
  }

  /// A store with some mail and non-zero embeddings for `nodes`.
  void Warm(core::NodeStateStore* store, const std::vector<graph::NodeId>& nodes) {
    Rng mail_rng(7);
    for (const graph::NodeId v : nodes) {
      std::vector<float> z(static_cast<size_t>(config.embedding_dim));
      for (auto& x : z) x = static_cast<float>(mail_rng.Normal());
      store->SetLastEmbedding(v, z);
      const int mails = static_cast<int>(mail_rng.UniformInt(7));
      for (int i = 0; i < mails; ++i) {
        std::vector<float> mail(static_cast<size_t>(config.embedding_dim));
        for (auto& x : mail) x = static_cast<float>(mail_rng.Normal());
        core::MailDelivery d{v, std::move(mail), 0.5 * i, 1};
        store->DeliverBatch(std::vector<core::MailDelivery>{std::move(d)});
      }
    }
  }
};

TEST(FusedForwardTest, EncoderInferenceMatchesTrainingGraph) {
  EncoderFixture f;
  core::ApanEncoder encoder(f.config, &f.rng);
  encoder.SetTraining(false);
  core::NodeStateStore store(f.config.num_nodes, f.config.mailbox_slots,
                             f.config.embedding_dim);
  std::vector<graph::NodeId> nodes = {1, 4, 9, 16, 25, 36, 49};
  f.Warm(&store, nodes);

  // Generic graph path (gradient recording on).
  core::ApanEncoder::Output generic = encoder.EncodeNodes(store, nodes);
  core::ApanEncoder::Output fused;
  {
    tensor::NoGradGuard no_grad;
    fused = encoder.EncodeNodes(store, nodes);
  }
  ASSERT_EQ(fused.embeddings.shape(), generic.embeddings.shape());
  for (int64_t i = 0; i < generic.embeddings.numel(); ++i) {
    EXPECT_NEAR(fused.embeddings.item(i), generic.embeddings.item(i), 5e-4f);
  }
  for (int64_t i = 0; i < generic.attention.numel(); ++i) {
    EXPECT_NEAR(fused.attention.item(i), generic.attention.item(i), 1e-4f);
  }
}

// ---- Arena + autograd-free serve encode -------------------------------------

TEST(ArenaTest, WarmServeEncodeAllocatesNothingAndRegistersNoAutograd) {
  EncoderFixture f;
  core::ApanEncoder encoder(f.config, &f.rng);
  encoder.SetTraining(false);
  core::NodeStateStore store(f.config.num_nodes, f.config.mailbox_slots,
                             f.config.embedding_dim);
  std::vector<graph::NodeId> nodes = {2, 3, 5, 7, 11, 13, 17, 19};
  f.Warm(&store, nodes);

  tensor::NoGradGuard no_grad;
  tensor::TensorArena arena;
  std::vector<float> first_values;
  {
    tensor::ArenaScope scope(&arena);
    core::ApanEncoder::Output out = encoder.EncodeNodes(store, nodes);
    // Zero autograd nodes on the serve path: no recorded parents, no
    // backward closure, no grad requirement.
    EXPECT_FALSE(out.embeddings.requires_grad());
    EXPECT_TRUE(out.embeddings.impl()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(out.embeddings.impl()->backward_fn));
    first_values.assign(out.embeddings.data(),
                        out.embeddings.data() + out.embeddings.numel());
  }  // out released -> every pooled impl is reusable

  const int64_t warm_fresh = arena.fresh_impls();
  EXPECT_GT(warm_fresh, 0);  // the warm-up batch did allocate

  for (int round = 0; round < 3; ++round) {
    tensor::ArenaScope scope(&arena);
    core::ApanEncoder::Output out = encoder.EncodeNodes(store, nodes);
    // Bitwise-deterministic encode, through recycled buffers.
    ASSERT_EQ(out.embeddings.numel(),
              static_cast<int64_t>(first_values.size()));
    for (int64_t i = 0; i < out.embeddings.numel(); ++i) {
      ASSERT_EQ(UlpDiff(out.embeddings.item(i),
                        first_values[static_cast<size_t>(i)]),
                0);
    }
  }
  // Zero per-op heap allocations after warm-up: the NewImpl hook
  // (fresh_impls) never moved again, everything came from the pool.
  EXPECT_EQ(arena.fresh_impls(), warm_fresh);
  EXPECT_GT(arena.reused_impls(), 0);
}

TEST(ArenaTest, TensorHeldAcrossScopesIsNotRecycled) {
  tensor::NoGradGuard no_grad;
  tensor::TensorArena arena;
  Tensor held;
  {
    tensor::ArenaScope scope(&arena);
    held = tensor::ForwardBuffer({4, 4});
    held.set_item(0, 42.0f);
  }
  {
    tensor::ArenaScope scope(&arena);
    Tensor fresh = tensor::ForwardBuffer({4, 4});
    // The live tensor's impl was skipped, not handed out again.
    EXPECT_NE(fresh.impl().get(), held.impl().get());
    EXPECT_EQ(held.item(0), 42.0f);
  }
}

// ---- Learned-position id cache ----------------------------------------------

TEST(EncoderCacheTest, RepeatedEncodeAtSameBatchSizeDoesNotRebuildIds) {
  EncoderFixture f;
  core::ApanEncoder encoder(f.config, &f.rng);
  encoder.SetTraining(false);
  core::NodeStateStore store(f.config.num_nodes, f.config.mailbox_slots,
                             f.config.embedding_dim);
  std::vector<graph::NodeId> nodes = {1, 2, 3, 4, 5};
  f.Warm(&store, nodes);

  // The generic (grad-recording) path is the one that consumes position
  // ids; the fused serve path never materializes them at all.
  (void)encoder.EncodeNodes(store, nodes);
  const int64_t after_first = core::ApanEncoder::position_ids_rebuilds();
  (void)encoder.EncodeNodes(store, nodes);
  (void)encoder.EncodeNodes(store, nodes);
  EXPECT_EQ(core::ApanEncoder::position_ids_rebuilds(), after_first)
      << "same batch size must reuse the cached position-id table";

  std::vector<graph::NodeId> smaller = {1, 2, 3};
  (void)encoder.EncodeNodes(store, smaller);
  EXPECT_EQ(core::ApanEncoder::position_ids_rebuilds(), after_first + 1);
}

// ---- Dispatch sanity --------------------------------------------------------

TEST(KernelDispatchTest, ActiveIsaIsNamedAndStable) {
  const kernels::Isa isa = kernels::ActiveIsa();
  EXPECT_STRNE(kernels::IsaName(isa), "unknown");
  EXPECT_EQ(isa, kernels::ActiveIsa());  // selected once, stable
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2") && std::getenv("APAN_KERNEL_ISA") == nullptr) {
    EXPECT_EQ(isa, kernels::Isa::kAvx2);
  }
#endif
}

}  // namespace
}  // namespace apan
