#include "nn/recurrent.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace apan {
namespace nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(GruCellTest, OutputShape) {
  Rng rng(1);
  GruCell cell(6, 4, &rng);
  Tensor x = Tensor::Randn({3, 6}, &rng);
  Tensor h = Tensor::Randn({3, 4}, &rng);
  Tensor h2 = cell.Forward(x, h);
  EXPECT_EQ(h2.shape(), (Shape{3, 4}));
  EXPECT_EQ(cell.input_dim(), 6);
  EXPECT_EQ(cell.hidden_dim(), 4);
}

TEST(GruCellTest, OutputBounded) {
  // GRU output is a convex combination of tanh(·) and previous state, so
  // |h'| <= max(|h|, 1).
  Rng rng(2);
  GruCell cell(4, 4, &rng);
  Tensor x = Tensor::Randn({8, 4}, &rng, 5.0f);
  Tensor h = Tensor::Uniform({8, 4}, &rng, -1.0f, 1.0f);
  Tensor h2 = cell.Forward(x, h);
  for (int64_t i = 0; i < h2.numel(); ++i) {
    EXPECT_LE(std::abs(h2.item(i)), 1.0f + 1e-5f);
  }
}

TEST(GruCellTest, DeterministicForward) {
  Rng rng(3);
  GruCell cell(4, 4, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  Tensor h = Tensor::Randn({2, 4}, &rng);
  Tensor a = cell.Forward(x, h);
  Tensor b = cell.Forward(x, h);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.item(i), b.item(i));
  }
}

TEST(GruCellTest, GradientsFlowToAllWeights) {
  Rng rng(4);
  GruCell cell(3, 3, &rng);
  Tensor x = Tensor::Randn({2, 3}, &rng);
  Tensor h = Tensor::Randn({2, 3}, &rng);
  Tensor out = cell.Forward(x, h);
  ASSERT_TRUE(tensor::SumAll(out).Backward().ok());
  int with_grad = 0;
  for (auto& p : cell.Parameters()) {
    double norm = 0.0;
    for (float g : p.GradToVector()) norm += std::abs(g);
    if (norm > 0.0) ++with_grad;
  }
  // 6 weight matrices + biases — all should participate.
  EXPECT_EQ(with_grad, static_cast<int>(cell.Parameters().size()));
}

TEST(GruCellTest, LearnsToCopyInput) {
  // Train the cell to output its input regardless of h: a trivial task a
  // working GRU fits in a few hundred steps.
  Rng rng(5);
  GruCell cell(2, 2, &rng);
  tensor::Adam opt(cell.Parameters(), {.lr = 0.02f});
  float final_loss = 1e9f;
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::Uniform({8, 2}, &rng, -0.8f, 0.8f);
    Tensor h = Tensor::Randn({8, 2}, &rng, 0.1f);
    Tensor out = cell.Forward(x, h);
    Tensor diff = tensor::Sub(out, x);
    Tensor loss = tensor::MeanAll(tensor::Mul(diff, diff));
    opt.ZeroGrad();
    ASSERT_TRUE(loss.Backward().ok());
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.05f);
}

}  // namespace
}  // namespace nn
}  // namespace apan
