#include "train/link_trainer.h"

#include <gtest/gtest.h>

#include "baselines/tgn.h"
#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/probe.h"

namespace apan {
namespace train {
namespace {

data::Dataset TinyDataset() {
  auto cfg = data::SyntheticConfig::WikipediaLike().Scaled(0.08);
  return *data::GenerateSynthetic(cfg);
}

core::ApanConfig ApanFor(const data::Dataset& ds) {
  core::ApanConfig c;
  c.num_nodes = ds.num_nodes;
  c.embedding_dim = ds.feature_dim();
  return c;
}

TEST(LinkTrainerTest, TrainingImprovesOverUntrained) {
  data::Dataset ds = TinyDataset();
  ApanLinkModel model(ApanFor(ds), &ds.features, 42);
  LinkTrainConfig cfg;
  cfg.max_epochs = 3;
  cfg.patience = 3;
  LinkTrainer trainer(cfg);

  auto untrained = trainer.Evaluate(&model, ds);
  ASSERT_TRUE(untrained.ok()) << untrained.status();
  auto report = trainer.Run(&model, ds);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->test.ap, untrained->test.ap + 0.02);
  EXPECT_GT(report->validation.ap, 0.5);
  EXPECT_GE(report->epochs_run, 1);
  EXPECT_GT(report->mean_train_seconds_per_epoch, 0.0);
}

TEST(LinkTrainerTest, EvaluateIsDeterministic) {
  data::Dataset ds = TinyDataset();
  ApanLinkModel model(ApanFor(ds), &ds.features, 42);
  LinkTrainConfig cfg;
  LinkTrainer trainer(cfg);
  auto a = trainer.Evaluate(&model, ds);
  auto b = trainer.Evaluate(&model, ds);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->test.ap, b->test.ap);
  EXPECT_DOUBLE_EQ(a->validation.ap, b->validation.ap);
  EXPECT_EQ(a->test.num_events, b->test.num_events);
}

TEST(LinkTrainerTest, ApanSyncPathIsQueryFree) {
  data::Dataset ds = TinyDataset();
  ApanLinkModel apan(ApanFor(ds), &ds.features, 42);
  LinkTrainer trainer({});
  auto eval = trainer.Evaluate(&apan, ds);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->sync_graph_queries, 0)
      << "APAN inference must not query the temporal graph";
}

TEST(LinkTrainerTest, SynchronousBaselineDoesQuery) {
  data::Dataset ds = TinyDataset();
  baselines::Tgn tgn({.num_nodes = ds.num_nodes,
                      .dim = ds.feature_dim(),
                      .num_layers = 1},
                     &ds.features, 42);
  LinkTrainer trainer({});
  auto eval = trainer.Evaluate(&tgn, ds);
  ASSERT_TRUE(eval.ok());
  EXPECT_GT(eval->sync_graph_queries, 0)
      << "TGN must query temporal neighbors on the inference path";
}

TEST(LinkTrainerTest, RejectsEmptyTrainSplit) {
  data::Dataset ds = TinyDataset();
  ds.train_end = 0;
  ds.val_end = 0;
  ApanLinkModel model(ApanFor(ds), &ds.features, 42);
  LinkTrainer trainer({});
  EXPECT_FALSE(trainer.Run(&model, ds).ok());
}

TEST(ProbeTest, ClassificationProbeLearnsPlantedSignal) {
  // Rows where feature[0] determines the label: probe must reach high AUC.
  Rng rng(1);
  std::vector<EmbeddingRow> rows;
  for (int i = 0; i < 600; ++i) {
    EmbeddingRow r;
    r.label = rng.Bernoulli(0.3) ? 1 : 0;
    r.features = {r.label == 1 ? 1.0f : -1.0f,
                  static_cast<float>(rng.Normal()),
                  static_cast<float>(rng.Normal())};
    r.split = i < 400 ? data::Split::kTrain
                      : (i < 500 ? data::Split::kValidation
                                 : data::Split::kTest);
    rows.push_back(std::move(r));
  }
  ProbeConfig cfg;
  cfg.epochs = 20;
  auto result = TrainClassificationProbe(rows, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->val_auc, 0.95);
  EXPECT_GT(result->test_auc, 0.95);
}

TEST(ProbeTest, ClassificationProbeRequiresRows) {
  std::vector<EmbeddingRow> rows;
  EXPECT_FALSE(TrainClassificationProbe(rows, {}).ok());
  // Only train rows, no eval rows.
  EmbeddingRow r;
  r.features = {1.0f};
  r.label = 1;
  r.split = data::Split::kTrain;
  rows.push_back(r);
  EXPECT_FALSE(TrainClassificationProbe(rows, {}).ok());
}

TEST(ProbeTest, CollectTemporalRowsMatchesLabeledEvents) {
  data::Dataset ds = TinyDataset();
  ApanLinkModel model(ApanFor(ds), &ds.features, 42);
  auto rows = CollectTemporalRows(&model, ds, 100);
  ASSERT_TRUE(rows.ok()) << rows.status();
  int64_t labeled = 0;
  for (int8_t l : ds.labels) labeled += (l >= 0);
  EXPECT_EQ(static_cast<int64_t>(rows->size()), labeled);
  for (const auto& r : *rows) {
    EXPECT_EQ(static_cast<int64_t>(r.features.size()), ds.feature_dim());
  }
}

TEST(ProbeTest, EdgeTaskRowsConcatenateFeatures) {
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::AlipayLike().Scaled(0.02));
  core::ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();
  ApanLinkModel model(cfg, &ds.features, 42);
  auto rows = CollectTemporalRows(&model, ds, 100);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  // [z_src ‖ e ‖ z_dst]
  EXPECT_EQ(static_cast<int64_t>(rows->front().features.size()),
            3 * ds.feature_dim());
}

}  // namespace
}  // namespace train
}  // namespace apan
