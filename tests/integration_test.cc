// End-to-end experiments at miniature scale: the full train → evaluate →
// probe pipeline that the benches run, asserting the qualitative shapes
// hold rather than exact values.

#include <gtest/gtest.h>

#include "baselines/jodie.h"
#include "data/synthetic.h"
#include "serve/async_pipeline.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"
#include "train/probe.h"

namespace apan {
namespace {

TEST(IntegrationTest, ApanFullPipelineLearnsAndProbes) {
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.12));
  core::ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();
  train::ApanLinkModel model(cfg, &ds.features, 17);

  train::LinkTrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 4;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&model, ds);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->test.ap, 0.55);
  EXPECT_EQ(report->sync_graph_queries, 0);

  // Node-classification probe on the trained model.
  auto rows = train::CollectTemporalRows(&model, ds, 200);
  ASSERT_TRUE(rows.ok());
  train::ProbeConfig pc;
  pc.epochs = 6;
  auto probe = train::TrainClassificationProbe(*rows, pc);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_GT(probe->test_auc, 0.45);  // skewed task: just sanity at this scale
}

TEST(IntegrationTest, TrainedModelServesThroughAsyncPipeline) {
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.08));
  core::ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();
  train::ApanLinkModel model(cfg, &ds.features, 18);
  train::LinkTrainConfig tc;
  tc.max_epochs = 2;
  train::LinkTrainer trainer(tc);
  ASSERT_TRUE(trainer.Run(&model, ds).ok());

  // Redeploy the trained weights behind the serving pipeline and replay
  // the stream: scores must separate true edges from shuffled ones.
  model.ResetState();
  serve::AsyncPipeline pipeline(&model.model(), {});
  std::vector<float> true_scores;
  Rng rng(5);
  for (size_t lo = 0; lo + 100 <= ds.events.size(); lo += 100) {
    std::vector<graph::Event> events(ds.events.begin() + lo,
                                     ds.events.begin() + lo + 100);
    auto result = pipeline.InferBatch(events);
    ASSERT_TRUE(result.ok());
    if (lo > ds.events.size() / 2) {
      for (float s : result->scores) true_scores.push_back(s);
    }
  }
  pipeline.Flush();
  double mean_true = 0.0;
  for (float s : true_scores) mean_true += s;
  mean_true /= static_cast<double>(true_scores.size());
  // Trained model assigns clearly-above-chance scores to real events.
  EXPECT_GT(mean_true, 0.55);
  EXPECT_GT(pipeline.sync_latency().count(), 0u);
}

TEST(IntegrationTest, EdgeClassificationPipelineOnAlipayLike) {
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::AlipayLike().Scaled(0.03));
  core::ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();
  train::ApanLinkModel model(cfg, &ds.features, 19);
  train::LinkTrainConfig tc;
  tc.max_epochs = 2;
  train::LinkTrainer trainer(tc);
  ASSERT_TRUE(trainer.Run(&model, ds).ok());
  auto rows = train::CollectTemporalRows(&model, ds, 200);
  ASSERT_TRUE(rows.ok());
  int64_t pos = 0;
  for (const auto& r : *rows) pos += r.label;
  ASSERT_GT(pos, 0) << "fraud labels must exist";
  train::ProbeConfig pc;
  pc.epochs = 8;
  auto probe = train::TrainClassificationProbe(*rows, pc);
  ASSERT_TRUE(probe.ok()) << probe.status();
  // Fraud events carry a feature shift; even a small model must beat 0.5.
  EXPECT_GT(probe->test_auc, 0.6);
}

TEST(IntegrationTest, BatchSizeRobustnessShapeHolds) {
  // Figure 8's mechanism at miniature scale: APAN's score quality should
  // not collapse when the batch size grows 3x. The batch must stay small
  // relative to the training split (the figure's regime), hence the
  // slightly larger dataset here.
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.15));
  core::ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();

  // Epochs scale with batch size so both runs take the same number of
  // optimizer steps — the comparison isolates the batching effect itself
  // (larger batches mean staler in-batch information), which is what
  // Figure 8 studies.
  auto run = [&](size_t batch_size, int epochs) {
    train::ApanLinkModel model(cfg, &ds.features, 20);
    train::LinkTrainConfig tc;
    tc.max_epochs = epochs;
    tc.patience = epochs;
    tc.batch_size = batch_size;
    train::LinkTrainer trainer(tc);
    auto report = trainer.Run(&model, ds);
    APAN_CHECK(report.ok());
    return report->test.ap;
  };
  const double small = run(100, 4);
  const double large = run(300, 12);
  EXPECT_GT(large, small - 0.12)
      << "APAN AP should be roughly flat in batch size";
}

}  // namespace
}  // namespace apan
