// The shard checkpoint format (serve/snapshot.h): bitwise round trips —
// including NaN payloads, ±inf and negative zero, all of which occur in
// live mailbox state — and the wire.h defensive-decode discipline applied
// to files: every truncation prefix, every single-bit flip, corrupt
// counts, version skew and random garbage must come back as a clean
// Status, never UB (the recovery ctest label runs this under ASan+UBSan).

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/random.h"

namespace apan {
namespace serve {
namespace snapshot {
namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameBits(float a, float b) {
  return std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b);
}

template <typename T>
bool SameFloatVec(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameBits(a[i], b[i])) return false;
  }
  return true;
}

bool Equal(const ShardSnapshot& a, const ShardSnapshot& b) {
  if (a.shard != b.shard || a.num_shards != b.num_shards ||
      a.num_nodes != b.num_nodes || a.next_batch != b.next_batch ||
      a.next_ordinal != b.next_ordinal || a.owned_nodes != b.owned_nodes ||
      a.mailbox_slots != b.mailbox_slots || a.mail_dim != b.mail_dim ||
      a.state_dim != b.state_dim) {
    return false;
  }
  if (!SameFloatVec(a.mailbox_data, b.mailbox_data) ||
      !SameFloatVec(a.mailbox_timestamps, b.mailbox_timestamps) ||
      a.mailbox_head != b.mailbox_head ||
      a.mailbox_count != b.mailbox_count ||
      a.mailbox_order != b.mailbox_order ||
      !SameFloatVec(a.z_rows, b.z_rows)) {
    return false;
  }
  if (a.slice.rows.size() != b.slice.rows.size() ||
      a.slice.homed_events.size() != b.slice.homed_events.size() ||
      !SameBits(a.slice.latest_timestamp, b.slice.latest_timestamp) ||
      a.slice.watermark != b.slice.watermark) {
    return false;
  }
  for (size_t i = 0; i < a.slice.rows.size(); ++i) {
    if (a.slice.rows[i].size() != b.slice.rows[i].size()) return false;
    for (size_t j = 0; j < a.slice.rows[i].size(); ++j) {
      const auto& p = a.slice.rows[i][j];
      const auto& q = b.slice.rows[i][j];
      if (p.node != q.node || p.edge_id != q.edge_id ||
          !SameBits(p.timestamp, q.timestamp) || p.ordinal != q.ordinal) {
        return false;
      }
    }
  }
  for (size_t i = 0; i < a.slice.homed_events.size(); ++i) {
    const graph::Event& p = a.slice.homed_events[i];
    const graph::Event& q = b.slice.homed_events[i];
    if (p.src != q.src || p.dst != q.dst ||
        !SameBits(p.timestamp, q.timestamp) || p.edge_id != q.edge_id) {
      return false;
    }
  }
  return a.next_merge == b.next_merge &&
         a.accepted_request == b.accepted_request &&
         a.last_wait_batch == b.last_wait_batch &&
         a.last_wait_hop == b.last_wait_hop;
}

/// A small but fully-populated snapshot: every plane non-trivial, every
/// IEEE special value represented, replay state mid-stream.
ShardSnapshot RichSnapshot() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShardSnapshot snap;
  snap.shard = 1;
  snap.num_shards = 4;
  snap.num_nodes = 10;
  snap.next_batch = 7;
  snap.next_ordinal = 350;
  snap.owned_nodes = 3;
  snap.mailbox_slots = 2;
  snap.mail_dim = 2;
  snap.state_dim = 2;
  snap.mailbox_data = {1.5f, -0.0f,
                       std::numeric_limits<float>::quiet_NaN(),
                       -std::numeric_limits<float>::infinity(),
                       0.0f, 2.25f, -3.5f, 4.0f,
                       std::numeric_limits<float>::infinity(), 5.0f,
                       6.0f, -7.0f};
  snap.mailbox_timestamps = {0.5, 1.5, -kInf, 2.0, 3.0, -0.0};
  snap.mailbox_head = {1, 0, 1};
  snap.mailbox_count = {2, 0, 1};
  snap.mailbox_order = {1, 0, 0, 1, 0, 1};
  snap.z_rows = {0.1f, -0.2f, std::numeric_limits<float>::quiet_NaN(),
                 0.4f, -0.0f, 0.6f};
  snap.slice.rows.resize(3);
  snap.slice.rows[0] = {{4, 11, 0.5, 25}, {7, 12, 1.5, 31}};
  snap.slice.rows[2] = {{4, 13, 2.0, 40}};
  snap.slice.homed_events = {{1, 4, 0.5, 11}, {5, 7, 1.5, 12}};
  snap.slice.latest_timestamp = 2.0;
  snap.slice.watermark = 7;
  snap.next_merge = 7;
  snap.accepted_request = {{6, 1}, {6, 0}, {-1, 0}, {6, 1}};
  snap.last_wait_batch = 6;
  snap.last_wait_hop = 1;
  return snap;
}

/// A shard that has never seen an event: zeroed planes, empty rows,
/// watermark 0 — the state a snapshot taken right after construction
/// captures.
ShardSnapshot EmptySnapshot() {
  ShardSnapshot snap;
  snap.shard = 0;
  snap.num_shards = 2;
  snap.num_nodes = 4;
  snap.owned_nodes = 2;
  snap.mailbox_slots = 2;
  snap.mail_dim = 3;
  snap.state_dim = 3;
  snap.mailbox_data.assign(2 * 2 * 3, 0.0f);
  snap.mailbox_timestamps.assign(2 * 2, 0.0);
  snap.mailbox_head.assign(2, 0);
  snap.mailbox_count.assign(2, 0);
  snap.mailbox_order.assign(2 * 2, 0);
  snap.z_rows.assign(2 * 3, 0.0f);
  snap.slice.rows.resize(2);
  snap.accepted_request = {{-1, 0}, {-1, 0}};
  return snap;
}

// Patches the CRC trailer after a deliberate payload mutation, so decode
// failures exercise the structural checks, not just the checksum.
void RecomputeCrc(std::vector<uint8_t>* file) {
  const std::span<const uint8_t> payload(file->data() + kHeaderBytes,
                                         file->size() - kHeaderBytes -
                                             kTrailerBytes);
  const uint32_t crc = Crc32(payload);
  uint8_t* trailer = file->data() + file->size() - kTrailerBytes;
  for (int i = 0; i < 4; ++i) {
    trailer[i] = static_cast<uint8_t>(crc >> (8 * i));
  }
}

// ---- Round trips -----------------------------------------------------------

TEST(SnapshotTest, RichSnapshotRoundTripsBitwise) {
  const ShardSnapshot snap = RichSnapshot();
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(snap);
  Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(Equal(snap, *decoded));
}

TEST(SnapshotTest, EmptyShardRoundTripsBitwise) {
  const ShardSnapshot snap = EmptySnapshot();
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(snap);
  Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(Equal(snap, *decoded));
}

TEST(SnapshotTest, FileRoundTripAndOverwrite) {
  const std::string path = testing::TempDir() + "/snapshot_roundtrip.apsn";
  const ShardSnapshot first = EmptySnapshot();
  ASSERT_TRUE(WriteShardSnapshot(first, path).ok());
  const ShardSnapshot second = RichSnapshot();
  // Crash-atomic overwrite: the old file is replaced by rename, and the
  // staging file must not linger.
  ASSERT_TRUE(WriteShardSnapshot(second, path).ok());
  Result<ShardSnapshot> decoded = ReadShardSnapshot(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(Equal(second, *decoded));
  FILE* staging = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(staging, nullptr) << "staging file left behind";
  if (staging != nullptr) std::fclose(staging);
  std::remove(path.c_str());
}

TEST(SnapshotTest, WriteToMissingDirectoryFailsCleanly) {
  const Status written = WriteShardSnapshot(
      EmptySnapshot(), "/nonexistent-dir-for-apan-test/s.apsn");
  EXPECT_FALSE(written.ok());
}

TEST(SnapshotTest, ReadMissingFileFailsCleanly) {
  EXPECT_FALSE(
      ReadShardSnapshot(testing::TempDir() + "/no_such_snapshot.apsn").ok());
}

// ---- Corruption and truncation ---------------------------------------------

TEST(SnapshotTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<ShardSnapshot> decoded =
        DecodeShardSnapshot(std::span<const uint8_t>(bytes.data(), cut));
    EXPECT_FALSE(decoded.ok())
        << "prefix of " << cut << "/" << bytes.size() << " bytes decoded";
  }
}

TEST(SnapshotTest, EverySingleBitFlipIsRejected) {
  // Magic/version/length flips fail the envelope checks; payload flips
  // fail the CRC; trailer flips fail the CRC comparison itself. No flip
  // anywhere may pass.
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[at] ^= 0x10;
    EXPECT_FALSE(DecodeShardSnapshot(corrupt).ok())
        << "bit flip at byte " << at << " decoded";
  }
}

TEST(SnapshotTest, TrailingBytesRejected) {
  std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  bytes.push_back(0);
  EXPECT_FALSE(DecodeShardSnapshot(bytes).ok());
}

TEST(SnapshotTest, VersionSkewRejected) {
  std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  // Header layout: magic u32 | version u32 | ... — the version is not
  // CRC-covered (the CRC guards the payload), so this isolates the
  // version check.
  bytes[4] = static_cast<uint8_t>(kVersion + 1);
  Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  bytes[0] = 'X';
  Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, CorruptCountRejectedBeforeAllocation) {
  // The first mailbox plane's element count lives right after the fixed
  // 64-byte prologue (identity 16 + replay 16 + geometry 32). Claim 2^64−1
  // floats with a valid CRC: the decoder must reject the count against the
  // bytes remaining BEFORE sizing any vector — under ASan a speculative
  // allocation of that size is the loud failure this test exists to catch.
  std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  constexpr size_t kDataCountOffset = kHeaderBytes + 64;
  for (size_t i = 0; i < 8; ++i) bytes[kDataCountOffset + i] = 0xFF;
  RecomputeCrc(&bytes);
  Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, OversizedLengthFieldRejected) {
  std::vector<uint8_t> bytes = EncodeShardSnapshot(RichSnapshot());
  // Claim a payload above the cap; the cap check must fire before any
  // attempt to address that much memory.
  for (size_t i = 8; i < 16; ++i) bytes[i] = 0xFF;
  EXPECT_FALSE(DecodeShardSnapshot(bytes).ok());
}

TEST(SnapshotTest, MutationFuzzNeverCrashes) {
  Rng rng(0x5EEDFACE);
  const ShardSnapshot exemplars[2] = {RichSnapshot(), EmptySnapshot()};
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes =
        EncodeShardSnapshot(exemplars[rng.UniformInt(uint64_t{2})]);
    const int flips = static_cast<int>(rng.UniformInt(uint64_t{5}));
    for (int f = 0; f < flips && !bytes.empty(); ++f) {
      const size_t at =
          static_cast<size_t>(rng.UniformInt(uint64_t{bytes.size()}));
      bytes[at] = static_cast<uint8_t>(rng.Next());
    }
    if (rng.Bernoulli(0.3) && !bytes.empty()) {
      bytes.resize(
          static_cast<size_t>(rng.UniformInt(uint64_t{bytes.size()})));
    } else if (rng.Bernoulli(0.2)) {
      bytes.push_back(static_cast<uint8_t>(rng.Next()));
    }
    // Half the iterations repair the CRC so mutations reach the
    // structural validators instead of stopping at the checksum.
    if (bytes.size() >= kHeaderBytes + kTrailerBytes && rng.Bernoulli(0.5)) {
      RecomputeCrc(&bytes);
    }
    Result<ShardSnapshot> decoded = DecodeShardSnapshot(bytes);
    rejected += decoded.ok() ? 0 : 1;
  }
  // Random mutation overwhelmingly corrupts structure; if nearly
  // everything decoded, the checks are not actually running.
  EXPECT_GT(rejected, 1000);
}

TEST(SnapshotTest, RandomGarbageNeverCrashes) {
  Rng rng(0xDEADBEA7);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> garbage(
        static_cast<size_t>(rng.UniformInt(uint64_t{513})));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    (void)DecodeShardSnapshot(garbage);  // must return, cleanly, every time
  }
}

TEST(SnapshotTest, CrcMatchesKnownVector) {
  // The IEEE 802.3 check value: CRC-32 of "123456789" is 0xCBF43926.
  // Pins the table to the standard polynomial so snapshots stay readable
  // across builds.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits), 0xCBF43926u);
}

}  // namespace
}  // namespace snapshot
}  // namespace serve
}  // namespace apan
