#include "core/mailbox.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "nn/attention.h"
#include "util/random.h"

namespace apan {
namespace core {
namespace {

std::vector<float> MailOf(float v, int64_t dim = 4) {
  return std::vector<float>(static_cast<size_t>(dim), v);
}

TEST(MailboxTest, DeliverAndCount) {
  Mailbox box(3, 2, 4);
  EXPECT_EQ(box.ValidCount(0), 0);
  box.Deliver(0, MailOf(1.0f), 1.0);
  EXPECT_EQ(box.ValidCount(0), 1);
  EXPECT_EQ(box.ValidCount(1), 0);
  EXPECT_EQ(box.NewestTimestamp(0), 1.0);
  EXPECT_TRUE(std::isinf(box.NewestTimestamp(1)));
}

TEST(MailboxTest, FifoEviction) {
  Mailbox box(1, 2, 4);
  box.Deliver(0, MailOf(1.0f), 1.0);
  box.Deliver(0, MailOf(2.0f), 2.0);
  box.Deliver(0, MailOf(3.0f), 3.0);  // evicts the t=1 mail
  EXPECT_EQ(box.ValidCount(0), 2);
  auto read = box.ReadBatch({0});
  EXPECT_FLOAT_EQ(read.mails.item(0), 2.0f);  // oldest kept first
  EXPECT_FLOAT_EQ(read.mails.item(4), 3.0f);
}

TEST(MailboxTest, ReadBatchSortsByTimestamp) {
  // Out-of-order delivery: the read-out must still be time-ascending
  // (paper §3.6 — mailbox absorbs stream reordering).
  Mailbox box(1, 3, 2);
  box.Deliver(0, std::vector<float>{30.0f, 30.0f}, 3.0);
  box.Deliver(0, std::vector<float>{10.0f, 10.0f}, 1.0);
  box.Deliver(0, std::vector<float>{20.0f, 20.0f}, 2.0);
  auto read = box.ReadBatch({0});
  EXPECT_FLOAT_EQ(read.mails.item(0), 10.0f);
  EXPECT_FLOAT_EQ(read.mails.item(2), 20.0f);
  EXPECT_FLOAT_EQ(read.mails.item(4), 30.0f);
  EXPECT_EQ(read.counts[0], 3);
}

TEST(MailboxTest, PaddingMaskSemantics) {
  Mailbox box(2, 3, 2);
  box.Deliver(0, std::vector<float>{1.0f, 1.0f}, 1.0);
  auto read = box.ReadBatch({0, 1});
  // Node 0: slot 0 valid, slots 1-2 masked.
  EXPECT_EQ(read.mask[0], 0.0f);
  EXPECT_EQ(read.mask[1], nn::MultiHeadAttention::kMaskedOut);
  EXPECT_EQ(read.mask[2], nn::MultiHeadAttention::kMaskedOut);
  // Node 1 (empty): all-valid mask over zero mails (cold-start rule).
  EXPECT_EQ(read.mask[3], 0.0f);
  EXPECT_EQ(read.mask[4], 0.0f);
  EXPECT_EQ(read.counts[1], 0);
  for (int64_t i = 6; i < 12; ++i) EXPECT_EQ(read.mails.item(i), 0.0f);
}

TEST(MailboxTest, RingKeepsLatestUnderChurn) {
  Mailbox box(1, 4, 1);
  for (int i = 0; i < 100; ++i) {
    box.Deliver(0, std::vector<float>{static_cast<float>(i)}, static_cast<double>(i));
  }
  auto read = box.ReadBatch({0});
  EXPECT_EQ(read.counts[0], 4);
  EXPECT_FLOAT_EQ(read.mails.item(0), 96.0f);
  EXPECT_FLOAT_EQ(read.mails.item(3), 99.0f);
  EXPECT_EQ(box.NewestTimestamp(0), 99.0);
}

TEST(MailboxTest, ClearResetsEverything) {
  Mailbox box(2, 2, 2);
  box.Deliver(1, std::vector<float>{5.0f, 5.0f}, 1.0);
  box.Clear();
  EXPECT_EQ(box.ValidCount(1), 0);
  auto read = box.ReadBatch({1});
  for (int64_t i = 0; i < read.mails.numel(); ++i) {
    EXPECT_EQ(read.mails.item(i), 0.0f);
  }
}

TEST(MailboxTest, MemoryBoundedByNodesNotEdges) {
  // §4.7: memory depends on node count and slots, not stream length.
  Mailbox box(100, 10, 8);
  const int64_t before = box.MemoryBytes();
  for (int i = 0; i < 10000; ++i) {
    box.Deliver(i % 100, MailOf(1.0f, 8), static_cast<double>(i));
  }
  EXPECT_EQ(box.MemoryBytes(), before);
}

TEST(MailboxTest, DeliverBatchMatchesSequentialDeliver) {
  // DeliverBatch groups per node to amortize ring bookkeeping; the
  // resulting storage must be bitwise what per-mail Deliver produces,
  // including evictions and repeated recipients.
  Mailbox batched(5, 3, 4);
  Mailbox sequential(5, 3, 4);
  std::vector<MailDelivery> deliveries;
  for (int i = 0; i < 23; ++i) {
    MailDelivery d;
    d.recipient = (i * 7) % 5;  // revisits every node, out of node order
    d.mail = MailOf(static_cast<float>(i));
    d.timestamp = static_cast<double>((i * 13) % 9);  // out of time order
    deliveries.push_back(std::move(d));
  }
  EXPECT_EQ(batched.DeliverBatch(deliveries), 23);
  for (const auto& d : deliveries) {
    sequential.Deliver(d.recipient, d.mail, d.timestamp);
  }
  for (graph::NodeId v = 0; v < 5; ++v) {
    ASSERT_EQ(batched.ValidCount(v), sequential.ValidCount(v));
    for (int64_t slot = 0; slot < 3; ++slot) {
      const auto a = batched.RawSlot(v, slot);
      const auto b = sequential.RawSlot(v, slot);
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "node " << v << " slot " << slot;
      }
    }
    const auto ra = batched.ReadBatch({v});
    const auto rb = sequential.ReadBatch({v});
    for (size_t i = 0; i < ra.timestamps.size(); ++i) {
      ASSERT_EQ(ra.timestamps[i], rb.timestamps[i]);
    }
  }
}

TEST(MailboxTest, DeliverBatchEmptyIsNoop) {
  Mailbox box(2, 2, 4);
  EXPECT_EQ(box.DeliverBatch({}), 0);
  EXPECT_EQ(box.ValidCount(0), 0);
  EXPECT_EQ(box.ValidCount(1), 0);
}

TEST(MailboxTest, DeliverBatchKeepsPerNodeOrderAcrossInterleavings) {
  // Mails for one node interleaved with other recipients keep their span
  // order — the property the sharded engine's sequence-tag replay relies
  // on for ring-eviction determinism.
  Mailbox box(2, 2, 4);
  std::vector<MailDelivery> deliveries;
  for (int i = 0; i < 5; ++i) {
    deliveries.push_back({i % 2, MailOf(static_cast<float>(i)), 1.0, 1});
  }
  box.DeliverBatch(deliveries);
  // Node 0 received mails 0, 2, 4 → ring keeps 2 and 4 (slots = 2).
  auto read = box.ReadBatch({0, 1});
  EXPECT_FLOAT_EQ(read.mails.item(0), 2.0f);
  EXPECT_FLOAT_EQ(read.mails.item(4), 4.0f);
  // Node 1 received mails 1, 3.
  EXPECT_FLOAT_EQ(read.mails.item(8), 1.0f);
  EXPECT_FLOAT_EQ(read.mails.item(12), 3.0f);
}

TEST(MailboxTest, ReadBatchEmptyNodeListIsValid) {
  // Admission control can hand the encoder an empty batch; that must be a
  // well-formed zero-row result, not a crash.
  Mailbox box(3, 2, 4);
  box.Deliver(0, MailOf(1.0f), 1.0);
  auto read = box.ReadBatch({});
  EXPECT_EQ(read.mails.shape(), (tensor::Shape{0, 2, 4}));
  EXPECT_EQ(read.mails.numel(), 0);
  EXPECT_TRUE(read.mask.empty());
  EXPECT_TRUE(read.counts.empty());
  EXPECT_TRUE(read.timestamps.empty());
}

TEST(MailboxTest, SortedOnWriteMatchesSortOnReadReference) {
  // ReadBatch used to stable_sort each node's valid slots (in ring arrival
  // order) by timestamp on every read. The write-maintained permutation
  // must reproduce that output bitwise — same tie-breaking on equal
  // timestamps, same interaction with FIFO-by-arrival eviction — across
  // out-of-order streams driven through both Deliver and DeliverBatch.
  constexpr int64_t kNodes = 7;
  constexpr int64_t kSlots = 5;
  constexpr int64_t kDim = 3;
  Mailbox box(kNodes, kSlots, kDim);
  // Shadow: per node, (mail, timestamp) in arrival order with FIFO
  // eviction — the pre-permutation representation.
  std::vector<std::vector<std::pair<std::vector<float>, double>>> shadow(
      kNodes);
  SplitMix64 rng(20260808);
  for (int step = 0; step < 400; ++step) {
    const int fanout = 1 + static_cast<int>(rng.Next() % 4);
    std::vector<MailDelivery> batch;
    for (int j = 0; j < fanout; ++j) {
      MailDelivery d;
      d.recipient = static_cast<graph::NodeId>(rng.Next() % kNodes);
      d.mail = MailOf(static_cast<float>(rng.Next() % 97), kDim);
      // Coarse timestamps force plenty of exact ties.
      d.timestamp = static_cast<double>(rng.Next() % 11);
      auto& row = shadow[static_cast<size_t>(d.recipient)];
      row.emplace_back(d.mail, d.timestamp);
      if (row.size() > static_cast<size_t>(kSlots)) row.erase(row.begin());
      batch.push_back(std::move(d));
    }
    if (step % 2 == 0) {
      box.DeliverBatch(batch);
    } else {
      for (const auto& d : batch) box.Deliver(d.recipient, d.mail, d.timestamp);
    }

    std::vector<graph::NodeId> nodes(kNodes);
    std::iota(nodes.begin(), nodes.end(), 0);
    const auto read = box.ReadBatch(nodes);
    for (int64_t v = 0; v < kNodes; ++v) {
      // Reference read-out: stable sort of arrival order by timestamp.
      auto sorted = shadow[static_cast<size_t>(v)];
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       });
      ASSERT_EQ(read.counts[static_cast<size_t>(v)],
                static_cast<int64_t>(sorted.size()));
      for (size_t pos = 0; pos < sorted.size(); ++pos) {
        const int64_t row = v * kSlots + static_cast<int64_t>(pos);
        ASSERT_EQ(read.timestamps[static_cast<size_t>(row)],
                  sorted[pos].second)
            << "step " << step << " node " << v << " pos " << pos;
        for (int64_t k = 0; k < kDim; ++k) {
          ASSERT_EQ(read.mails.item(row * kDim + k), sorted[pos].first[k])
              << "step " << step << " node " << v << " pos " << pos;
        }
      }
    }
  }
}

TEST(MailboxTest, MultiNodeBatchLayout) {
  Mailbox box(3, 2, 2);
  box.Deliver(2, std::vector<float>{7.0f, 8.0f}, 1.0);
  auto read = box.ReadBatch({2, 0, 2});
  EXPECT_EQ(read.mails.shape(), (tensor::Shape{3, 2, 2}));
  EXPECT_FLOAT_EQ(read.mails.item(0), 7.0f);       // row 0 = node 2
  EXPECT_FLOAT_EQ(read.mails.item(2 * 2 * 2), 7.0f);  // row 2 = node 2 again
}

}  // namespace
}  // namespace core
}  // namespace apan
