#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace apan {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace apan
