#include "serve/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.h"

namespace apan {
namespace serve {
namespace {

// ---- Bitwise equality helpers ----------------------------------------------
// Doubles are compared through their bit patterns so that NaN payloads and
// negative zero count as round-trip-preserved, not as mismatches.

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameBits(float a, float b) {
  return std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b);
}

bool SameFloats(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameBits(a[i], b[i])) return false;
  }
  return true;
}

bool Equal(const core::MailDelivery& a, const core::MailDelivery& b) {
  return a.recipient == b.recipient && SameFloats(a.mail, b.mail) &&
         SameBits(a.timestamp, b.timestamp) &&
         a.contributions == b.contributions;
}

bool Equal(const ShardPartial& a, const ShardPartial& b) {
  if (a.batch != b.batch || a.from_shard != b.from_shard ||
      a.state_updates.size() != b.state_updates.size() ||
      a.hop0.size() != b.hop0.size() || a.partial.size() != b.partial.size()) {
    return false;
  }
  for (size_t i = 0; i < a.state_updates.size(); ++i) {
    const StateUpdate& u = a.state_updates[i];
    const StateUpdate& v = b.state_updates[i];
    if (u.sequence != v.sequence || u.node != v.node || !SameFloats(u.z, v.z)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.hop0.size(); ++i) {
    if (a.hop0[i].sequence != b.hop0[i].sequence ||
        !Equal(a.hop0[i].delivery, b.hop0[i].delivery)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.partial.size(); ++i) {
    const core::PartialPropagation::PartialReduce& p = a.partial[i];
    const core::PartialPropagation::PartialReduce& q = b.partial[i];
    if (p.recipient != q.recipient || !SameFloats(p.sum, q.sum) ||
        !SameBits(p.newest, q.newest) || p.count != q.count) {
      return false;
    }
  }
  return true;
}

bool Equal(const FrontierRequest& a, const FrontierRequest& b) {
  if (a.batch != b.batch || a.hop != b.hop || a.from_shard != b.from_shard ||
      a.ordinal_limit != b.ordinal_limit || a.fanout != b.fanout ||
      a.items.size() != b.items.size()) {
    return false;
  }
  for (size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].slot != b.items[i].slot ||
        a.items[i].node != b.items[i].node ||
        !SameBits(a.items[i].before_time, b.items[i].before_time)) {
      return false;
    }
  }
  return true;
}

bool Equal(const FrontierResponse& a, const FrontierResponse& b) {
  if (a.batch != b.batch || a.hop != b.hop || a.from_shard != b.from_shard ||
      a.slots != b.slots || a.neighbors.size() != b.neighbors.size()) {
    return false;
  }
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (a.neighbors[i].size() != b.neighbors[i].size()) return false;
    for (size_t j = 0; j < a.neighbors[i].size(); ++j) {
      const graph::TemporalNeighbor& n = a.neighbors[i][j];
      const graph::TemporalNeighbor& m = b.neighbors[i][j];
      if (n.node != m.node || n.edge_id != m.edge_id ||
          !SameBits(n.timestamp, m.timestamp)) {
        return false;
      }
    }
  }
  return true;
}

bool Equal(const ShardMessage& a, const ShardMessage& b) {
  if (a.index() != b.index()) return false;
  if (const auto* p = std::get_if<ShardPartial>(&a)) {
    return Equal(*p, std::get<ShardPartial>(b));
  }
  if (const auto* r = std::get_if<FrontierRequest>(&a)) {
    return Equal(*r, std::get<FrontierRequest>(b));
  }
  return Equal(std::get<FrontierResponse>(a), std::get<FrontierResponse>(b));
}

void ExpectRoundTrip(const ShardMessage& message) {
  const std::vector<uint8_t> payload = wire::EncodeMessage(message);
  Result<ShardMessage> decoded = wire::DecodeMessage(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(Equal(message, *decoded));
}

// ---- Exemplar messages (every alternative, edge values included) -----------

ShardPartial MakePartial() {
  ShardPartial m;
  m.batch = 41;
  m.from_shard = 3;
  // Negative timestamps, empty mail payloads, zero-length z, NaN and -0.0
  // are all representable states the wire must carry bitwise.
  m.state_updates.push_back({0, 7, {1.0f, -2.5f, 0.0f}});
  m.state_updates.push_back({std::numeric_limits<int64_t>::max(), 0, {}});
  core::PartialPropagation::TaggedDelivery hop0;
  hop0.sequence = 5;
  hop0.delivery = {11, {}, -123.5, 1};  // empty mail payload, negative time
  m.hop0.push_back(hop0);
  hop0.sequence = 6;
  hop0.delivery = {12,
                   {std::numeric_limits<float>::quiet_NaN(), -0.0f},
                   std::numeric_limits<double>::infinity(),
                   2};
  m.hop0.push_back(hop0);
  core::PartialPropagation::PartialReduce reduce;
  reduce.recipient = 9;
  reduce.sum = {0.25f, 0.75f};
  reduce.newest = -0.0;
  reduce.count = 3;
  m.partial.push_back(reduce);
  return m;
}

FrontierRequest MakeRequest() {
  FrontierRequest m;
  m.batch = 12;
  m.hop = 2;
  m.from_shard = 1;
  // Max-ordinal limit (the "everything appended" sentinel) and max slot
  // tags must survive unclipped.
  m.ordinal_limit = std::numeric_limits<int64_t>::max();
  m.fanout = 10;
  m.items.push_back({std::numeric_limits<int64_t>::max(), 4, -7.25});
  m.items.push_back({0, 0, 0.0});
  return m;
}

FrontierResponse MakeResponse() {
  FrontierResponse m;
  m.batch = 12;
  m.hop = 2;
  m.from_shard = 2;
  m.slots = {std::numeric_limits<int64_t>::max(), 0, 3};
  m.neighbors.push_back({{5, 17, -1.5}, {6, 18, 2.25}});
  m.neighbors.push_back({});  // isolated node: empty sample
  m.neighbors.push_back({{7, 19, std::numeric_limits<double>::lowest()}});
  return m;
}

std::vector<ShardMessage> Exemplars() {
  std::vector<ShardMessage> out;
  out.push_back(MakePartial());
  out.push_back(ShardPartial{});  // all-empty partial (the batch sentinel)
  out.push_back(MakeRequest());
  out.push_back(FrontierRequest{});
  out.push_back(MakeResponse());
  out.push_back(FrontierResponse{});
  return out;
}

// ---- Round trips -----------------------------------------------------------

TEST(WireTest, RoundTripsEveryAlternative) {
  for (const ShardMessage& message : Exemplars()) {
    ExpectRoundTrip(message);
  }
}

TEST(WireTest, FrameRoundTrip) {
  std::vector<uint8_t> stream;
  const std::vector<ShardMessage> messages = Exemplars();
  for (const ShardMessage& message : messages) {
    wire::AppendFrame(message, &stream);
  }
  // Replay the stream the way a socket reader does: header, payload,
  // repeat; the frames must reproduce the messages in order.
  size_t pos = 0;
  for (const ShardMessage& expected : messages) {
    ASSERT_GE(stream.size() - pos, wire::kFrameHeaderBytes);
    Result<uint32_t> length = wire::DecodeFrameLength(
        std::span<const uint8_t, wire::kFrameHeaderBytes>(
            stream.data() + pos, wire::kFrameHeaderBytes));
    ASSERT_TRUE(length.ok()) << length.status();
    pos += wire::kFrameHeaderBytes;
    ASSERT_GE(stream.size() - pos, *length);
    Result<ShardMessage> decoded = wire::DecodeMessage(
        std::span<const uint8_t>(stream.data() + pos, *length));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(Equal(expected, *decoded));
    pos += *length;
  }
  EXPECT_EQ(pos, stream.size());
}

// ---- Malformed input -------------------------------------------------------

TEST(WireTest, EveryTruncationFailsCleanly) {
  for (const ShardMessage& message : Exemplars()) {
    const std::vector<uint8_t> payload = wire::EncodeMessage(message);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Result<ShardMessage> decoded = wire::DecodeMessage(
          std::span<const uint8_t>(payload.data(), cut));
      EXPECT_FALSE(decoded.ok())
          << "prefix of " << cut << "/" << payload.size()
          << " bytes decoded as a full message";
    }
  }
}

TEST(WireTest, TrailingBytesRejected) {
  std::vector<uint8_t> payload = wire::EncodeMessage(ShardMessage(MakeRequest()));
  payload.push_back(0);
  EXPECT_FALSE(wire::DecodeMessage(payload).ok());
}

TEST(WireTest, UnknownKindRejected) {
  std::vector<uint8_t> payload = {0xEE};
  EXPECT_FALSE(wire::DecodeMessage(payload).ok());
  EXPECT_FALSE(wire::DecodeMessage({}).ok());
}

TEST(WireTest, CorruptCountRejectedBeforeAllocation) {
  // A partial whose state_updates count claims 2^61 entries: the decoder
  // must reject against the bytes remaining, not try to resize.
  std::vector<uint8_t> payload = wire::EncodeMessage(ShardMessage(ShardPartial{}));
  // Layout: kind(1) + batch(8) + from_shard(4) + state_updates count(8).
  ASSERT_GE(payload.size(), 21u);
  for (size_t i = 13; i < 21; ++i) payload[i] = 0xFF;
  Result<ShardMessage> decoded = wire::DecodeMessage(payload);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, FrameLengthValidation) {
  const uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_FALSE(
      wire::DecodeFrameLength(std::span<const uint8_t, 4>(zero, 4)).ok());
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(
      wire::DecodeFrameLength(std::span<const uint8_t, 4>(huge, 4)).ok());
  const uint8_t ok[4] = {1, 0, 0, 0};
  Result<uint32_t> one =
      wire::DecodeFrameLength(std::span<const uint8_t, 4>(ok, 4));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
}

// ---- Fuzz-style mutation loop ----------------------------------------------

TEST(WireTest, MutationFuzz) {
  Rng rng(0x55AA77);
  const std::vector<ShardMessage> exemplars = Exemplars();
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> payload = wire::EncodeMessage(
        exemplars[static_cast<size_t>(rng.UniformInt(
            uint64_t{exemplars.size()}))]);
    // Mutate: flip up to 4 bytes, then maybe truncate or extend.
    const int flips = static_cast<int>(rng.UniformInt(uint64_t{5}));
    for (int f = 0; f < flips && !payload.empty(); ++f) {
      const size_t at =
          static_cast<size_t>(rng.UniformInt(uint64_t{payload.size()}));
      payload[at] = static_cast<uint8_t>(rng.Next());
    }
    if (rng.Bernoulli(0.3) && !payload.empty()) {
      payload.resize(
          static_cast<size_t>(rng.UniformInt(uint64_t{payload.size()})));
    } else if (rng.Bernoulli(0.2)) {
      payload.push_back(static_cast<uint8_t>(rng.Next()));
    }
    // The only acceptable outcomes: a clean Status error or a valid
    // decode (a mutation can land on a don't-care byte). Crashing or
    // hanging is the bug this test exists to catch.
    Result<ShardMessage> decoded = wire::DecodeMessage(payload);
    rejected += decoded.ok() ? 0 : 1;
  }
  // Random mutation overwhelmingly corrupts structure; if nearly
  // everything decoded the checks are not actually running.
  EXPECT_GT(rejected, 1000);
}

TEST(WireTest, RandomGarbageNeverCrashes) {
  Rng rng(0xBADF00D);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> garbage(
        static_cast<size_t>(rng.UniformInt(uint64_t{257})));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    (void)wire::DecodeMessage(garbage);  // must return, cleanly, every time
  }
}

// ---- Coalesced (batch) frames ----------------------------------------------

// Strips the length prefix off a frame, validating it against the actual
// payload size the way a socket reader does.
std::span<const uint8_t> FramePayload(const std::vector<uint8_t>& frame) {
  EXPECT_GE(frame.size(), wire::kFrameHeaderBytes);
  Result<uint32_t> length = wire::DecodeFrameLength(
      std::span<const uint8_t, wire::kFrameHeaderBytes>(
          frame.data(), wire::kFrameHeaderBytes));
  EXPECT_TRUE(length.ok()) << length.status();
  EXPECT_EQ(frame.size() - wire::kFrameHeaderBytes, *length);
  return std::span<const uint8_t>(frame.data() + wire::kFrameHeaderBytes,
                                  frame.size() - wire::kFrameHeaderBytes);
}

TEST(WireTest, BatchFrameRoundTripsMixedKinds) {
  const std::vector<ShardMessage> messages = Exemplars();
  std::vector<uint8_t> frame;
  wire::AppendBatchFrame(messages, &frame);
  Result<std::vector<ShardMessage>> decoded =
      wire::DecodeMessages(FramePayload(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_TRUE(Equal(messages[i], (*decoded)[i])) << "element " << i;
  }
}

TEST(WireTest, SingleElementBatchIsByteIdenticalToPlainFrame) {
  // The degenerate batch must not pay the envelope: a lone message goes
  // out exactly as AppendFrame would send it, and old readers keep
  // decoding it.
  for (const ShardMessage& message : Exemplars()) {
    std::vector<uint8_t> plain;
    wire::AppendFrame(message, &plain);
    std::vector<uint8_t> batched;
    wire::AppendBatchFrame(std::span<const ShardMessage>(&message, 1),
                           &batched);
    EXPECT_EQ(plain, batched);
  }
}

TEST(WireTest, DecodeMessagesAcceptsSingleMessagePayload) {
  // The reader cannot know in advance whether a peer coalesced, so the
  // batch decoder must pass single-message payloads through unchanged.
  for (const ShardMessage& message : Exemplars()) {
    const std::vector<uint8_t> payload = wire::EncodeMessage(message);
    Result<std::vector<ShardMessage>> decoded = wire::DecodeMessages(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->size(), 1u);
    EXPECT_TRUE(Equal(message, (*decoded)[0]));
  }
}

TEST(WireTest, BatchEveryTruncationFailsCleanly) {
  const std::vector<ShardMessage> messages = Exemplars();
  std::vector<uint8_t> frame;
  wire::AppendBatchFrame(messages, &frame);
  const std::span<const uint8_t> payload = FramePayload(frame);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<std::vector<ShardMessage>> decoded =
        wire::DecodeMessages(payload.subspan(0, cut));
    EXPECT_FALSE(decoded.ok())
        << "prefix of " << cut << "/" << payload.size()
        << " bytes decoded as a full batch";
  }
}

TEST(WireTest, BatchTrailingBytesRejected) {
  std::vector<uint8_t> frame;
  wire::AppendBatchFrame(Exemplars(), &frame);
  frame.push_back(0);
  const std::span<const uint8_t> payload(
      frame.data() + wire::kFrameHeaderBytes,
      frame.size() - wire::kFrameHeaderBytes);
  EXPECT_FALSE(wire::DecodeMessages(payload).ok());
}

TEST(WireTest, EmptyBatchRejected) {
  // kind 4, count 0: a frame that carries nothing is a protocol error,
  // not a no-op — SendBatch never emits one.
  const std::vector<uint8_t> payload = {4, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(wire::DecodeMessages(payload).ok());
}

TEST(WireTest, NestedBatchRejected) {
  // A batch whose single element is itself a batch envelope. The inner
  // payload is length-consistent on purpose: only the no-nesting rule can
  // reject it.
  std::vector<uint8_t> inner = {4, 1, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> payload = {4, 1, 0, 0, 0, 0, 0, 0, 0};
  const uint32_t inner_len = static_cast<uint32_t>(inner.size());
  for (int shift = 0; shift < 32; shift += 8) {
    payload.push_back(static_cast<uint8_t>(inner_len >> shift));
  }
  payload.insert(payload.end(), inner.begin(), inner.end());
  EXPECT_FALSE(wire::DecodeMessages(payload).ok());
}

TEST(WireTest, BatchCorruptCountRejectedBeforeAllocation) {
  std::vector<uint8_t> frame;
  wire::AppendBatchFrame(Exemplars(), &frame);
  std::vector<uint8_t> payload(frame.begin() + wire::kFrameHeaderBytes,
                               frame.end());
  // Layout: kind(1) + count(8). Claim 2^64−1 elements.
  for (size_t i = 1; i < 9; ++i) payload[i] = 0xFF;
  EXPECT_FALSE(wire::DecodeMessages(payload).ok());
}

TEST(WireTest, BatchMutationFuzz) {
  Rng rng(0xC0A1E5CE);
  const std::vector<ShardMessage> exemplars = Exemplars();
  int rejected = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    // Batch a random non-empty subset (with repeats) of the exemplars.
    const size_t count = 1 + static_cast<size_t>(rng.UniformInt(uint64_t{4}));
    std::vector<ShardMessage> batch;
    for (size_t i = 0; i < count; ++i) {
      batch.push_back(exemplars[static_cast<size_t>(
          rng.UniformInt(uint64_t{exemplars.size()}))]);
    }
    std::vector<uint8_t> frame;
    wire::AppendBatchFrame(batch, &frame);
    std::vector<uint8_t> payload(frame.begin() + wire::kFrameHeaderBytes,
                                 frame.end());
    const int flips = static_cast<int>(rng.UniformInt(uint64_t{5}));
    for (int f = 0; f < flips && !payload.empty(); ++f) {
      const size_t at =
          static_cast<size_t>(rng.UniformInt(uint64_t{payload.size()}));
      payload[at] = static_cast<uint8_t>(rng.Next());
    }
    if (rng.Bernoulli(0.3) && !payload.empty()) {
      payload.resize(
          static_cast<size_t>(rng.UniformInt(uint64_t{payload.size()})));
    } else if (rng.Bernoulli(0.2)) {
      payload.push_back(static_cast<uint8_t>(rng.Next()));
    }
    Result<std::vector<ShardMessage>> decoded = wire::DecodeMessages(payload);
    rejected += decoded.ok() ? 0 : 1;
  }
  EXPECT_GT(rejected, 500);
}

}  // namespace
}  // namespace serve
}  // namespace apan
