#include "serve/async_pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace apan {
namespace serve {
namespace {

struct Fixture {
  Fixture()
      : dataset(*data::GenerateSynthetic(
            data::SyntheticConfig::WikipediaLike().Scaled(0.05))) {
    config.num_nodes = dataset.num_nodes;
    config.embedding_dim = dataset.feature_dim();
    config.mailbox_slots = 5;
    config.sampled_neighbors = 5;
    config.propagation_hops = 1;
    config.dropout = 0.0f;
  }

  std::vector<graph::Event> BatchEvents(size_t lo, size_t hi) const {
    return std::vector<graph::Event>(dataset.events.begin() + lo,
                                     dataset.events.begin() + hi);
  }

  data::Dataset dataset;
  core::ApanConfig config;
};

TEST(AsyncPipelineTest, ScoresEveryEvent) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 1);
  AsyncPipeline pipeline(&model, {});
  auto result = pipeline.InferBatch(f.BatchEvents(0, 50));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->scores.size(), 50u);
  for (float s : result->scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
  pipeline.Flush();
  EXPECT_EQ(pipeline.batches_propagated(), 1);
}

TEST(AsyncPipelineTest, MatchesSerialReference) {
  Fixture f;
  core::ApanModel piped(f.config, &f.dataset.features, 7);
  core::ApanModel serial(f.config, &f.dataset.features, 7);
  // Identical weights by construction (same seed).
  AsyncPipeline pipeline(&piped, {});
  serial.SetTraining(false);

  for (size_t lo = 0; lo < 300; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    auto piped_result = pipeline.InferBatch(events);
    ASSERT_TRUE(piped_result.ok());
    pipeline.Flush();  // drain so state matches the serial path

    // Serial reference: encode, record, process.
    tensor::NoGradGuard no_grad;
    std::vector<core::InteractionRecord> records;
    for (const auto& e : events) {
      auto out = serial.EncodeNodes({e.src, e.dst});
      core::InteractionRecord rec;
      rec.event = e;
      const int64_t d = f.config.embedding_dim;
      rec.z_src.assign(out.embeddings.data(), out.embeddings.data() + d);
      rec.z_dst.assign(out.embeddings.data() + d,
                       out.embeddings.data() + 2 * d);
      records.push_back(std::move(rec));
    }
    ASSERT_TRUE(serial.ProcessBatchPostInference(records).ok());
  }
  // After identical streams, per-node state must agree closely. (The
  // pipeline encodes each unique node once per batch; the serial loop
  // encodes per event — both write the same final per-event values.)
  int compared = 0;
  for (graph::NodeId v = 0; v < f.config.num_nodes && compared < 20; ++v) {
    if (piped.mailbox().ValidCount(v) == 0) continue;
    ++compared;
    EXPECT_EQ(piped.mailbox().ValidCount(v), serial.mailbox().ValidCount(v));
  }
  EXPECT_GT(compared, 5);
  EXPECT_EQ(piped.graph().num_events(), serial.graph().num_events());
}

TEST(AsyncPipelineTest, OutOfOrderDeliveryDegradesGracefully) {
  // Delaying half of all mail deliveries by one batch must neither lose
  // mail nor materially change the inference scores — the behaviour the
  // paper attributes to the time-sorted mailbox (§3.6). Exact payload
  // equality is not expected: embeddings computed while a mail is in
  // flight legitimately differ slightly.
  Fixture f;
  f.config.mailbox_slots = 64;  // no eviction in this stream
  core::ApanModel ordered(f.config, &f.dataset.features, 3);
  core::ApanModel shuffled(f.config, &f.dataset.features, 3);
  AsyncPipeline p_ordered(&ordered, {});
  AsyncPipeline::Options delayed;
  delayed.delay_fraction = 0.5;
  AsyncPipeline p_shuffled(&shuffled, delayed);

  double score_gap = 0.0;
  size_t scored = 0;
  for (size_t lo = 0; lo < 400; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    auto a = p_ordered.InferBatch(events);
    auto b = p_shuffled.InferBatch(events);
    ASSERT_TRUE(a.ok() && b.ok());
    for (size_t i = 0; i < a->scores.size(); ++i) {
      score_gap += std::abs(a->scores[i] - b->scores[i]);
      ++scored;
    }
    p_ordered.Flush();
    p_shuffled.Flush();  // releases the held-back mail
  }
  EXPECT_LT(score_gap / static_cast<double>(scored), 0.1)
      << "delayed delivery shifted scores too much";
  // No mail was lost: every node eventually holds the same mail count,
  // and the write-maintained slot order presents them in the same time
  // order.
  for (graph::NodeId v = 0; v < f.config.num_nodes; ++v) {
    ASSERT_EQ(ordered.mailbox().ValidCount(v),
              shuffled.mailbox().ValidCount(v))
        << "node " << v;
    if (ordered.mailbox().ValidCount(v) > 1) {
      auto a = ordered.mailbox().ReadBatch({v});
      auto b = shuffled.mailbox().ReadBatch({v});
      EXPECT_EQ(a.counts[0], b.counts[0]);
    }
  }
}

TEST(AsyncPipelineTest, LatencyRecordersPopulate) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 5);
  AsyncPipeline pipeline(&model, {});
  for (size_t lo = 0; lo < 200; lo += 50) {
    ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + 50)).ok());
  }
  pipeline.Flush();
  EXPECT_EQ(pipeline.sync_latency().count(), 4u);
  EXPECT_EQ(pipeline.async_latency().count(), 4u);
  EXPECT_GT(pipeline.sync_latency().Mean(), 0.0);
}

TEST(AsyncPipelineTest, ShutdownRejectsFurtherWork) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 6);
  AsyncPipeline pipeline(&model, {});
  ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(0, 10)).ok());
  pipeline.Shutdown();
  auto r = pipeline.InferBatch(f.BatchEvents(10, 20));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  pipeline.Shutdown();  // idempotent
}

TEST(AsyncPipelineTest, EmptyBatchRejected) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 6);
  AsyncPipeline pipeline(&model, {});
  EXPECT_TRUE(pipeline.InferBatch({}).status().IsInvalidArgument());
}

// The pipeline's latency recorders are obs::Histogram now; quantiles are
// bucket-interpolated, so the tolerances are the bucket widths at the
// queried values (~3.2% relative) instead of exact order statistics.
TEST(LatencyHistogramTest, QuantilesAndMoments) {
  obs::Histogram rec(1);
  for (int i = 1; i <= 100; ++i) rec.Record(static_cast<double>(i));
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(rec.P50(), 50.5, 2.0);
  EXPECT_NEAR(rec.Quantile(0.99), 99.0, 3.5);
  EXPECT_GT(rec.StdDev(), 0.0);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace apan
