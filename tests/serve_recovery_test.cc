// The recovery plane (ISSUE 10's tentpole claim): a shard killed
// mid-stream and rejoined from its checkpoint replays the event tail and
// lands bitwise on the mailbox of a run that never crashed — under clean
// transports AND under FaultyTransport delay/reorder/duplicate faults. A
// UDS lane whose peer dies reconnects under the write path's backoff
// instead of crashing the engine, and a shard administratively marked
// down degrades gracefully: its traffic is shed and counted while
// healthy shards keep serving.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve/snapshot.h"
#include "serve/transport.h"
#include "serve_state_util.h"
#include "util/status.h"

namespace apan {
namespace serve {
namespace {

using testutil::ExpectStitchedMailboxEqual;

struct Fixture {
  Fixture()
      : dataset(*data::GenerateSynthetic(
            data::SyntheticConfig::WikipediaLike().Scaled(0.05))) {
    config.num_nodes = dataset.num_nodes;
    config.embedding_dim = dataset.feature_dim();
    config.mailbox_slots = 5;
    config.sampled_neighbors = 5;
    config.propagation_hops = 1;
    config.dropout = 0.0f;
  }

  std::vector<graph::Event> BatchEvents(size_t lo, size_t hi) const {
    return std::vector<graph::Event>(dataset.events.begin() + lo,
                                     dataset.events.begin() + hi);
  }

  data::Dataset dataset;
  core::ApanConfig config;
};

/// Reference run: the single-worker pipeline over the first `n` events.
std::unique_ptr<core::ApanModel> RunPipeline(const Fixture& f, size_t n,
                                             size_t batch) {
  auto model = std::make_unique<core::ApanModel>(f.config,
                                                 &f.dataset.features, 7);
  AsyncPipeline pipeline(model.get(), {});
  for (size_t lo = 0; lo + batch <= n; lo += batch) {
    EXPECT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  pipeline.Flush();
  return model;
}

struct EngineRun {
  // Declaration order matters: the engine reads the model's weights and
  // holds the served state, so it must be destroyed first.
  std::unique_ptr<core::ApanModel> model;
  std::unique_ptr<ShardedEngine> engine;
};

EngineRun MakeEngine(const Fixture& f, TransportFactory factory,
                     int num_shards = 4) {
  EngineRun run;
  run.model = std::make_unique<core::ApanModel>(f.config,
                                                &f.dataset.features, 7);
  ShardedEngine::Options options;
  options.num_shards = num_shards;
  options.transport = std::move(factory);
  run.engine = std::make_unique<ShardedEngine>(run.model.get(), options);
  return run;
}

void Stream(const Fixture& f, ShardedEngine& engine, size_t lo, size_t hi,
            size_t batch) {
  for (size_t at = lo; at + batch <= hi; at += batch) {
    ASSERT_TRUE(engine.InferBatch(f.BatchEvents(at, at + batch)).ok());
  }
}

TransportFactory FaultyFactory(TransportKind inner, uint64_t seed,
                               double duplicate_probability = 0.3) {
  return [inner, seed, duplicate_probability]() -> std::unique_ptr<Transport> {
    FaultyTransport::Options options;
    options.seed = seed;
    options.delay_probability = 0.5;
    options.duplicate_probability = duplicate_probability;
    options.max_delay_micros = 1500;
    options.flush_period_micros = 100;
    return std::make_unique<FaultyTransport>(MakeTransportFactory(inner)(),
                                             options);
  };
}

std::string SnapPath(const std::string& tag, uint64_t seed, int shard) {
  return testing::TempDir() + "/rejoin_" + tag + "_" + std::to_string(seed) +
         "_" + std::to_string(shard) + ".apsn";
}

// ---- Kill-and-rejoin soak --------------------------------------------------
// Engine A ingests the head of the stream under injected faults, is
// checkpointed at a flushed boundary, and dies (destroyed outright — the
// snapshot files are all that survive). A brand-new engine B, with its
// own faulty transport on a different seed, restores every shard and
// replays the tail. Its stitched mailbox must be bitwise identical to a
// single-worker run that saw the whole stream and never crashed.

void KillAndRejoinSoak(int32_t hops, TransportKind inner,
                       const std::string& tag, uint64_t seed_base) {
  if (inner == TransportKind::kUnixSocket &&
      !UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  f.config.propagation_hops = hops;
  const size_t events = 160, cut = 80, batch = 40;
  const int num_shards = 4;
  const auto reference = RunPipeline(f, events, batch);
  for (uint64_t seed = seed_base; seed < seed_base + 10; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    {
      auto before = MakeEngine(f, FaultyFactory(inner, seed), num_shards);
      Stream(f, *before.engine, 0, cut, batch);
      before.engine->Flush();
      for (int shard = 0; shard < num_shards; ++shard) {
        ASSERT_TRUE(
            before.engine->SnapshotShard(shard, SnapPath(tag, seed, shard))
                .ok());
      }
      // The "crash": engine A is torn down; only the files remain.
    }
    auto after = MakeEngine(f, FaultyFactory(inner, seed + 5000), num_shards);
    for (int shard = 0; shard < num_shards; ++shard) {
      ASSERT_TRUE(
          after.engine->RestoreShard(shard, SnapPath(tag, seed, shard)).ok());
    }
    Stream(f, *after.engine, cut, events, batch);
    after.engine->Flush();
    ExpectStitchedMailboxEqual(*after.engine, *reference, f.config.num_nodes);
  }
}

TEST(KillAndRejoinSoakTest, OneHopInProcess) {
  KillAndRejoinSoak(1, TransportKind::kInProcess, "ip1", 0);
}

TEST(KillAndRejoinSoakTest, OneHopUnixSocket) {
  KillAndRejoinSoak(1, TransportKind::kUnixSocket, "uds1", 100);
}

TEST(KillAndRejoinSoakTest, TwoHopsInProcess) {
  KillAndRejoinSoak(2, TransportKind::kInProcess, "ip2", 200);
}

TEST(KillAndRejoinSoakTest, TwoHopsUnixSocket) {
  KillAndRejoinSoak(2, TransportKind::kUnixSocket, "uds2", 300);
}

// ---- Restore guards --------------------------------------------------------

TEST(RestoreGuardTest, RestoreRejectsWrongShardAndMissingFile) {
  Fixture f;
  auto run = MakeEngine(f, MakeTransportFactory(TransportKind::kInProcess));
  Stream(f, *run.engine, 0, 80, 40);
  run.engine->Flush();
  const std::string path = SnapPath("guard", 0, 0);
  ASSERT_TRUE(run.engine->SnapshotShard(0, path).ok());
  // Shard 0's checkpoint restored into shard 1: the identity check must
  // refuse before any state is touched.
  EXPECT_FALSE(run.engine->RestoreShard(1, path).ok());
  EXPECT_FALSE(
      run.engine->RestoreShard(0, testing::TempDir() + "/no_such.apsn").ok());
  // And the engine is still intact: the refused restores changed nothing.
  const auto reference = RunPipeline(f, 80, 40);
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
}

TEST(RestoreGuardTest, SnapshotToUnwritablePathFailsCleanly) {
  Fixture f;
  auto run = MakeEngine(f, MakeTransportFactory(TransportKind::kInProcess));
  Stream(f, *run.engine, 0, 40, 40);
  run.engine->Flush();
  EXPECT_FALSE(
      run.engine->SnapshotShard(0, "/nonexistent-dir-for-apan-test/s.apsn")
          .ok());
  // The failed write must not wedge the flush barrier.
  run.engine->Flush();
  Stream(f, *run.engine, 40, 80, 40);
  run.engine->Flush();
}

TEST(RestoreGuardTest, AtLeastOnceTransportRefusesRestoreAfterIngest) {
  // An at-least-once transport may still hold duplicate frames from
  // before the restore point; rewinding an engine that has ingested
  // would let them replay into the restored state. The gate fires before
  // the file is even opened.
  Fixture f;
  auto run =
      MakeEngine(f, FaultyFactory(TransportKind::kInProcess, 42));
  Stream(f, *run.engine, 0, 40, 40);
  run.engine->Flush();
  const Status restored =
      run.engine->RestoreShard(0, testing::TempDir() + "/irrelevant.apsn");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kFailedPrecondition);
}

// ---- Lane death and reconnect ----------------------------------------------

TEST(LaneRecoveryTest, KilledLaneReconnectsAndStaysBitwise) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  const size_t events = 240, batch = 40;
  const auto reference = RunPipeline(f, events, batch);
  UnixSocketTransport* raw = nullptr;
  TransportFactory factory = [&raw]() -> std::unique_ptr<Transport> {
    auto transport = std::make_unique<UnixSocketTransport>();
    raw = transport.get();
    return transport;
  };
  auto run = MakeEngine(f, std::move(factory));
  Stream(f, *run.engine, 0, 120, batch);
  run.engine->Flush();  // quiesce: no frame is mid-lane when the peer dies
  ASSERT_NE(raw, nullptr);
  ASSERT_TRUE(raw->KillLaneForTest(0, 1).ok());
  ASSERT_TRUE(raw->KillLaneForTest(2, 3).ok());
  Stream(f, *run.engine, 120, events, batch);
  run.engine->Flush();
  // The killed lanes were rebuilt and the failed frames re-sent whole:
  // nothing was lost, so the mailbox still matches the reference exactly.
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
  const int cells = 4 * 4;
  EXPECT_GE(
      run.engine->registry()->GetCounter("transport.lane_reconnects", cells)
          ->Value(),
      2);
  EXPECT_EQ(run.engine->stats().sends_shed, 0);
}

// ---- Graceful degradation --------------------------------------------------

TEST(DegradationTest, DownShardShedsWithoutBlockingThenRecoversByReset) {
  Fixture f;
  const size_t events = 200, batch = 40;
  const auto reference = RunPipeline(f, events, batch);
  auto run = MakeEngine(f, MakeTransportFactory(TransportKind::kInProcess));
  Stream(f, *run.engine, 0, 80, batch);
  run.engine->Flush();
  run.engine->SetShardDown(3, true);
  // Healthy shards must keep accepting and flushing while shard 3's
  // traffic is shed — a wedge here would hang the test.
  Stream(f, *run.engine, 80, events, batch);
  run.engine->Flush();
  const auto degraded = run.engine->stats();
  EXPECT_GT(degraded.events_shed, 0);
  EXPECT_GT(degraded.sends_shed, 0);
  // Rejoin after an administrative down requires a state resync (the
  // shard missed real traffic); reset + full replay is the cheapest one,
  // and must land bitwise on the never-degraded reference.
  run.engine->SetShardDown(3, false);
  run.engine->ResetState();
  Stream(f, *run.engine, 0, events, batch);
  run.engine->Flush();
  ExpectStitchedMailboxEqual(*run.engine, *reference, f.config.num_nodes);
}

TEST(DegradationTest, DownShardShedsOverUnixSocket) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  Fixture f;
  auto run = MakeEngine(f, MakeTransportFactory(TransportKind::kUnixSocket));
  Stream(f, *run.engine, 0, 40, 40);
  run.engine->Flush();
  run.engine->SetShardDown(1, true);
  Stream(f, *run.engine, 40, 160, 40);
  run.engine->Flush();
  const auto stats = run.engine->stats();
  EXPECT_GT(stats.events_shed, 0);
  EXPECT_GT(stats.sends_shed, 0);
}

}  // namespace
}  // namespace serve
}  // namespace apan
