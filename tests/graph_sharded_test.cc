#include "graph/sharded_temporal_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "graph/sampling.h"
#include "graph/temporal_graph.h"
#include "util/random.h"

namespace apan {
namespace graph {
namespace {

constexpr int64_t kAll = ShardedTemporalGraph::kNoOrdinalLimit;

// Appends the same random stream batch-wise into every slice of `sliced`
// and event-wise into `mono`; returns the events.
std::vector<Event> FillBoth(ShardedTemporalGraph& sliced, TemporalGraph& mono,
                            int64_t num_nodes, int num_events,
                            size_t batch_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  double t = 0.0;
  for (int i = 0; i < num_events; ++i) {
    t += rng.Exponential(1.0);
    const auto a = static_cast<NodeId>(rng.UniformInt(num_nodes));
    const auto b = static_cast<NodeId>(rng.UniformInt(num_nodes));
    events.push_back({a, b, t, -1});
  }
  int64_t batch = 0;
  for (size_t lo = 0; lo < events.size(); lo += batch_size, ++batch) {
    const size_t hi = std::min(lo + batch_size, events.size());
    std::span<const Event> slice(events.data() + lo, hi - lo);
    for (int s = 0; s < sliced.num_shards(); ++s) {
      EXPECT_TRUE(sliced
                      .AppendBatchSlice(s, batch, slice,
                                        static_cast<int64_t>(lo))
                      .ok());
    }
  }
  for (const Event& e : events) EXPECT_TRUE(mono.AddEvent(e).ok());
  return events;
}

TEST(ShardedTemporalGraphTest, OwnershipMatchesSharedHash) {
  ShardedTemporalGraph g(4, 100);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(g.OwnerOf(v), NodeShardOf(v, 4));
  }
}

TEST(ShardedTemporalGraphTest, AppendIsShardLocalAndWatermarked) {
  ShardedTemporalGraph g(2, 10);
  std::vector<Event> batch0 = {{0, 1, 1.0, -1}, {2, 3, 2.0, -1}};
  EXPECT_EQ(g.watermark(0), 0);
  ASSERT_TRUE(g.AppendBatchSlice(0, 0, batch0, 0).ok());
  EXPECT_EQ(g.watermark(0), 1);
  EXPECT_EQ(g.watermark(1), 0);  // shard 1 has not absorbed the batch
  ASSERT_TRUE(g.AppendBatchSlice(1, 0, batch0, 0).ok());
  EXPECT_EQ(g.watermark(1), 1);
  // Each event homed exactly once, each occurrence stored exactly once.
  EXPECT_EQ(g.num_events(), 2);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 1);
  EXPECT_EQ(g.Degree(3), 1);
}

TEST(ShardedTemporalGraphTest, RejectsOutOfOrderBatchAndTimestamp) {
  ShardedTemporalGraph g(2, 10);
  std::vector<Event> batch0 = {{0, 1, 5.0, -1}};
  ASSERT_TRUE(g.AppendBatchSlice(0, 0, batch0, 0).ok());
  // Skipping a batch or replaying one fails on the watermark.
  EXPECT_TRUE(g.AppendBatchSlice(0, 2, batch0, 1).IsFailedPrecondition());
  EXPECT_TRUE(g.AppendBatchSlice(0, 0, batch0, 0).IsFailedPrecondition());
  // Older timestamps fail, even though only shard 1's slice stores rows.
  std::vector<Event> stale = {{0, 1, 4.0, -1}};
  EXPECT_TRUE(g.AppendBatchSlice(0, 1, stale, 1).IsFailedPrecondition());
  std::vector<Event> bad_node = {{0, 99, 6.0, -1}};
  EXPECT_TRUE(g.AppendBatchSlice(0, 1, bad_node, 1).IsInvalidArgument());
}

TEST(ShardedTemporalGraphTest, AcceptsNegativeFirstTimestamp) {
  // TemporalGraph::AddEvent accepts any first timestamp (times measured
  // relative to a reference point can start negative); the slices must
  // agree or the engine aborts on streams the monolithic path serves.
  ShardedTemporalGraph g(2, 4);
  std::vector<Event> batch = {{0, 1, -100.0, -1}, {2, 3, -50.0, -1}};
  ASSERT_TRUE(g.AppendBatchSlice(0, 0, batch, 0).ok());
  ASSERT_TRUE(g.AppendBatchSlice(1, 0, batch, 0).ok());
  EXPECT_EQ(g.num_events(), 2);
  EXPECT_EQ(g.Degree(0), 1);
  // Still-older timestamps in the next batch are rejected as usual.
  std::vector<Event> stale = {{0, 1, -200.0, -1}};
  EXPECT_TRUE(g.AppendBatchSlice(0, 1, stale, 2).IsFailedPrecondition());
}

TEST(ShardedTemporalGraphTest, FailedAppendLeavesSliceUnchanged) {
  // A mid-batch validation failure must not mutate the slice: the
  // watermark stays put, so the caller may re-append the fixed batch
  // without duplicating the valid prefix's entries.
  ShardedTemporalGraph g(1, 10);
  std::vector<Event> bad = {{0, 1, 1.0, -1}, {2, 99, 2.0, -1}};
  EXPECT_TRUE(g.AppendBatchSlice(0, 0, bad, 0).IsInvalidArgument());
  EXPECT_EQ(g.watermark(0), 0);
  EXPECT_EQ(g.num_events(), 0);
  EXPECT_EQ(g.Degree(0), 0);
  EXPECT_EQ(g.Degree(1), 0);
  std::vector<Event> fixed = {{0, 1, 1.0, -1}, {2, 3, 2.0, -1}};
  ASSERT_TRUE(g.AppendBatchSlice(0, 0, fixed, 0).ok());
  EXPECT_EQ(g.num_events(), 2);
  EXPECT_EQ(g.Degree(0), 1);  // exactly once, no duplicate from `bad`
  EXPECT_EQ(g.Degree(1), 1);
}

TEST(ShardedTemporalGraphTest, ReadsMatchMonolithicGraph) {
  const int64_t nodes = 24;
  ShardedTemporalGraph sliced(4, nodes);
  TemporalGraph mono(nodes);
  FillBoth(sliced, mono, nodes, 400, 32, 77);

  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto v = static_cast<NodeId>(rng.UniformInt(nodes));
    const double cutoff = rng.Uniform(0.0, 500.0);
    const auto a = sliced.NeighborsBeforeAsOf(v, cutoff, kAll);
    const auto b = mono.NeighborsBefore(v, cutoff);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].edge_id, b[i].edge_id);
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    }
    const auto ra = sliced.MostRecentNeighborsAsOf(v, cutoff, 5, kAll);
    const auto rb = mono.MostRecentNeighbors(v, cutoff, 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].node, rb[i].node);
      EXPECT_EQ(ra[i].timestamp, rb[i].timestamp);
    }
  }
}

TEST(ShardedTemporalGraphTest, OrdinalLimitMatchesPrefixGraph) {
  // Reading as-of ordinal L must equal a monolithic graph built from only
  // the first L events — the versioned-read property that lets shards run
  // ahead of each other without an epoch gate.
  const int64_t nodes = 24;
  ShardedTemporalGraph sliced(4, nodes);
  TemporalGraph full(nodes);
  const auto events = FillBoth(sliced, full, nodes, 400, 32, 99);

  Rng rng(8);
  for (const int64_t limit : {0L, 1L, 31L, 32L, 100L, 399L, 400L}) {
    TemporalGraph prefix(nodes);
    for (int64_t i = 0; i < limit; ++i) {
      ASSERT_TRUE(prefix.AddEvent(events[static_cast<size_t>(i)]).ok());
    }
    for (int trial = 0; trial < 50; ++trial) {
      const auto v = static_cast<NodeId>(rng.UniformInt(nodes));
      const double cutoff = rng.Uniform(0.0, 500.0);
      const auto a = sliced.MostRecentNeighborsAsOf(v, cutoff, 6, limit);
      const auto b = prefix.MostRecentNeighbors(v, cutoff, 6);
      ASSERT_EQ(a.size(), b.size())
          << "node " << v << " limit " << limit << " cutoff " << cutoff;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      }
    }
  }
}

TEST(ShardedTemporalGraphTest, SlicedMemoryIsOnceNotPerShard) {
  const int64_t nodes = 24;
  for (const int shards : {1, 2, 8}) {
    ShardedTemporalGraph sliced(shards, nodes);
    TemporalGraph mono(nodes);
    FillBoth(sliced, mono, nodes, 300, 25, 13);
    int64_t summed = 0;
    for (int s = 0; s < shards; ++s) summed += sliced.SliceMemoryBytes(s);
    EXPECT_EQ(summed, sliced.MemoryBytes());
    // Each occurrence stored once (entries carry one extra ordinal, so
    // the ratio is a constant ~1.3x, independent of the shard count).
    const double ratio = static_cast<double>(summed) /
                         static_cast<double>(mono.MemoryBytes());
    EXPECT_GT(ratio, 0.9) << shards << " shards";
    EXPECT_LT(ratio, 1.5) << shards << " shards";
    EXPECT_EQ(sliced.num_events(), mono.num_events());
  }
}

// Property (cross-shard no-future-leakage): a 2-hop expansion whose hop-2
// frontier nodes are owned by a *foreign* shard still sees only events
// strictly before before_time — on the sliced graph exactly as on the
// monolithic one. The expansion below mirrors serve::ShardedEngine's
// frontier forwarding: every frontier node is sampled from its owner's
// slice.
TEST(ShardedTemporalGraphProperty, CrossShardTwoHopNoFutureLeakage) {
  const int64_t nodes = 30;
  const int shards = 4;
  const int64_t fanout = 4;
  ShardedTemporalGraph sliced(shards, nodes);
  TemporalGraph mono(nodes);
  const auto events = FillBoth(sliced, mono, nodes, 500, 40, 4242);

  Rng rng(31);
  int64_t foreign_hop2_frontiers = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const auto& e = events[static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(events.size())))];
    const double before_time = e.timestamp;
    const std::vector<NodeId> seeds = {e.src, e.dst};
    const int home = sliced.OwnerOf(e.src);

    // Reference: monolithic 2-hop expansion.
    const auto expected =
        KHopMostRecent(mono, seeds, before_time, 2, fanout);

    // Sliced: hop by hop, each frontier node sampled at its owner shard
    // (what the engine's frontier requests do), reassembled in frontier
    // order.
    std::vector<HopEntry> actual;
    std::vector<NodeId> frontier = seeds;
    for (int32_t hop = 1; hop <= 2; ++hop) {
      std::vector<NodeId> next;
      for (const NodeId v : frontier) {
        if (hop == 2 && sliced.OwnerOf(v) != home) ++foreign_hop2_frontiers;
        const auto sampled =
            sliced.MostRecentNeighborsAsOf(v, before_time, fanout, kAll);
        for (const auto& n : sampled) {
          // The leakage invariant, at every hop, for every owner.
          ASSERT_LT(n.timestamp, before_time)
              << "hop " << hop << " node " << v << " owner "
              << sliced.OwnerOf(v);
          actual.push_back({n.node, n.edge_id, n.timestamp, hop});
          next.push_back(n.node);
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }

    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].node, expected[i].node);
      EXPECT_EQ(actual[i].via_edge, expected[i].via_edge);
      EXPECT_EQ(actual[i].timestamp, expected[i].timestamp);
      EXPECT_EQ(actual[i].hop, expected[i].hop);
      EXPECT_LT(expected[i].timestamp, before_time);  // monolithic too
    }
  }
  // The property must actually have exercised foreign-owned hop-2
  // frontiers, or the test proves nothing about shard boundaries.
  EXPECT_GT(foreign_hop2_frontiers, 100);
}

}  // namespace
}  // namespace graph
}  // namespace apan
