// Training fast path: graph-planned TrainingArena replay, same-ISA
// bitwise determinism of the kernel-substrate backward pass, and
// data-parallel shard equivalence (see docs/performance.md, "Training
// fast path").

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "data/synthetic.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

namespace apan {
namespace train {
namespace {

using tensor::Tensor;

data::Dataset TinyDataset() {
  auto cfg = data::SyntheticConfig::WikipediaLike().Scaled(0.08);
  return *data::GenerateSynthetic(cfg);
}

core::ApanConfig ApanFor(const data::Dataset& ds, float dropout = 0.1f) {
  core::ApanConfig c;
  c.num_nodes = ds.num_nodes;
  c.embedding_dim = ds.feature_dim();
  c.dropout = dropout;
  return c;
}

std::vector<float> FlatParams(TemporalModel* model) {
  std::vector<float> flat;
  for (auto& p : model->Parameters()) {
    flat.insert(flat.end(), p.values().begin(), p.values().end());
  }
  return flat;
}

// ---- TrainingArena in isolation ---------------------------------------------

TEST(TrainingArenaTest, WarmReplayAllocatesNothingAndPreservesNumerics) {
  Rng rng(311);
  Tensor w = Tensor::Randn({6, 6}, &rng);
  w.set_requires_grad(true);
  Tensor bias = Tensor::Randn({6}, &rng);
  bias.set_requires_grad(true);
  Tensor x = Tensor::Randn({4, 6}, &rng);

  tensor::TrainingArena arena;
  int64_t warm_fresh = 0;
  float loss0 = 0.0f;
  std::vector<float> grad0;
  for (int step = 0; step < 5; ++step) {
    float loss_val = 0.0f;
    {
      tensor::TrainingStepScope scope(&arena);
      Tensor y = tensor::AddBiasRelu(tensor::MatMul(x, w), bias);
      Tensor loss = tensor::SumAll(tensor::SoftmaxLastDim(y));
      w.ZeroGrad();
      bias.ZeroGrad();
      ASSERT_TRUE(loss.Backward().ok());
      loss_val = loss.item();
    }
    if (step == 0) {
      EXPECT_TRUE(arena.planned());
      EXPECT_GT(arena.pool_slots(), 0u);
      EXPECT_GT(arena.fresh_impls(), 0);
      warm_fresh = arena.fresh_impls();
      loss0 = loss_val;
      grad0 = w.GradToVector();
      ASSERT_FALSE(grad0.empty());
    } else {
      // Replay: zero heap impls, every draw from the sealed pool.
      EXPECT_EQ(arena.fresh_impls(), warm_fresh) << "step " << step;
      EXPECT_EQ(arena.plan_misses(), 0) << "step " << step;
      EXPECT_GT(arena.reused_impls(), 0);
      // Same inputs through pooled buffers: bitwise-identical step.
      EXPECT_EQ(loss_val, loss0) << "step " << step;
      const auto grad = w.GradToVector();
      ASSERT_EQ(grad.size(), grad0.size());
      for (size_t i = 0; i < grad.size(); ++i) {
        EXPECT_EQ(grad[i], grad0[i]) << "step " << step << " coord " << i;
      }
    }
  }
}

TEST(TrainingArenaTest, TensorHeldAcrossStepsFallsBackWithoutCorruption) {
  Rng rng(312);
  Tensor x = Tensor::Randn({3, 5}, &rng);
  x.set_requires_grad(true);

  tensor::TrainingArena arena;
  Tensor held;
  {
    tensor::TrainingStepScope scope(&arena);
    held = tensor::Sigmoid(x);  // escapes the step
  }
  const std::vector<float> held_values = held.values();
  {
    tensor::TrainingStepScope scope(&arena);
    Tensor fresh = tensor::Sigmoid(x);
    // The held tensor pins its planned slot; the replay must not alias it.
    EXPECT_NE(fresh.impl().get(), held.impl().get());
  }
  EXPECT_GE(arena.plan_misses(), 1);
  for (size_t i = 0; i < held_values.size(); ++i) {
    EXPECT_EQ(held.values()[i], held_values[i]) << "coord " << i;
  }
}

// ---- Trainer-level: zero allocs, determinism, shard equivalence -------------

TEST(TrainFastpathTest, TrainerArenaPlanReplaysWithoutMisses) {
  data::Dataset ds = TinyDataset();
  ApanLinkModel model(ApanFor(ds), &ds.features, 42);
  LinkTrainConfig cfg;
  cfg.max_epochs = 2;
  cfg.patience = 3;
  LinkTrainer trainer(cfg);
  auto report = trainer.Run(&model, ds);
  ASSERT_TRUE(report.ok()) << report.status();
  // APAN's training step is structurally constant, so after the first
  // (planning) batch every step of both epochs replays from the pool:
  // the zero-heap-allocation steady state.
  EXPECT_EQ(report->arena_plan_misses, 0);
  EXPECT_GT(report->arena_pool_slots, 0);
  EXPECT_GT(report->arena_fresh_impls, 0);
  EXPECT_GT(report->arena_reused_impls, report->arena_fresh_impls);
}

TEST(TrainFastpathTest, TrainingIsBitwiseDeterministicOnOneHost) {
  data::Dataset ds = TinyDataset();
  LinkTrainConfig cfg;
  cfg.max_epochs = 2;
  cfg.patience = 3;

  ApanLinkModel m1(ApanFor(ds), &ds.features, 42);
  ApanLinkModel m2(ApanFor(ds), &ds.features, 42);
  LinkTrainer trainer(cfg);
  auto r1 = trainer.Run(&m1, ds);
  auto r2 = trainer.Run(&m2, ds);
  ASSERT_TRUE(r1.ok() && r2.ok());

  // Per-ISA contract (kernels.h): one host, one tier, identical seeds →
  // the whole training trajectory is bitwise reproducible.
  const auto p1 = FlatParams(&m1);
  const auto p2 = FlatParams(&m2);
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p2[i]) << "param coord " << i;
  }
  EXPECT_DOUBLE_EQ(r1->test.ap, r2->test.ap);
  EXPECT_DOUBLE_EQ(r1->validation.ap, r2->validation.ap);
}

TEST(TrainFastpathTest, ShardedEpochMatchesSingleShard) {
  data::Dataset ds = TinyDataset();
  // Dropout off: the only sharded-vs-single difference is then float
  // summation order in the reduced gradient (the BCE mean decomposes
  // exactly across shards).
  LinkTrainConfig base;
  base.max_epochs = 1;
  base.patience = 3;

  ApanLinkModel single(ApanFor(ds, 0.0f), &ds.features, 42);
  auto r_single = LinkTrainer(base).Run(&single, ds);
  ASSERT_TRUE(r_single.ok()) << r_single.status();
  const auto p_single = FlatParams(&single);

  for (const int shards : {2, 4}) {
    LinkTrainConfig cfg = base;
    cfg.data_parallel_shards = shards;
    ApanLinkModel sharded(ApanFor(ds, 0.0f), &ds.features, 42);
    auto r_sharded = LinkTrainer(cfg).Run(&sharded, ds);
    ASSERT_TRUE(r_sharded.ok()) << r_sharded.status();

    const auto p_sharded = FlatParams(&sharded);
    ASSERT_EQ(p_sharded.size(), p_single.size());
    double max_diff = 0.0;
    for (size_t i = 0; i < p_single.size(); ++i) {
      max_diff = std::max(
          max_diff,
          static_cast<double>(std::abs(p_sharded[i] - p_single[i])));
    }
    EXPECT_LT(max_diff, 5e-2) << shards << " shards";
    EXPECT_NEAR(r_sharded->validation.ap, r_single->validation.ap, 0.05)
        << shards << " shards";
  }
}

TEST(TrainFastpathTest, SingleShardConfigIsTheDefaultPathBitwise) {
  data::Dataset ds = TinyDataset();
  LinkTrainConfig base;
  base.max_epochs = 1;
  base.patience = 3;
  LinkTrainConfig explicit_one = base;
  explicit_one.data_parallel_shards = 1;

  ApanLinkModel m1(ApanFor(ds), &ds.features, 42);
  ApanLinkModel m2(ApanFor(ds), &ds.features, 42);
  auto r1 = LinkTrainer(base).Run(&m1, ds);
  auto r2 = LinkTrainer(explicit_one).Run(&m2, ds);
  ASSERT_TRUE(r1.ok() && r2.ok());
  const auto p1 = FlatParams(&m1);
  const auto p2 = FlatParams(&m2);
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p2[i]) << "param coord " << i;
  }
}

}  // namespace
}  // namespace train
}  // namespace apan
