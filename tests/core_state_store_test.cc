// NodeStateStore — the shard-local node-state plane: a Mailbox slice plus
// z(t−) rows for an arbitrary node subset with dense local indexing.
// Covers: subset-vs-monolithic behavioral equivalence, global-id
// translation, memory accounting (disjoint stores sum to ~1x), lifecycle
// reset, and the bounds-check regression for SetLastEmbedding /
// LastEmbedding on both the store and ApanModel (a bad node id or a
// wrong-dimension embedding must abort, never silently index out of
// range).

#include "core/node_state_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/apan_model.h"
#include "data/synthetic.h"
#include "graph/sharded_temporal_graph.h"

namespace apan {
namespace core {
namespace {

MailDelivery Mail(graph::NodeId to, std::vector<float> payload, double t) {
  MailDelivery d;
  d.recipient = to;
  d.mail = std::move(payload);
  d.timestamp = t;
  return d;
}

TEST(NodeStateStoreTest, AllNodesStoreIsIdentityMapped) {
  NodeStateStore store(/*num_nodes=*/6, /*slots=*/2, /*dim=*/3);
  EXPECT_EQ(store.num_nodes(), 6);
  EXPECT_EQ(store.owned_count(), 6);
  for (graph::NodeId v = 0; v < 6; ++v) EXPECT_TRUE(store.Owns(v));
  EXPECT_FALSE(store.Owns(-1));
  EXPECT_FALSE(store.Owns(6));

  store.DeliverBatch({Mail(4, {1.f, 2.f, 3.f}, 5.0)});
  EXPECT_EQ(store.ValidCount(4), 1);
  EXPECT_EQ(store.ValidCount(0), 0);
  // Identity mapping: the raw local-row mailbox sees the same node id.
  EXPECT_EQ(store.mailbox().ValidCount(4), 1);
  EXPECT_FLOAT_EQ(store.RawSlot(4, 0)[1], 2.f);
  EXPECT_EQ(store.NewestTimestamp(4), 5.0);
}

/// Partition with `owned` on shard 0 and every other node on shard 1 —
/// how an arbitrary subset store is expressed.
std::shared_ptr<const NodeStateStore::Partition> SubsetPartition(
    int64_t num_nodes, std::vector<graph::NodeId> owned) {
  return NodeStateStore::Partition::Build(
      num_nodes, 2, [owned = std::move(owned)](graph::NodeId v) {
        return std::find(owned.begin(), owned.end(), v) != owned.end() ? 0
                                                                       : 1;
      });
}

TEST(NodeStateStoreTest, SubsetStoreTranslatesGlobalIds) {
  NodeStateStore store(SubsetPartition(10, {7, 2, 9}), /*shard=*/0,
                       /*slots=*/2, /*dim=*/2);
  EXPECT_EQ(store.owned_count(), 3);
  EXPECT_TRUE(store.Owns(7));
  EXPECT_TRUE(store.Owns(2));
  EXPECT_TRUE(store.Owns(9));
  EXPECT_FALSE(store.Owns(0));
  EXPECT_FALSE(store.Owns(8));

  store.SetLastEmbedding(9, std::vector<float>{4.f, 5.f});
  EXPECT_FLOAT_EQ(store.LastEmbedding(9)[0], 4.f);
  EXPECT_FLOAT_EQ(store.LastEmbedding(7)[0], 0.f);  // untouched row

  store.DeliverBatch({Mail(2, {1.f, 1.f}, 1.0), Mail(9, {2.f, 2.f}, 2.0),
                      Mail(2, {3.f, 3.f}, 3.0)});
  EXPECT_EQ(store.ValidCount(2), 2);
  EXPECT_EQ(store.ValidCount(9), 1);
  EXPECT_EQ(store.ValidCount(7), 0);
  EXPECT_EQ(store.NewestTimestamp(2), 3.0);
  const auto read = store.ReadBatch({2, 9});
  EXPECT_EQ(read.counts[0], 2);
  EXPECT_EQ(read.counts[1], 1);
  EXPECT_EQ(read.timestamps[0], 1.0);
  EXPECT_EQ(read.timestamps[1], 3.0);

  // GatherLastEmbeddings round-trips through the dense rows.
  tensor::Tensor z = store.GatherLastEmbeddings({9, 2});
  EXPECT_FLOAT_EQ(z.data()[0], 4.f);
  EXPECT_FLOAT_EQ(z.data()[2], 0.f);
}

TEST(NodeStateStoreTest, SubsetStoreMatchesMonolithicPerNode) {
  // A partition of stores fed each node's deliveries must hold exactly
  // the per-node state the monolithic store holds — ring eviction
  // included.
  const int64_t nodes = 12, slots = 3, dim = 2;
  NodeStateStore mono(nodes, slots, dim);
  const auto partition = NodeStateStore::Partition::Build(
      nodes, 2, [](graph::NodeId v) { return static_cast<int>(v % 2); });
  NodeStateStore even(partition, 0, slots, dim);
  NodeStateStore odd(partition, 1, slots, dim);

  std::vector<MailDelivery> all;
  for (int i = 0; i < 40; ++i) {
    const graph::NodeId to = (i * 7) % nodes;
    all.push_back(Mail(to, {static_cast<float>(i), static_cast<float>(-i)},
                       static_cast<double>(i)));
  }
  mono.DeliverBatch(all);
  std::vector<MailDelivery> evens, odds;
  for (const auto& d : all) {
    (d.recipient % 2 == 0 ? evens : odds).push_back(d);
  }
  even.DeliverBatch(std::move(evens));
  odd.DeliverBatch(std::move(odds));

  for (graph::NodeId v = 0; v < nodes; ++v) {
    const NodeStateStore& shard = (v % 2 == 0) ? even : odd;
    ASSERT_EQ(shard.ValidCount(v), mono.ValidCount(v)) << "node " << v;
    for (int64_t s = 0; s < shard.ValidCount(v); ++s) {
      const auto a = mono.RawSlot(v, s);
      const auto b = shard.RawSlot(v, s);
      for (size_t k = 0; k < a.size(); ++k) {
        ASSERT_EQ(a[k], b[k]) << "node " << v << " slot " << s;
      }
    }
  }
}

TEST(NodeStateStoreTest, DisjointStoresSumToMonolithicMemory) {
  // 32 and 64 shards are the regression teeth: a per-store O(num_nodes)
  // index would make the sum scale with the shard count; the shared
  // Partition index is charged exactly once across all stores.
  const int64_t nodes = 1024, slots = 4, dim = 16;
  NodeStateStore mono(nodes, slots, dim);
  for (const int shards : {1, 2, 4, 8, 32, 64}) {
    const auto partition = NodeStateStore::Partition::Build(
        nodes, shards,
        [shards](graph::NodeId v) { return graph::NodeShardOf(v, shards); });
    int64_t sum = 0;
    for (int s = 0; s < shards; ++s) {
      NodeStateStore store(partition, s, slots, dim);
      sum += store.MemoryBytes();
    }
    const double ratio = static_cast<double>(sum) /
                         static_cast<double>(mono.MemoryBytes());
    // Each node's rows live in exactly one store; the only overhead is
    // the partition index, counted once total.
    EXPECT_GE(ratio, 1.0) << shards << " shards";
    EXPECT_LE(ratio, 1.2) << shards << " shards";
  }
}

TEST(NodeStateStoreTest, EmptyStoreIsWellFormed) {
  // A shard that owns no nodes still needs a well-formed store.
  NodeStateStore store(SubsetPartition(5, {}), /*shard=*/0, /*slots=*/2,
                       /*dim=*/2);
  EXPECT_EQ(store.owned_count(), 0);
  EXPECT_FALSE(store.Owns(0));
  EXPECT_GE(store.MemoryBytes(), 0);
  store.Reset();  // no-op, must not crash
}

TEST(NodeStateStoreTest, ResetZeroesStateAndDropsMail) {
  NodeStateStore store(4, 2, 2);
  store.SetLastEmbedding(1, std::vector<float>{1.f, 2.f});
  store.DeliverBatch({Mail(1, {3.f, 4.f}, 1.0)});
  store.Reset();
  EXPECT_FLOAT_EQ(store.LastEmbedding(1)[0], 0.f);
  EXPECT_EQ(store.ValidCount(1), 0);
}

// ---- Bounds-check regression (satellite) -----------------------------------
// Out-of-range nodes and wrong-dimension embeddings must abort loudly on
// both the store and the model, never write out of range.

TEST(NodeStateStoreDeathTest, SetLastEmbeddingRejectsBadInputs) {
  NodeStateStore store(4, 2, 2);
  const std::vector<float> ok = {1.f, 2.f};
  const std::vector<float> wrong_dim = {1.f, 2.f, 3.f};
  EXPECT_DEATH(store.SetLastEmbedding(-1, ok), "out of range");
  EXPECT_DEATH(store.SetLastEmbedding(4, ok), "out of range");
  EXPECT_DEATH(store.SetLastEmbedding(0, wrong_dim), "dimension mismatch");
}

TEST(NodeStateStoreDeathTest, SubsetStoreRejectsUnownedNodes) {
  NodeStateStore store(SubsetPartition(5, {1, 3}), /*shard=*/0, 2, 2);
  const std::vector<float> z = {1.f, 2.f};
  EXPECT_DEATH(store.SetLastEmbedding(2, z), "not owned");
  EXPECT_DEATH(store.LastEmbedding(0), "not owned");
  EXPECT_DEATH(store.ValidCount(4), "not owned");
}

TEST(NodeStateStoreDeathTest, ModelBoundsChecksMirrorTheStore) {
  data::Dataset dataset = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.02));
  ApanConfig config;
  config.num_nodes = dataset.num_nodes;
  config.embedding_dim = dataset.feature_dim();
  ApanModel model(config, &dataset.features, 1);
  const std::vector<float> ok(static_cast<size_t>(config.embedding_dim), 0.f);
  const std::vector<float> wrong_dim(
      static_cast<size_t>(config.embedding_dim + 1), 0.f);
  EXPECT_DEATH(model.SetLastEmbedding(-1, ok), "out of range");
  EXPECT_DEATH(model.SetLastEmbedding(config.num_nodes, ok), "out of range");
  EXPECT_DEATH(model.SetLastEmbedding(0, wrong_dim), "dimension mismatch");
  EXPECT_DEATH(model.LastEmbedding(config.num_nodes), "out of range");
}

}  // namespace
}  // namespace core
}  // namespace apan
