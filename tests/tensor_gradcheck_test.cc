// Finite-difference gradient verification for every differentiable op.
//
// For a scalar loss L(x) = sum(w ⊙ f(x)) with fixed random weights w, the
// analytic dL/dx from Backward() must match the central difference
// (L(x+h) - L(x-h)) / 2h at every coordinate.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace apan {
namespace tensor {
namespace {

// Weighted sum reduction makes the loss sensitive to each output entry.
Tensor WeightedSum(const Tensor& y, const std::vector<float>& w) {
  Tensor weights = Tensor::FromVector(y.shape(), w);
  return SumAll(Mul(y, weights));
}

std::vector<float> RandomWeights(int64_t n, Rng* rng) {
  std::vector<float> w(static_cast<size_t>(n));
  for (auto& x : w) x = static_cast<float>(rng->Uniform(0.5, 1.5));
  return w;
}

// Checks d(loss)/d(input i) for every input tensor against central
// differences. `fn` must rebuild the graph from the given inputs each call.
void CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float h = 1e-3f, float tol = 2e-2f) {
  for (auto& in : inputs) in.set_requires_grad(true);
  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1);
  for (auto& in : inputs) in.ZeroGrad();
  ASSERT_TRUE(loss.Backward().ok());

  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& x = inputs[t];
    const auto analytic = x.GradToVector();
    ASSERT_EQ(analytic.size(), static_cast<size_t>(x.numel()));
    for (int64_t i = 0; i < x.numel(); ++i) {
      const float orig = x.item(i);
      x.set_item(i, orig + h);
      const float lp = fn(inputs).item();
      x.set_item(i, orig - h);
      const float lm = fn(inputs).item();
      x.set_item(i, orig);
      const float numeric = (lp - lm) / (2.0f * h);
      const float a = analytic[static_cast<size_t>(i)];
      const float scale = std::max({1.0f, std::abs(a), std::abs(numeric)});
      EXPECT_NEAR(a, numeric, tol * scale)
          << "input " << t << " coordinate " << i;
    }
  }
}

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{20240611};
};

TEST_F(GradCheckTest, Add) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Add(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 3}, &rng_), Tensor::Randn({2, 3}, &rng_)});
}

TEST_F(GradCheckTest, AddBroadcast) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Add(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 3}, &rng_), Tensor::Randn({3}, &rng_)});
}

TEST_F(GradCheckTest, SubBroadcast) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Sub(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 3}, &rng_), Tensor::Randn({3}, &rng_)});
}

TEST_F(GradCheckTest, MulElementwise) {
  auto w = RandomWeights(4, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Mul(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 2}, &rng_), Tensor::Randn({2, 2}, &rng_)});
}

TEST_F(GradCheckTest, MulBroadcast) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Mul(in[0], in[1]), w);
      },
      {Tensor::Randn({3, 2}, &rng_), Tensor::Randn({2}, &rng_)});
}

TEST_F(GradCheckTest, Relu) {
  auto w = RandomWeights(8, &rng_);
  // Keep inputs away from the kink at 0.
  Tensor x = Tensor::Randn({8}, &rng_);
  for (int64_t i = 0; i < 8; ++i) {
    if (std::abs(x.item(i)) < 0.1f) x.set_item(i, 0.5f);
  }
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Relu(in[0]), w);
      },
      {x});
}

TEST_F(GradCheckTest, SigmoidTanhExp) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Exp(Tanh(Sigmoid(in[0]))), w);
      },
      {Tensor::Randn({2, 3}, &rng_)});
}

TEST_F(GradCheckTest, LogOfSoftplusLikeComposite) {
  auto w = RandomWeights(4, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Log(AddScalar(Exp(in[0]), 1.0f)), w);
      },
      {Tensor::Randn({4}, &rng_)});
}

TEST_F(GradCheckTest, MatMulBothSides) {
  auto w = RandomWeights(6, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(MatMul(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 4}, &rng_), Tensor::Randn({4, 3}, &rng_)});
}

TEST_F(GradCheckTest, MatMulSimdTailShapes) {
  // k=17, m=12 leave remainder lanes in the vectorized backward kernels
  // (kernels::MatMulGradA/B stream 8 floats at a time + scalar tails).
  auto w = RandomWeights(3 * 12, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(MatMul(in[0], in[1]), w);
      },
      {Tensor::Randn({3, 17}, &rng_), Tensor::Randn({17, 12}, &rng_)});
}

TEST_F(GradCheckTest, AddBiasReluFused) {
  auto w = RandomWeights(4 * 9, &rng_);
  // Keep pre-activations away from the kink at 0.
  Tensor x = Tensor::Randn({4, 9}, &rng_);
  Tensor bias = Tensor::Randn({9}, &rng_);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 9; ++c) {
      const int64_t i = r * 9 + c;
      if (std::abs(x.item(i) + bias.item(c)) < 0.1f) {
        x.set_item(i, x.item(i) + 0.5f);
      }
    }
  }
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(AddBiasRelu(in[0], in[1]), w);
      },
      {x, bias});
}

TEST_F(GradCheckTest, BmmBothSides) {
  auto w = RandomWeights(2 * 2 * 2, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Bmm(in[0], in[1]), w);
      },
      {Tensor::Randn({2, 2, 3}, &rng_), Tensor::Randn({2, 3, 2}, &rng_)});
}

TEST_F(GradCheckTest, Permute) {
  auto w = RandomWeights(24, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Permute(in[0], {2, 0, 1}), w);
      },
      {Tensor::Randn({2, 3, 4}, &rng_)});
}

TEST_F(GradCheckTest, ReshapeChain) {
  auto w = RandomWeights(12, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(Reshape(Reshape(in[0], {12}), {4, 3}), w);
      },
      {Tensor::Randn({3, 4}, &rng_)});
}

TEST_F(GradCheckTest, ConcatLastDim) {
  auto w = RandomWeights(2 * 5, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(ConcatLastDim({in[0], in[1]}), w);
      },
      {Tensor::Randn({2, 2}, &rng_), Tensor::Randn({2, 3}, &rng_)});
}

TEST_F(GradCheckTest, ConcatRows) {
  auto w = RandomWeights(3 * 2, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(ConcatRows({in[0], in[1]}), w);
      },
      {Tensor::Randn({1, 2}, &rng_), Tensor::Randn({2, 2}, &rng_)});
}

TEST_F(GradCheckTest, GatherRows) {
  auto w = RandomWeights(3 * 2, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(GatherRows(in[0], {0, 2, 0}), w);
      },
      {Tensor::Randn({3, 2}, &rng_)});
}

TEST_F(GradCheckTest, SliceCols) {
  auto w = RandomWeights(2 * 2, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(SliceCols(in[0], 1, 3), w);
      },
      {Tensor::Randn({2, 4}, &rng_)});
}

TEST_F(GradCheckTest, Softmax) {
  auto w = RandomWeights(2 * 4, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(SoftmaxLastDim(in[0]), w);
      },
      {Tensor::Randn({2, 4}, &rng_)});
}

TEST_F(GradCheckTest, LogSoftmax) {
  auto w = RandomWeights(2 * 4, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(LogSoftmaxLastDim(in[0]), w);
      },
      {Tensor::Randn({2, 4}, &rng_)});
}

TEST_F(GradCheckTest, RowNormalize) {
  auto w = RandomWeights(2 * 5, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(RowNormalize(in[0]), w);
      },
      {Tensor::Randn({2, 5}, &rng_)},
      /*h=*/1e-2f, /*tol=*/5e-2f);
}

TEST_F(GradCheckTest, MeanDim1) {
  auto w = RandomWeights(2 * 3, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(MeanDim1(in[0]), w);
      },
      {Tensor::Randn({2, 4, 3}, &rng_)});
}

TEST_F(GradCheckTest, RowwiseDot) {
  auto w = RandomWeights(3, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return WeightedSum(RowwiseDot(in[0], in[1]), w);
      },
      {Tensor::Randn({3, 4}, &rng_), Tensor::Randn({3, 4}, &rng_)});
}

TEST_F(GradCheckTest, BceWithLogits) {
  std::vector<float> targets = {1.0f, 0.0f, 1.0f, 0.5f};
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return BceWithLogits(in[0], targets);
      },
      {Tensor::Randn({4}, &rng_)});
}

TEST_F(GradCheckTest, GaussianKl) {
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return GaussianKl(in[0], in[1]);
      },
      {Tensor::Randn({2, 3}, &rng_), Tensor::Randn({2, 3}, &rng_)});
}

TEST_F(GradCheckTest, AttentionShapedComposite) {
  // End-to-end mini attention: softmax(QK^T/sqrt(d)) V with all three
  // matrices trainable — the exact pattern ApanEncoder uses.
  auto w = RandomWeights(2 * 1 * 3, &rng_);
  CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor scores = Bmm(in[0], Permute(in[1], {0, 2, 1}));
        Tensor attn = SoftmaxLastDim(MulScalar(scores, 1.0f / 2.0f));
        return WeightedSum(Bmm(attn, in[2]), w);
      },
      {Tensor::Randn({2, 1, 4}, &rng_), Tensor::Randn({2, 5, 4}, &rng_),
       Tensor::Randn({2, 5, 3}, &rng_)},
      /*h=*/1e-2f, /*tol=*/5e-2f);
}

}  // namespace
}  // namespace tensor
}  // namespace apan
