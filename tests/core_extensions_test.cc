// Tests for the §3.5/§3.6 extension options: time-kernel positional
// encoding and uniform-sampling propagation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/apan_model.h"
#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"

namespace apan {
namespace core {
namespace {

constexpr int64_t kDim = 8;

ApanConfig BaseConfig() {
  ApanConfig c;
  c.num_nodes = 12;
  c.embedding_dim = kDim;
  c.num_heads = 2;
  c.mailbox_slots = 4;
  c.sampled_neighbors = 3;
  c.propagation_hops = 1;
  c.mlp_hidden = 16;
  c.dropout = 0.0f;
  return c;
}

TEST(MailboxTimestampsTest, ReadBatchReportsSortedTimestamps) {
  Mailbox box(2, 3, 2);
  box.Deliver(0, std::vector<float>{1.0f, 1.0f}, 5.0);
  box.Deliver(0, std::vector<float>{2.0f, 2.0f}, 2.0);  // out of order
  auto read = box.ReadBatch({0, 1});
  ASSERT_EQ(read.timestamps.size(), 6u);
  EXPECT_EQ(read.timestamps[0], 2.0);
  EXPECT_EQ(read.timestamps[1], 5.0);
  EXPECT_EQ(read.timestamps[2], 0.0);  // padding
  EXPECT_EQ(read.timestamps[3], 0.0);  // empty node
}

TEST(TimeKernelEncoderTest, ProducesFiniteDistinctOutput) {
  Rng rng(1);
  ApanConfig cfg = BaseConfig();
  cfg.positional = PositionalMode::kTimeKernel;
  ApanEncoder enc(cfg, &rng);
  enc.SetTraining(false);
  Mailbox box(12, 4, kDim);
  box.Deliver(0, std::vector<float>(kDim, 0.5f), 1.0);
  box.Deliver(0, std::vector<float>(kDim, 0.5f), 9.0);
  auto out =
      enc.Forward(tensor::Tensor::Zeros({1, kDim}), box.ReadBatch({0}));
  for (int64_t i = 0; i < out.embeddings.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.embeddings.item(i)));
  }
  // Mail age matters under the time kernel: compressing the gap changes
  // the encoding even though contents are identical.
  Mailbox tight(12, 4, kDim);
  tight.Deliver(0, std::vector<float>(kDim, 0.5f), 8.9);
  tight.Deliver(0, std::vector<float>(kDim, 0.5f), 9.0);
  auto out2 =
      enc.Forward(tensor::Tensor::Zeros({1, kDim}), tight.ReadBatch({0}));
  float diff = 0.0f;
  for (int64_t i = 0; i < kDim; ++i) {
    diff += std::abs(out.embeddings.item(i) - out2.embeddings.item(i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(TimeKernelEncoderTest, ParameterSetSwapsPositionalTable) {
  Rng rng(2);
  ApanConfig learned = BaseConfig();
  ApanConfig kernel = BaseConfig();
  kernel.positional = PositionalMode::kTimeKernel;
  ApanEncoder a(learned, &rng);
  ApanEncoder b(kernel, &rng);
  // Learned table: slots*dim params; kernel: 2*dim (omega + phase).
  EXPECT_NE(a.ParameterCount(), b.ParameterCount());
}

TEST(UniformPropagationTest, DeliversToHistoricalNeighbors) {
  graph::EdgeFeatureStore features(kDim);
  ApanConfig cfg = BaseConfig();
  cfg.sampling = PropagationSampling::kUniform;
  ApanModel model(cfg, &features, 5);
  auto record = [&](graph::NodeId s, graph::NodeId d, double t) {
    InteractionRecord r;
    r.event = {s, d, t, features.Append(std::vector<float>(kDim, 0.0f))};
    r.z_src.assign(kDim, 1.0f);
    r.z_dst.assign(kDim, 1.0f);
    return r;
  };
  ASSERT_TRUE(model.ProcessBatchPostInference({record(0, 1, 1.0)}).ok());
  ASSERT_TRUE(model.ProcessBatchPostInference({record(1, 2, 2.0)}).ok());
  // Node 0 is a historical neighbor of 1 — uniform propagation from the
  // (1,2) event must have reached it.
  EXPECT_GE(model.mailbox().ValidCount(0), 2);
}

TEST(UniformPropagationTest, EndToEndTrainingWorks) {
  auto ds = *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.05));
  ApanConfig cfg;
  cfg.num_nodes = ds.num_nodes;
  cfg.embedding_dim = ds.feature_dim();
  cfg.sampling = PropagationSampling::kUniform;
  cfg.positional = PositionalMode::kTimeKernel;
  train::ApanLinkModel model(cfg, &ds.features, 6, "APAN-variant");
  train::LinkTrainConfig tc;
  tc.max_epochs = 2;
  train::LinkTrainer trainer(tc);
  auto report = trainer.Run(&model, ds);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->test.ap, 0.5);
  EXPECT_EQ(report->sync_graph_queries, 0);  // still asynchronous
}

}  // namespace
}  // namespace core
}  // namespace apan
