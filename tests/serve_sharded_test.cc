#include "serve/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>

#include "data/synthetic.h"
#include "serve/async_pipeline.h"
#include "serve_state_util.h"

namespace apan {
namespace serve {
namespace {

using testutil::ExpectModelStateUntouched;
using testutil::ExpectStitchedMailboxEqual;

struct Fixture {
  Fixture()
      : dataset(*data::GenerateSynthetic(
            data::SyntheticConfig::WikipediaLike().Scaled(0.05))) {
    config.num_nodes = dataset.num_nodes;
    config.embedding_dim = dataset.feature_dim();
    config.mailbox_slots = 5;
    config.sampled_neighbors = 5;
    config.propagation_hops = 1;
    config.dropout = 0.0f;
  }

  std::vector<graph::Event> BatchEvents(size_t lo, size_t hi) const {
    return std::vector<graph::Event>(dataset.events.begin() + lo,
                                     dataset.events.begin() + hi);
  }

  data::Dataset dataset;
  core::ApanConfig config;
};

// ---- ShardRouter -----------------------------------------------------------

TEST(ShardRouterTest, DeterministicAndInRange) {
  ShardRouter router(4, 1000);
  for (graph::NodeId v = 0; v < 1000; ++v) {
    const int s = router.ShardOf(v);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, router.ShardOf(v));  // pure function of (node, shards)
  }
}

TEST(ShardRouterTest, SpreadsContiguousIdsAcrossShards) {
  ShardRouter router(4, 1024);
  const std::vector<int64_t> counts = router.OwnedNodeCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 1024);
  for (const int64_t c : counts) {
    // A hashed partition of 1024 contiguous ids should not starve or
    // swamp any shard (256 expected; allow wide slack).
    EXPECT_GT(c, 128);
    EXPECT_LT(c, 384);
  }
}

TEST(ShardRouterTest, PartitionNodesIsStable) {
  ShardRouter router(3, 100);
  const std::vector<graph::NodeId> nodes = {7, 3, 99, 7, 42, 3};
  const auto parts = router.PartitionNodes(nodes);
  size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    total += parts[static_cast<size_t>(s)].size();
    // Every node landed on its owner, input order preserved per shard.
    graph::NodeId prev_pos = -1;
    for (const graph::NodeId v : parts[static_cast<size_t>(s)]) {
      EXPECT_EQ(router.ShardOf(v), s);
      (void)prev_pos;
    }
  }
  EXPECT_EQ(total, nodes.size());
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter router(1, 50);
  for (graph::NodeId v = 0; v < 50; ++v) EXPECT_EQ(router.ShardOf(v), 0);
}

TEST(ShardRouterTest, PartitionEventsByHomeShard) {
  ShardRouter router(2, 100);
  std::vector<graph::Event> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back({i % 100, (i * 7 + 1) % 100, static_cast<double>(i), i});
  }
  const auto parts = router.PartitionEvents(events);
  size_t total = 0;
  for (int s = 0; s < 2; ++s) {
    for (const int64_t idx : parts[static_cast<size_t>(s)]) {
      EXPECT_EQ(router.HomeShardOf(events[static_cast<size_t>(idx)]), s);
    }
    total += parts[static_cast<size_t>(s)].size();
  }
  EXPECT_EQ(total, events.size());
}

// ---- ShardedEngine: functional ---------------------------------------------

TEST(ShardedEngineTest, ScoresEveryEvent) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 1);
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&model, options);
  auto result = engine.InferBatch(f.BatchEvents(0, 50));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->scores.size(), 50u);
  for (float s : result->scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
  engine.Flush();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches_ingested, 1);
  EXPECT_EQ(stats.batches_propagated, 1);
  EXPECT_GT(stats.mails_routed, 0);
  EXPECT_EQ(stats.mails_dropped, 0);
}

// The tentpole determinism claim: cross-shard mail arrives out of order by
// construction, yet after Flush() the engine's per-shard stores, stitched
// by ownership, hold mailbox timestamps and counts bitwise-identical to
// the single-worker AsyncPipeline on the same stream (sequence-tagged
// replay restores per-node delivery order, and ρ is finalized over the
// whole batch after merging every shard's partials). The stitched helper
// lives in serve_state_util.h, shared with the transport + state tests.

TEST(ShardedEngineTest, MatchesAsyncPipelineMailboxBitwise) {
  Fixture f;
  core::ApanModel piped(f.config, &f.dataset.features, 7);
  core::ApanModel sharded(f.config, &f.dataset.features, 7);
  AsyncPipeline pipeline(&piped, {});
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&sharded, options);

  // Free-running: no flush between batches, so cross-shard interleavings
  // genuinely occur while the stream is in flight.
  for (size_t lo = 0; lo < 400; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    ASSERT_TRUE(pipeline.InferBatch(events).ok());
    ASSERT_TRUE(engine.InferBatch(events).ok());
  }
  pipeline.Flush();
  engine.Flush();

  // The engine serves out of its own shard-local graph slices AND state
  // stores; the model's monolithic graph stays empty and its lazily-
  // allocated default store was never even materialized (weights are
  // accessed const-only — the strongest form of "untouched").
  EXPECT_EQ(sharded.graph().num_events(), 0);
  EXPECT_EQ(piped.graph().num_events(), engine.sharded_graph().num_events());
  EXPECT_FALSE(sharded.state_store_allocated())
      << "engine materialized the model's state plane";
  ExpectModelStateUntouched(sharded, f.config.num_nodes);
  ExpectStitchedMailboxEqual(engine, piped, f.config.num_nodes,
                             /*min_nonempty=*/20);

  // Per-shard watermarks replaced the global epoch gate: after Flush every
  // slice has absorbed every accepted batch.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(engine.sharded_graph().watermark(s), 8) << "shard " << s;
  }

  // Summed slice memory is ~1x the monolithic graph (each adjacency
  // occurrence lives in exactly one slice; entries carry one extra
  // ordinal), not num_shards x.
  const double slice_bytes =
      static_cast<double>(engine.sharded_graph().MemoryBytes());
  const double mono_bytes = static_cast<double>(piped.graph().MemoryBytes());
  EXPECT_GT(slice_bytes, 0.9 * mono_bytes);
  EXPECT_LT(slice_bytes, 1.5 * mono_bytes);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches_ingested, 8);
  EXPECT_EQ(stats.batches_propagated, 8);
  EXPECT_EQ(stats.batches_rejected, 0);
  EXPECT_GT(stats.mails_cross_shard, 0) << "4 shards must exchange mail";
  // Even 1-hop expansion crosses slices: an event's dst endpoint is
  // foreign for ~3/4 of events under a 4-way hash partition.
  EXPECT_GT(stats.frontier_requests, 0) << "expansion must cross slices";
  EXPECT_GT(stats.frontier_nodes_forwarded, 0);
}

TEST(ShardedEngineTest, MatchesAsyncPipelineBitwiseTwoHops) {
  // Two-hop fan-out: hop-2 frontiers routinely land on nodes owned by a
  // third shard, so the frontier-forwarding protocol (request → owner
  // slice sample → response, slot-tag reassembly) is exercised across
  // chained foreign hops — and must still reproduce the single-worker
  // mailbox bitwise.
  Fixture f;
  f.config.propagation_hops = 2;
  core::ApanModel piped(f.config, &f.dataset.features, 21);
  core::ApanModel sharded(f.config, &f.dataset.features, 21);
  AsyncPipeline pipeline(&piped, {});
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&sharded, options);

  for (size_t lo = 0; lo < 300; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    ASSERT_TRUE(pipeline.InferBatch(events).ok());
    ASSERT_TRUE(engine.InferBatch(events).ok());
  }
  pipeline.Flush();
  engine.Flush();

  ExpectStitchedMailboxEqual(engine, piped, f.config.num_nodes,
                             /*min_nonempty=*/20);
  const auto stats = engine.stats();
  EXPECT_GT(stats.frontier_nodes_forwarded, 0);
}

TEST(ShardedEngineTest, SingleShardMatchesAsyncPipeline) {
  Fixture f;
  core::ApanModel piped(f.config, &f.dataset.features, 11);
  core::ApanModel sharded(f.config, &f.dataset.features, 11);
  AsyncPipeline pipeline(&piped, {});
  ShardedEngine::Options options;
  options.num_shards = 1;
  ShardedEngine engine(&sharded, options);
  for (size_t lo = 0; lo < 200; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    ASSERT_TRUE(pipeline.InferBatch(events).ok());
    ASSERT_TRUE(engine.InferBatch(events).ok());
  }
  pipeline.Flush();
  engine.Flush();
  ExpectStitchedMailboxEqual(engine, piped, f.config.num_nodes,
                             /*min_nonempty=*/20);
  EXPECT_EQ(engine.stats().mails_cross_shard, 0);
}

TEST(ShardedEngineTest, FlushSteppedPayloadsAndScoresTrackPipeline) {
  // With a flush between batches both engines encode from fully-settled
  // state, so scores and mail payloads agree up to floating-point
  // summation order in the cross-shard ρ-merge.
  Fixture f;
  f.config.mailbox_slots = 8;
  core::ApanModel piped(f.config, &f.dataset.features, 3);
  core::ApanModel sharded(f.config, &f.dataset.features, 3);
  AsyncPipeline pipeline(&piped, {});
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&sharded, options);

  double score_gap = 0.0;
  size_t scored = 0;
  for (size_t lo = 0; lo < 300; lo += 50) {
    auto events = f.BatchEvents(lo, lo + 50);
    auto a = pipeline.InferBatch(events);
    auto b = engine.InferBatch(events);
    ASSERT_TRUE(a.ok() && b.ok());
    for (size_t i = 0; i < a->scores.size(); ++i) {
      score_gap += std::abs(a->scores[i] - b->scores[i]);
      ++scored;
    }
    pipeline.Flush();
    engine.Flush();
  }
  EXPECT_LT(score_gap / static_cast<double>(scored), 1e-3);

  for (graph::NodeId v = 0; v < f.config.num_nodes; ++v) {
    // Stitch: v's mail lives in its owner shard's store. The ring
    // sequence per node is identical to the monolithic mailbox, so even
    // the raw storage order matches slot for slot.
    const core::NodeStateStore& store =
        engine.state_store(engine.router().ShardOf(v));
    const int64_t count = piped.mailbox().ValidCount(v);
    ASSERT_EQ(count, store.ValidCount(v)) << "node " << v;
    for (int64_t slot = 0; slot < count; ++slot) {
      const auto a = piped.mailbox().RawSlot(v, slot);
      const auto b = store.RawSlot(v, slot);
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], 1e-3f)
            << "node " << v << " slot " << slot << " dim " << i;
      }
    }
  }
}

TEST(ShardedEngineTest, RepeatedRunsAreDeterministic) {
  Fixture f;
  std::vector<float> first_scores;
  for (int run = 0; run < 2; ++run) {
    core::ApanModel model(f.config, &f.dataset.features, 5);
    ShardedEngine::Options options;
    options.num_shards = 4;
    ShardedEngine engine(&model, options);
    std::vector<float> scores;
    for (size_t lo = 0; lo < 200; lo += 50) {
      auto result = engine.InferBatch(f.BatchEvents(lo, lo + 50));
      ASSERT_TRUE(result.ok());
      scores.insert(scores.end(), result->scores.begin(),
                    result->scores.end());
      engine.Flush();  // settle state so scores are timing-independent
    }
    if (run == 0) {
      first_scores = std::move(scores);
    } else {
      ASSERT_EQ(first_scores.size(), scores.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        EXPECT_EQ(first_scores[i], scores[i]) << "score " << i;
      }
    }
  }
}

// ---- ShardedEngine: lifecycle + overload -----------------------------------

TEST(ShardedEngineTest, ShutdownRejectsFurtherWork) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 6);
  ShardedEngine::Options options;
  options.num_shards = 2;
  ShardedEngine engine(&model, options);
  ASSERT_TRUE(engine.InferBatch(f.BatchEvents(0, 10)).ok());
  engine.Shutdown();
  auto r = engine.InferBatch(f.BatchEvents(10, 20));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  engine.Shutdown();  // idempotent
}

TEST(ShardedEngineTest, ShutdownDrainsAcceptedWork) {
  // Shutdown without a prior Flush must still apply every accepted
  // batch's mail (the engine drains before stopping the workers).
  Fixture f;
  core::ApanModel drained(f.config, &f.dataset.features, 9);
  core::ApanModel reference(f.config, &f.dataset.features, 9);
  {
    AsyncPipeline pipeline(&reference, {});
    for (size_t lo = 0; lo < 200; lo += 50) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + 50)).ok());
    }
    pipeline.Flush();
  }
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&drained, options);
  for (size_t lo = 0; lo < 200; lo += 50) {
    ASSERT_TRUE(engine.InferBatch(f.BatchEvents(lo, lo + 50)).ok());
  }
  engine.Shutdown();  // no Flush first
  // The stores outlive Shutdown (they die with the engine), so drained
  // state is still inspectable here.
  ExpectStitchedMailboxEqual(engine, reference, f.config.num_nodes,
                             /*min_nonempty=*/20);
}

TEST(ShardedEngineTest, DropPolicyAccountsEveryRecord) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 8);
  ShardedEngine::Options options;
  options.num_shards = 2;
  options.queue_capacity = 1;
  options.overflow = OverflowPolicy::kDropNewest;
  ShardedEngine engine(&model, options);
  const size_t batch = 25;
  size_t pushed = 0;
  for (size_t lo = 0; lo + batch <= 400; lo += batch) {
    ASSERT_TRUE(engine.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
    pushed += batch;
  }
  engine.Flush();
  const auto stats = engine.stats();
  // Whether a given batch was dropped is timing-dependent, but every
  // record is accounted for exactly once: propagated or dropped.
  EXPECT_EQ(stats.batches_propagated * static_cast<int64_t>(batch) +
                stats.mails_dropped,
            static_cast<int64_t>(pushed));
  EXPECT_EQ(stats.batches_propagated, stats.batches_ingested);
  // Refused batches are visible, not silent: the rejection counter
  // reconciles attempts against ingested, and mails_dropped is exactly
  // the rejected batches' records.
  EXPECT_EQ(stats.batches_ingested + stats.batches_rejected,
            static_cast<int64_t>(pushed / batch));
  EXPECT_EQ(stats.mails_dropped,
            stats.batches_rejected * static_cast<int64_t>(batch));
}

TEST(ShardedEngineTest, ConcurrentFlushInferShutdownStress) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 13);
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.queue_capacity = 2;  // exercise back-pressure
  ShardedEngine engine(&model, options);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> accepted{0};
  // One producer keeps the stream-order contract; flushers and shutdowns
  // interleave against it.
  std::thread producer([&] {
    for (size_t lo = 0; lo + 20 <= 400; lo += 20) {
      auto r = engine.InferBatch(f.BatchEvents(lo, lo + 20));
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
        break;
      }
      accepted.fetch_add(1);
    }
    stop.store(true);
  });
  std::vector<std::thread> flushers;
  for (int t = 0; t < 2; ++t) {
    flushers.emplace_back([&] {
      while (!stop.load()) engine.Flush();
      engine.Flush();
    });
  }
  producer.join();
  for (auto& th : flushers) th.join();
  // Two racing shutdowns: the second must wait for (not skip) the first.
  std::thread s1([&] { engine.Shutdown(); });
  std::thread s2([&] { engine.Shutdown(); });
  s1.join();
  s2.join();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.batches_ingested, accepted.load());
  EXPECT_EQ(stats.batches_propagated, accepted.load());
}

TEST(ShardedEngineTest, ZeroQueueCapacityIsClamped) {
  // capacity = 0 must behave like capacity = 1 (as BoundedQueue does),
  // not wedge kBlock back-pressure forever.
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 6);
  ShardedEngine::Options options;
  options.num_shards = 2;
  options.queue_capacity = 0;
  ShardedEngine engine(&model, options);
  ASSERT_TRUE(engine.InferBatch(f.BatchEvents(0, 20)).ok());
  ASSERT_TRUE(engine.InferBatch(f.BatchEvents(20, 40)).ok());
  engine.Flush();
  EXPECT_EQ(engine.stats().batches_propagated, 2);
}

TEST(ShardedEngineTest, EmptyBatchRejected) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 6);
  ShardedEngine engine(&model, {});
  EXPECT_TRUE(engine.InferBatch({}).status().IsInvalidArgument());
}

// ---- AsyncPipeline satellites ----------------------------------------------

TEST(AsyncPipelineShutdownTest, ShutdownDeliversHeldBackMail) {
  // With heavy out-of-order injection, Shutdown without a Flush must not
  // lose the held-back mail: final mail counts match a delay-free run.
  Fixture f;
  f.config.mailbox_slots = 64;  // no eviction in this stream
  core::ApanModel delayed(f.config, &f.dataset.features, 4);
  core::ApanModel ordered(f.config, &f.dataset.features, 4);
  {
    AsyncPipeline::Options options;
    options.delay_fraction = 0.9;
    AsyncPipeline pipeline(&delayed, options);
    for (size_t lo = 0; lo < 200; lo += 50) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + 50)).ok());
    }
    pipeline.Shutdown();  // no Flush: held-back mail must still land
  }
  {
    AsyncPipeline pipeline(&ordered, {});
    for (size_t lo = 0; lo < 200; lo += 50) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + 50)).ok());
    }
    pipeline.Flush();
  }
  for (graph::NodeId v = 0; v < f.config.num_nodes; ++v) {
    ASSERT_EQ(delayed.mailbox().ValidCount(v), ordered.mailbox().ValidCount(v))
        << "node " << v;
  }
}

TEST(AsyncPipelineDropTest, MailsDroppedAccountsEveryRecord) {
  for (const OverflowPolicy policy :
       {OverflowPolicy::kDropNewest, OverflowPolicy::kDropOldest}) {
    Fixture f;
    core::ApanModel model(f.config, &f.dataset.features, 2);
    AsyncPipeline::Options options;
    options.queue_capacity = 1;
    options.overflow = policy;
    AsyncPipeline pipeline(&model, options);
    const size_t batch = 25;
    int64_t pushed = 0;
    for (size_t lo = 0; lo + batch <= 400; lo += batch) {
      auto r = pipeline.InferBatch(f.BatchEvents(lo, lo + batch));
      ASSERT_TRUE(r.ok());
      pushed += static_cast<int64_t>(batch);
    }
    pipeline.Shutdown();  // drains whatever was not dropped
    // Whether a given batch is dropped is timing-dependent; the conserved
    // quantity is records propagated + records dropped == records pushed.
    EXPECT_EQ(pipeline.batches_propagated() * static_cast<int64_t>(batch) +
                  pipeline.mails_dropped(),
              pushed);
  }
}

TEST(AsyncPipelineStressTest, ConcurrentFlushInferShutdown) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 15);
  AsyncPipeline::Options options;
  options.queue_capacity = 2;
  AsyncPipeline pipeline(&model, options);

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (size_t lo = 0; lo + 20 <= 400; lo += 20) {
      auto r = pipeline.InferBatch(f.BatchEvents(lo, lo + 20));
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
        break;
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> flushers;
  for (int t = 0; t < 2; ++t) {
    flushers.emplace_back([&] {
      while (!stop.load()) pipeline.Flush();
      pipeline.Flush();
    });
  }
  producer.join();
  for (auto& th : flushers) th.join();
  std::thread s1([&] { pipeline.Shutdown(); });
  std::thread s2([&] { pipeline.Shutdown(); });
  s1.join();
  s2.join();
}

}  // namespace
}  // namespace serve
}  // namespace apan
