// The sharded state plane end-to-end: per-shard NodeStateStore memory
// accounting against the monolithic store, ShardedEngine::ResetState
// reuse between epochs (a reset engine must reproduce a fresh engine
// bitwise), and the model-untouched invariant (weights replicated, state
// partitioned — the engine never writes ApanModel's mutable state).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve/transport.h"
#include "serve_state_util.h"

namespace apan {
namespace serve {
namespace {

using testutil::ExpectModelStateUntouched;
using testutil::ExpectStitchedMailboxEqual;

struct Fixture {
  Fixture()
      : dataset(*data::GenerateSynthetic(
            data::SyntheticConfig::WikipediaLike().Scaled(0.05))) {
    config.num_nodes = dataset.num_nodes;
    config.embedding_dim = dataset.feature_dim();
    config.mailbox_slots = 5;
    config.sampled_neighbors = 5;
    config.propagation_hops = 1;
    config.dropout = 0.0f;
  }

  std::vector<graph::Event> BatchEvents(size_t lo, size_t hi) const {
    return std::vector<graph::Event>(dataset.events.begin() + lo,
                                     dataset.events.begin() + hi);
  }

  data::Dataset dataset;
  core::ApanConfig config;
};

// ---- State memory accounting (satellite) -----------------------------------

TEST(ShardedStateTest, PerShardStoreMemorySumsToMonolithic) {
  // Disjoint per-shard stores must store the node-state plane ~once, not
  // once per shard: summed NodeStateStore::MemoryBytes stays within 1.2x
  // of the monolithic store at every shard count (the per-store local
  // index is the only overhead).
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 3);
  const int64_t mono_bytes = model.state_store().MemoryBytes();
  ASSERT_GT(mono_bytes, 0);
  for (const int shards : {1, 2, 4, 8}) {
    ShardedEngine::Options options;
    options.num_shards = shards;
    ShardedEngine engine(&model, options);
    int64_t owned = 0;
    int64_t sum = 0;
    for (int s = 0; s < shards; ++s) {
      owned += engine.state_store(s).owned_count();
      sum += engine.state_store(s).MemoryBytes();
    }
    EXPECT_EQ(owned, f.config.num_nodes) << shards << " shards";
    const double ratio =
        static_cast<double>(sum) / static_cast<double>(mono_bytes);
    EXPECT_GE(ratio, 1.0) << shards << " shards";
    EXPECT_LE(ratio, 1.2) << shards << " shards";
  }
}

// ---- ResetState between epochs (satellite) ---------------------------------

void RunStream(ShardedEngine& engine, const Fixture& f, size_t n,
               size_t batch) {
  for (size_t lo = 0; lo + batch <= n; lo += batch) {
    ASSERT_TRUE(engine.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  engine.Flush();
}

void ResetReproducesFreshEngine(TransportKind kind) {
  Fixture f;
  const size_t events = 200, batch = 50;

  // Reference: the single-worker pipeline over the stream, once.
  core::ApanModel piped(f.config, &f.dataset.features, 7);
  {
    AsyncPipeline pipeline(&piped, {});
    for (size_t lo = 0; lo + batch <= events; lo += batch) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
    }
    pipeline.Flush();
  }

  // Epoch 1 + ResetState + epoch 2 on one engine.
  core::ApanModel reused(f.config, &f.dataset.features, 7);
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.transport = MakeTransportFactory(kind);
  ShardedEngine engine(&reused, options);
  RunStream(engine, f, events, batch);
  engine.ResetState();

  // After reset every slice and store is empty and batch numbering has
  // rewound — exactly a fresh engine.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(engine.sharded_graph().watermark(s), 0) << "shard " << s;
  }
  EXPECT_EQ(engine.sharded_graph().num_events(), 0);
  for (graph::NodeId v = 0; v < f.config.num_nodes; ++v) {
    const core::NodeStateStore& store =
        engine.state_store(engine.router().ShardOf(v));
    ASSERT_EQ(store.ValidCount(v), 0) << "node " << v;
    for (const float x : store.LastEmbedding(v)) {
      ASSERT_EQ(x, 0.0f) << "node " << v;
    }
  }

  RunStream(engine, f, events, batch);

  // Epoch 2 of the reused engine lands bitwise on the single-run
  // reference — and therefore on what a fresh engine produces (the
  // sharded tests assert fresh == pipeline on this stream).
  ExpectStitchedMailboxEqual(engine, piped, f.config.num_nodes);
  EXPECT_FALSE(reused.state_store_allocated())
      << "two epochs of serving must not materialize the model's store";
  ExpectModelStateUntouched(reused, f.config.num_nodes);
  EXPECT_EQ(engine.sharded_graph().num_events(),
            static_cast<int64_t>(events / batch * batch));
}

TEST(ShardedStateTest, ResetStateReproducesFreshEngineInProcess) {
  ResetReproducesFreshEngine(TransportKind::kInProcess);
}

TEST(ShardedStateTest, ResetStateReproducesFreshEngineUnixSocket) {
  if (!UnixSocketTransport::Available()) {
    GTEST_SKIP() << "AF_UNIX unavailable on this platform";
  }
  ResetReproducesFreshEngine(TransportKind::kUnixSocket);
}

TEST(ShardedStateTest, ResetStateIsIdempotentAndReusable) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 5);
  ShardedEngine::Options options;
  options.num_shards = 2;
  ShardedEngine engine(&model, options);
  engine.ResetState();  // reset of a fresh engine is a no-op
  RunStream(engine, f, 100, 50);
  engine.ResetState();
  engine.ResetState();  // back-to-back resets must not wedge
  RunStream(engine, f, 100, 50);
  EXPECT_EQ(engine.sharded_graph().num_events(), 100);
  engine.Shutdown();
  engine.ResetState();  // documented no-op after Shutdown
}

TEST(ShardedStateTest, ResetStateKeepsCumulativeStats) {
  Fixture f;
  core::ApanModel model(f.config, &f.dataset.features, 5);
  ShardedEngine::Options options;
  options.num_shards = 2;
  ShardedEngine engine(&model, options);
  RunStream(engine, f, 100, 50);
  const auto before = engine.stats();
  engine.ResetState();
  RunStream(engine, f, 100, 50);
  const auto after = engine.stats();
  EXPECT_EQ(after.batches_ingested, 2 * before.batches_ingested);
  EXPECT_EQ(after.batches_propagated, 2 * before.batches_propagated);
}

// ---- Restore-vs-reset equivalence (recovery satellite) ---------------------

TEST(ShardedStateTest, RestoreFromJustWrittenSnapshotIsIdentity) {
  // Snapshot every shard of a warm engine, restore all four back into the
  // same engine: a checkpoint taken at a flushed boundary captures the
  // shard exactly, so the round trip must be a bitwise no-op.
  Fixture f;
  const size_t events = 200, batch = 50;
  core::ApanModel reference_model(f.config, &f.dataset.features, 7);
  {
    AsyncPipeline pipeline(&reference_model, {});
    for (size_t lo = 0; lo + batch <= events; lo += batch) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
    }
    pipeline.Flush();
  }
  core::ApanModel model(f.config, &f.dataset.features, 7);
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine(&model, options);
  RunStream(engine, f, events, batch);
  for (int s = 0; s < 4; ++s) {
    const std::string path =
        testing::TempDir() + "/identity_" + std::to_string(s) + ".apsn";
    ASSERT_TRUE(engine.SnapshotShard(s, path).ok());
    ASSERT_TRUE(engine.RestoreShard(s, path).ok());
  }
  ExpectStitchedMailboxEqual(engine, reference_model, f.config.num_nodes);
  // And the restored engine is still live: the next stretch of the
  // stream is accepted on top of the restored state.
  for (size_t lo = events; lo + batch <= events + 2 * batch; lo += batch) {
    ASSERT_TRUE(engine.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  engine.Flush();
  EXPECT_EQ(engine.sharded_graph().num_events(),
            static_cast<int64_t>(events + 2 * batch));
}

TEST(ShardedStateTest, ResetFullReplayEqualsRestoreTailReplay) {
  // Two recovery strategies for the same crash point must converge: (a)
  // reset + replay the whole stream, (b) restore the mid-stream
  // checkpoint into a fresh engine + replay only the tail. Both are
  // checked bitwise against the single-worker reference.
  Fixture f;
  const size_t events = 200, cut = 100, batch = 50;
  core::ApanModel piped(f.config, &f.dataset.features, 7);
  {
    AsyncPipeline pipeline(&piped, {});
    for (size_t lo = 0; lo + batch <= events; lo += batch) {
      ASSERT_TRUE(pipeline.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
    }
    pipeline.Flush();
  }

  // Checkpoint an engine at the cut, then exercise strategy (a) on it.
  core::ApanModel model_a(f.config, &f.dataset.features, 7);
  ShardedEngine::Options options;
  options.num_shards = 4;
  ShardedEngine engine_a(&model_a, options);
  RunStream(engine_a, f, cut, batch);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(
        engine_a
            .SnapshotShard(s, testing::TempDir() + "/equiv_" +
                                  std::to_string(s) + ".apsn")
            .ok());
  }
  engine_a.ResetState();
  RunStream(engine_a, f, events, batch);
  ExpectStitchedMailboxEqual(engine_a, piped, f.config.num_nodes);

  // Strategy (b): a fresh engine adopts the checkpoint and replays the
  // tail only.
  core::ApanModel model_b(f.config, &f.dataset.features, 7);
  ShardedEngine engine_b(&model_b, options);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(
        engine_b
            .RestoreShard(s, testing::TempDir() + "/equiv_" +
                                 std::to_string(s) + ".apsn")
            .ok());
  }
  for (size_t lo = cut; lo + batch <= events; lo += batch) {
    ASSERT_TRUE(engine_b.InferBatch(f.BatchEvents(lo, lo + batch)).ok());
  }
  engine_b.Flush();
  ExpectStitchedMailboxEqual(engine_b, piped, f.config.num_nodes);
  EXPECT_EQ(engine_b.sharded_graph().num_events(),
            static_cast<int64_t>(events));
}

}  // namespace
}  // namespace serve
}  // namespace apan
