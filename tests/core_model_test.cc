#include "core/apan_model.h"

#include <gtest/gtest.h>

namespace apan {
namespace core {
namespace {

constexpr int64_t kDim = 8;

ApanConfig Config() {
  ApanConfig c;
  c.num_nodes = 12;
  c.embedding_dim = kDim;
  c.num_heads = 2;
  c.mailbox_slots = 4;
  c.sampled_neighbors = 3;
  c.propagation_hops = 1;
  c.mlp_hidden = 16;
  c.dropout = 0.0f;
  return c;
}

struct Fixture {
  Fixture() : features(kDim), model(Config(), &features, 99) {
    for (int i = 0; i < 8; ++i) {
      features.Append(std::vector<float>(kDim, 0.1f * (i + 1)));
    }
  }
  InteractionRecord MakeRecord(graph::NodeId s, graph::NodeId d, double t,
                               graph::EdgeId e) {
    InteractionRecord r;
    r.event = {s, d, t, e};
    r.z_src.assign(kDim, 1.0f);
    r.z_dst.assign(kDim, 2.0f);
    return r;
  }
  graph::EdgeFeatureStore features;
  ApanModel model;
};

TEST(ApanModelTest, SynchronousPathNeverQueriesGraph) {
  Fixture f;
  // Populate some history through the async path.
  ASSERT_TRUE(f.model
                  .ProcessBatchPostInference(
                      {f.MakeRecord(0, 1, 1.0, 0), f.MakeRecord(1, 2, 2.0, 1)})
                  .ok());
  f.model.graph().ResetQueryCount();
  // Inference link: encode + decode only.
  tensor::NoGradGuard no_grad;
  auto out = f.model.EncodeNodes({0, 1, 2, 5});
  (void)f.model.link_decoder().Forward(
      tensor::GatherRows(out.embeddings, {0, 1}),
      tensor::GatherRows(out.embeddings, {2, 3}));
  EXPECT_EQ(f.model.graph().query_count(), 0)
      << "APAN's synchronous link must not touch the graph store";
}

TEST(ApanModelTest, AsynchronousPathDoesQueryGraph) {
  Fixture f;
  ASSERT_TRUE(
      f.model.ProcessBatchPostInference({f.MakeRecord(0, 1, 1.0, 0)}).ok());
  f.model.graph().ResetQueryCount();
  ASSERT_TRUE(
      f.model.ProcessBatchPostInference({f.MakeRecord(1, 2, 2.0, 1)}).ok());
  EXPECT_GT(f.model.graph().query_count(), 0);
}

TEST(ApanModelTest, ProcessBatchUpdatesStateMailboxGraph) {
  Fixture f;
  ASSERT_TRUE(
      f.model.ProcessBatchPostInference({f.MakeRecord(3, 4, 1.0, 2)}).ok());
  // State: z(t−) overwritten with the record embeddings.
  EXPECT_FLOAT_EQ(f.model.LastEmbedding(3)[0], 1.0f);
  EXPECT_FLOAT_EQ(f.model.LastEmbedding(4)[0], 2.0f);
  EXPECT_FLOAT_EQ(f.model.LastEmbedding(5)[0], 0.0f);
  // Mailbox: both endpoints received the mail = 1 + e + 2.
  EXPECT_EQ(f.model.mailbox().ValidCount(3), 1);
  EXPECT_FLOAT_EQ(f.model.mailbox().RawSlot(3, 0)[0],
                  1.0f + 0.1f * 3 + 2.0f);
  // Graph: event appended.
  EXPECT_EQ(f.model.graph().num_events(), 1);
}

TEST(ApanModelTest, LaterRecordWinsStateOnDuplicates) {
  Fixture f;
  auto r1 = f.MakeRecord(0, 1, 1.0, 0);
  auto r2 = f.MakeRecord(0, 2, 2.0, 1);
  r2.z_src.assign(kDim, 9.0f);
  ASSERT_TRUE(f.model.ProcessBatchPostInference({r1, r2}).ok());
  EXPECT_FLOAT_EQ(f.model.LastEmbedding(0)[0], 9.0f);
}

TEST(ApanModelTest, GatherAndUpdateRoundTrip) {
  Fixture f;
  tensor::Tensor vals = tensor::Tensor::Full({2, kDim}, 3.5f);
  f.model.UpdateLastEmbeddings({7, 9}, vals);
  tensor::Tensor back = f.model.GatherLastEmbeddings({9, 7, 0});
  EXPECT_FLOAT_EQ(back.at(0, 0), 3.5f);
  EXPECT_FLOAT_EQ(back.at(1, 0), 3.5f);
  EXPECT_FLOAT_EQ(back.at(2, 0), 0.0f);
}

TEST(ApanModelTest, ResetStateClearsEverything) {
  Fixture f;
  ASSERT_TRUE(
      f.model.ProcessBatchPostInference({f.MakeRecord(0, 1, 1.0, 0)}).ok());
  f.model.ResetState();
  EXPECT_FLOAT_EQ(f.model.LastEmbedding(0)[0], 0.0f);
  EXPECT_EQ(f.model.mailbox().ValidCount(0), 0);
  EXPECT_EQ(f.model.graph().num_events(), 0);
  // Weights survive the reset.
  EXPECT_GT(f.model.ParameterCount(), 0);
}

TEST(ApanModelTest, EncodeNodesUsesMailboxContent) {
  Fixture f;
  f.model.SetTraining(false);
  tensor::NoGradGuard no_grad;
  auto before = f.model.EncodeNodes({5});
  ASSERT_TRUE(
      f.model.ProcessBatchPostInference({f.MakeRecord(5, 6, 1.0, 0)}).ok());
  // Zero out state so only the mailbox differs from the cold start.
  f.model.UpdateLastEmbeddings({5},
                               tensor::Tensor::Zeros({1, kDim}));
  auto after = f.model.EncodeNodes({5});
  float diff = 0.0f;
  for (int64_t i = 0; i < kDim; ++i) {
    diff += std::abs(after.embeddings.item(i) - before.embeddings.item(i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(ApanModelTest, ParameterInventoryIncludesAllHeads) {
  Fixture f;
  // Encoder + link + edge + node decoders all contribute.
  const auto params = f.model.Parameters();
  EXPECT_GT(params.size(), 15u);
}

}  // namespace
}  // namespace core
}  // namespace apan
