#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/batching.h"
#include "data/csv.h"
#include "data/negative_sampler.h"
#include "data/synthetic.h"

namespace apan {
namespace data {
namespace {

TEST(SyntheticTest, WikipediaLikeShape) {
  auto cfg = SyntheticConfig::WikipediaLike().Scaled(0.1);
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_EQ(ds->num_events(), cfg.num_events);
  EXPECT_EQ(ds->num_nodes, cfg.num_users + cfg.num_items);
  EXPECT_EQ(ds->feature_dim(), cfg.feature_dim);
  EXPECT_EQ(ds->label_kind, LabelKind::kNodeDynamic);
  // Bipartite: src always a user, dst always an item.
  for (const auto& e : ds->events) {
    EXPECT_LT(e.src, cfg.num_users);
    EXPECT_GE(e.dst, cfg.num_users);
  }
}

TEST(SyntheticTest, SplitBoundaries) {
  auto ds = GenerateSynthetic(SyntheticConfig::WikipediaLike().Scaled(0.1));
  ASSERT_TRUE(ds.ok());
  const auto n = ds->events.size();
  EXPECT_NEAR(static_cast<double>(ds->train_end) / n, 0.70, 0.01);
  EXPECT_NEAR(static_cast<double>(ds->val_end) / n, 0.85, 0.01);
  EXPECT_EQ(ds->SplitOf(0), Split::kTrain);
  EXPECT_EQ(ds->SplitOf(n - 1), Split::kTest);
}

TEST(SyntheticTest, UnseenNodeCohortExists) {
  auto ds = GenerateSynthetic(SyntheticConfig::WikipediaLike().Scaled(0.2));
  ASSERT_TRUE(ds.ok());
  const auto stats = ds->ComputeTable1Stats();
  EXPECT_GT(stats.unseen_nodes_in_eval, 0);
  EXPECT_GT(stats.old_nodes_in_eval, stats.unseen_nodes_in_eval);
  EXPECT_GT(stats.nodes_in_train, 0);
  EXPECT_GT(stats.timespan, 0.0);
}

TEST(SyntheticTest, LabelsAreSparseAndSkewed) {
  auto ds = GenerateSynthetic(SyntheticConfig::WikipediaLike().Scaled(0.3));
  ASSERT_TRUE(ds.ok());
  int64_t pos = 0, neg = 0, unlabeled = 0;
  for (int8_t l : ds->labels) {
    if (l == 1) {
      ++pos;
    } else if (l == 0) {
      ++neg;
    } else {
      ++unlabeled;
    }
  }
  EXPECT_GT(pos, 0);
  EXPECT_GT(neg, pos);        // skew
  EXPECT_GT(unlabeled, neg);  // sparse labeling, like Table 1
}

TEST(SyntheticTest, AlipayLikeIsGeneralGraphWithEdgeLabels) {
  auto ds = GenerateSynthetic(SyntheticConfig::AlipayLike().Scaled(0.05));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->label_kind, LabelKind::kEdge);
  EXPECT_EQ(ds->num_users, ds->num_nodes);  // not bipartite
  int64_t fraud = 0;
  for (int8_t l : ds->labels) fraud += (l == 1);
  EXPECT_GT(fraud, 0);
  EXPECT_LT(fraud, ds->num_events() / 20);  // rare
}

TEST(SyntheticTest, DeterministicBySeed) {
  auto cfg = SyntheticConfig::RedditLike().Scaled(0.05);
  auto a = GenerateSynthetic(cfg);
  auto b = GenerateSynthetic(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->events.size(), b->events.size());
  for (size_t i = 0; i < a->events.size(); ++i) {
    EXPECT_EQ(a->events[i].src, b->events[i].src);
    EXPECT_EQ(a->events[i].dst, b->events[i].dst);
    EXPECT_EQ(a->events[i].timestamp, b->events[i].timestamp);
  }
  cfg.seed += 1;
  auto c = GenerateSynthetic(cfg);
  ASSERT_TRUE(c.ok());
  int diff = 0;
  for (size_t i = 0; i < a->events.size(); ++i) {
    diff += a->events[i].src != c->events[i].src;
  }
  EXPECT_GT(diff, 0);
}

TEST(SyntheticTest, RepeatStructurePresent) {
  auto ds = GenerateSynthetic(SyntheticConfig::RedditLike().Scaled(0.1));
  ASSERT_TRUE(ds.ok());
  // Count events whose (src,dst) pair repeats an earlier event.
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  int64_t repeats = 0;
  for (const auto& e : ds->events) {
    if (!seen.insert({e.src, e.dst}).second) ++repeats;
  }
  EXPECT_GT(static_cast<double>(repeats) /
                static_cast<double>(ds->num_events()),
            0.4);
}

TEST(SyntheticTest, InvalidConfigsRejected) {
  auto cfg = SyntheticConfig::WikipediaLike();
  cfg.num_users = 0;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());
  cfg = SyntheticConfig::AlipayLike();
  cfg.num_items = 10;  // edge labels need a general graph
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());
}

TEST(SyntheticTest, ScaledAdjustsCounts) {
  auto base = SyntheticConfig::WikipediaLike();
  auto half = base.Scaled(0.5);
  EXPECT_EQ(half.num_events, base.num_events / 2);
  EXPECT_EQ(half.num_users, base.num_users / 2);
  // Floors protect tiny scales.
  auto tiny = base.Scaled(1e-6);
  EXPECT_GE(tiny.num_users, 10);
  EXPECT_GE(tiny.num_events, 100);
}

TEST(NegativeSamplerTest, PoolGrowsAndExcludes) {
  NegativeSampler sampler(10);
  Rng rng(3);
  EXPECT_EQ(sampler.Sample(&rng), -1);  // empty pool
  sampler.Observe(4);
  EXPECT_EQ(sampler.Sample(&rng), 4);
  sampler.Observe(4);  // idempotent
  EXPECT_EQ(sampler.pool_size(), 1u);
  sampler.Observe(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sampler.Sample(&rng, /*exclude=*/4), 7);
  }
}

TEST(BatchIteratorTest, CoversSplitExactlyOnce) {
  auto ds = GenerateSynthetic(SyntheticConfig::WikipediaLike().Scaled(0.05));
  ASSERT_TRUE(ds.ok());
  BatchIterator iter(*ds, Split::kTrain, 64);
  size_t covered = 0;
  size_t last_end = 0;
  while (!iter.Done()) {
    Batch b = iter.Next();
    EXPECT_EQ(b.begin, last_end);
    EXPECT_LE(b.size(), 64u);
    covered += b.size();
    last_end = b.end;
  }
  EXPECT_EQ(covered, ds->train_end);
  EXPECT_EQ(iter.Remaining(), 0u);
}

TEST(BatchIteratorTest, ExplicitRangeAndZeroBatch) {
  BatchIterator iter(10, 25, 0);  // batch clamps to 1
  size_t n = 0;
  while (!iter.Done()) {
    iter.Next();
    ++n;
  }
  EXPECT_EQ(n, 15u);
}

TEST(CsvTest, RoundTripPreservesData) {
  auto ds = GenerateSynthetic(SyntheticConfig::WikipediaLike().Scaled(0.05));
  ASSERT_TRUE(ds.ok());
  const std::string path = ::testing::TempDir() + "/apan_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(*ds, path).ok());
  auto back = ReadCsv(path, "roundtrip", ds->label_kind);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_events(), ds->num_events());
  EXPECT_EQ(back->feature_dim(), ds->feature_dim());
  for (size_t i = 0; i < ds->events.size(); i += 37) {
    EXPECT_EQ(back->labels[i], ds->labels[i]);
    EXPECT_NEAR(back->events[i].timestamp, ds->events[i].timestamp, 1e-6);
    // Feature payload survives within float printing precision.
    EXPECT_NEAR(back->features.Row(back->events[i].edge_id)[0],
                ds->features.Row(ds->events[i].edge_id)[0], 1e-4);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsv("/nonexistent/apan.csv", "x", LabelKind::kNodeDynamic);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace data
}  // namespace apan
