#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace apan {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(7);
  Rng c1 = parent.Fork(0);
  Rng c2 = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.Next() == c2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate single-point range.
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(42);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::map<size_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalZeroMassSignalsFailure) {
  Rng rng(42);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), w.size());
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(42);
  const uint64_t n = 1000;
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Zipf(n, 1.2);
    ASSERT_LT(v, n);
    if (v < 10) ++low;
    if (v >= n - 10) ++high;
  }
  EXPECT_GT(low, 10 * high);  // strong head concentration
}

TEST(RngTest, ZipfAlphaZeroIsUniform) {
  Rng rng(42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[rng.Zipf(3, 0.0)];
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 30000.0, 1.0 / 3.0, 0.02)
        << "bucket " << k;
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(42);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(42);
  auto s = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t x : uniq) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleWithoutReplacementSmallPopulation) {
  Rng rng(42);
  auto s = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(s.size(), 3u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq, (std::set<size_t>{0, 1, 2}));
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(1);
  EXPECT_NE(SplitMix64(0).Next(), c.Next());
}

}  // namespace
}  // namespace apan
