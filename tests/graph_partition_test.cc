#include "graph/node_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/sharded_temporal_graph.h"

namespace apan {
namespace graph {
namespace {

Event E(NodeId src, NodeId dst, double t) {
  Event e;
  e.src = src;
  e.dst = dst;
  e.timestamp = t;
  return e;
}

// Every partition, whichever builder made it, must be a disjoint cover
// with dense ascending local rows — the layout both planes assume.
void ExpectWellFormed(const NodePartition& p, int64_t num_nodes,
                      int num_shards) {
  ASSERT_EQ(p.num_nodes(), num_nodes);
  ASSERT_EQ(p.num_shards, num_shards);
  std::vector<int64_t> next_row(static_cast<size_t>(num_shards), 0);
  int64_t total = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const int owner = p.owner_of[static_cast<size_t>(v)];
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, num_shards);
    EXPECT_EQ(p.local_row[static_cast<size_t>(v)],
              next_row[static_cast<size_t>(owner)]++);
  }
  for (int s = 0; s < num_shards; ++s) {
    EXPECT_EQ(p.owned_count[static_cast<size_t>(s)],
              next_row[static_cast<size_t>(s)]);
    total += p.owned_count[static_cast<size_t>(s)];
  }
  EXPECT_EQ(total, num_nodes);
}

TEST(NodePartitionTest, BuildDefaultMatchesHash) {
  auto p = NodePartition::BuildDefault(100, 4);
  ExpectWellFormed(*p, 100, 4);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(p->owner_of[static_cast<size_t>(v)], NodeShardOf(v, 4));
  }
}

TEST(NodePartitionTest, LocalityCoLocatesInteractionClusters) {
  // Two disjoint interaction cliques over 16 nodes. Locality must put
  // each clique on one shard, making every observed edge shard-local —
  // the hash splits them ~uniformly.
  std::vector<Event> events;
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    for (NodeId a = 0; a < 8; ++a) {
      for (NodeId b = a + 1; b < 8; ++b) {
        events.push_back(E(a, b, t));
        t += 1.0;
        events.push_back(E(a + 8, b + 8, t));
        t += 1.0;
      }
    }
  }
  auto p = NodePartition::BuildLocality(16, 2, events);
  ExpectWellFormed(*p, 16, 2);
  int64_t cross = 0;
  for (const auto& e : events) {
    if (p->owner_of[static_cast<size_t>(e.src)] !=
        p->owner_of[static_cast<size_t>(e.dst)]) {
      ++cross;
    }
  }
  EXPECT_EQ(cross, 0);
  // And the two cliques landed on different shards (balance cap at 1.2
  // of 8 forbids piling all 16 onto one).
  EXPECT_NE(p->owner_of[0], p->owner_of[8]);
}

TEST(NodePartitionTest, LocalityRespectsBalanceCap) {
  // A hub stream (every event touches node 0) would pull every node onto
  // the hub's shard; the cap must stop that.
  std::vector<Event> events;
  for (NodeId v = 1; v < 40; ++v) {
    events.push_back(E(0, v, static_cast<double>(v)));
  }
  NodePartition::LocalityOptions opts;
  opts.balance_factor = 1.2;
  auto p = NodePartition::BuildLocality(40, 4, events, opts);
  ExpectWellFormed(*p, 40, 4);
  const int64_t cap = 12;  // floor(1.2 * 40 / 4)
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(p->owned_count[static_cast<size_t>(s)], cap);
  }
}

TEST(NodePartitionTest, LocalityPerfectBalanceAtFactorOne) {
  std::vector<Event> events;
  for (NodeId v = 1; v < 32; ++v) {
    events.push_back(E(0, v, static_cast<double>(v)));
  }
  NodePartition::LocalityOptions opts;
  opts.balance_factor = 1.0;
  auto p = NodePartition::BuildLocality(32, 4, events, opts);
  ExpectWellFormed(*p, 32, 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(p->owned_count[static_cast<size_t>(s)], 8);
  }
}

TEST(NodePartitionTest, LocalityIsDeterministic) {
  std::vector<Event> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(E((i * 13) % 50, (i * 7 + 3) % 50,
                       static_cast<double>(i)));
  }
  auto a = NodePartition::BuildLocality(50, 4, events);
  auto b = NodePartition::BuildLocality(50, 4, events);
  EXPECT_EQ(a->owner_of, b->owner_of);
  EXPECT_EQ(a->local_row, b->local_row);
  EXPECT_EQ(a->owned_count, b->owned_count);
}

TEST(NodePartitionTest, LocalityFillsUnseenNodesForBalance) {
  // Only 4 of 64 nodes appear in the warmup; the rest must still be
  // assigned, and the overall partition stays balanced.
  std::vector<Event> events = {E(0, 1, 0.0), E(2, 3, 1.0)};
  auto p = NodePartition::BuildLocality(64, 4, events);
  ExpectWellFormed(*p, 64, 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_GE(p->owned_count[static_cast<size_t>(s)], 14);
  }
}

TEST(NodePartitionTest, LocalitySingleShardOwnsEverything) {
  std::vector<Event> events = {E(0, 1, 0.0)};
  auto p = NodePartition::BuildLocality(8, 1, events);
  ExpectWellFormed(*p, 8, 1);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(p->owner_of[static_cast<size_t>(v)], 0);
  }
}

}  // namespace
}  // namespace graph
}  // namespace apan
