#include "graph/static_graph.h"

#include <gtest/gtest.h>

#include "graph/edge_features.h"

namespace apan {
namespace graph {
namespace {

TEST(StaticGraphTest, CollapsesParallelEdges) {
  TemporalGraph tg(3);
  ASSERT_TRUE(tg.AddEvent({0, 1, 1.0, -1}).ok());
  ASSERT_TRUE(tg.AddEvent({0, 1, 2.0, -1}).ok());
  ASSERT_TRUE(tg.AddEvent({1, 0, 3.0, -1}).ok());  // same undirected pair
  ASSERT_TRUE(tg.AddEvent({1, 2, 4.0, -1}).ok());
  StaticGraph g = StaticGraph::FromTemporal(tg, 10.0);
  EXPECT_EQ(g.num_edges(), 2);
  ASSERT_EQ(g.Neighbors(1).size(), 2u);
  // Multiplicity kept as weight.
  EXPECT_FLOAT_EQ(g.Weights(1)[0], 3.0f);  // edge to 0
  EXPECT_FLOAT_EQ(g.Weights(1)[1], 1.0f);  // edge to 2
}

TEST(StaticGraphTest, BeforeTimeFilters) {
  TemporalGraph tg(3);
  ASSERT_TRUE(tg.AddEvent({0, 1, 1.0, -1}).ok());
  ASSERT_TRUE(tg.AddEvent({1, 2, 5.0, -1}).ok());
  StaticGraph g = StaticGraph::FromTemporal(tg, 3.0);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(StaticGraphTest, DegreeConservation) {
  Rng rng(5);
  TemporalGraph tg(25);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 1.0;
    NodeId a = static_cast<NodeId>(rng.UniformInt(25));
    NodeId b = static_cast<NodeId>(rng.UniformInt(25));
    ASSERT_TRUE(tg.AddEvent({a, b, t, -1}).ok());
  }
  StaticGraph g = StaticGraph::FromTemporal(tg, t + 1.0);
  int64_t degree_sum = 0;
  int64_t self_loops = 0;
  for (NodeId v = 0; v < 25; ++v) degree_sum += g.Degree(v);
  for (NodeId v = 0; v < 25; ++v) {
    if (g.HasEdge(v, v)) ++self_loops;
  }
  // Each non-loop edge contributes 2 to the degree sum, loops 1.
  EXPECT_EQ(degree_sum, 2 * g.num_edges() - self_loops);
}

TEST(StaticGraphTest, NeighborsSortedAscending) {
  StaticGraph g = StaticGraph::FromEdges(5, {{3, 1}, {3, 4}, {3, 0}});
  auto n = g.Neighbors(3);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0);
  EXPECT_EQ(n[1], 1);
  EXPECT_EQ(n[2], 4);
}

TEST(StaticGraphTest, EmptyAndOutOfRange) {
  StaticGraph g = StaticGraph::FromEdges(3, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.Neighbors(0).empty());
  EXPECT_TRUE(g.Neighbors(99).empty());
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(EdgeFeatureStoreTest, AppendAndRow) {
  EdgeFeatureStore store(3);
  EXPECT_EQ(store.Append({1, 2, 3}), 0);
  EXPECT_EQ(store.Append({4, 5, 6}), 1);
  EXPECT_EQ(store.num_edges(), 2);
  EXPECT_FLOAT_EQ(store.Row(1)[2], 6.0f);
}

TEST(EdgeFeatureStoreTest, GatherWithPadding) {
  EdgeFeatureStore store(2);
  store.Append({1, 2});
  store.Append({3, 4});
  auto t = store.Gather({1, -1, 0});
  EXPECT_EQ(t.shape(), (tensor::Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 0.0f);  // padding row zero
  EXPECT_FLOAT_EQ(t.at(2, 1), 2.0f);
}

}  // namespace
}  // namespace graph
}  // namespace apan
