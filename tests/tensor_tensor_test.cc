#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace apan {
namespace tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.item(i), 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.item(i), 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  EXPECT_EQ(o.item(3), 1.0f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarShape) {
  Tensor s = Tensor::Scalar(3.0f);
  EXPECT_EQ(s.shape(), (Shape{1}));
  EXPECT_EQ(s.item(), 3.0f);
}

TEST(TensorTest, RandnIsSeedDeterministic) {
  Rng r1(9), r2(9);
  Tensor a = Tensor::Randn({8}, &r1);
  Tensor b = Tensor::Randn({8}, &r2);
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(a.item(i), b.item(i));
}

TEST(TensorTest, XavierBounds) {
  Rng rng(5);
  Tensor w = Tensor::XavierUniform(64, 64, &rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::abs(w.item(i)), bound);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;
  b.set_item(0, 5.0f);
  EXPECT_EQ(a.item(0), 5.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a.Clone();
  b.set_item(0, 5.0f);
  EXPECT_EQ(a.item(0), 0.0f);
}

TEST(TensorTest, DetachSnapshotsValuesOutsideGraph) {
  Rng rng(1);
  Tensor a = Tensor::Randn({3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(d.item(i), b.item(i));
  // Backward through b does not touch d.
  ASSERT_TRUE(SumAll(b).Backward().ok());
  EXPECT_TRUE(d.GradToVector().empty());
}

TEST(TensorTest, BackwardRequiresScalarRoot) {
  Tensor a = Tensor::Ones({2, 2}, /*requires_grad=*/true);
  Status s = a.Backward();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_TRUE(a.Backward({1, 1, 1, 1}).ok());
}

TEST(TensorTest, BackwardAccumulatesSimpleChain) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor y = SumAll(MulScalar(a, 3.0f));
  ASSERT_TRUE(y.Backward().ok());
  auto g = a.GradToVector();
  ASSERT_EQ(g.size(), 2u);
  EXPECT_FLOAT_EQ(g[0], 3.0f);
  EXPECT_FLOAT_EQ(g[1], 3.0f);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::FromVector({1}, {2.0f}, true);
  Tensor y1 = MulScalar(a, 2.0f);
  ASSERT_TRUE(y1.Backward().ok());
  Tensor y2 = MulScalar(a, 4.0f);
  ASSERT_TRUE(y2.Backward().ok());
  EXPECT_FLOAT_EQ(a.GradToVector()[0], 6.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.GradToVector()[0], 0.0f);
}

TEST(TensorTest, DiamondGraphSumsGradients) {
  // y = a*2 + a*3 -> dy/da = 5.
  Tensor a = Tensor::FromVector({1}, {1.0f}, true);
  Tensor y = Add(MulScalar(a, 2.0f), MulScalar(a, 3.0f));
  ASSERT_TRUE(SumAll(y).Backward().ok());
  EXPECT_FLOAT_EQ(a.GradToVector()[0], 5.0f);
}

TEST(TensorTest, NoGradGuardDisablesGraph) {
  Tensor a = Tensor::Ones({2}, true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(NoGradGuard::GradEnabled());
    Tensor y = MulScalar(a, 2.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
  Tensor y = MulScalar(a, 2.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, NestedNoGradGuardRestores) {
  {
    NoGradGuard g1;
    {
      NoGradGuard g2;
      EXPECT_FALSE(NoGradGuard::GradEnabled());
    }
    EXPECT_FALSE(NoGradGuard::GradEnabled());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
}

TEST(TensorTest, CopyDataFromValidatesShape) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor b = Tensor::Ones({2, 2});
  ASSERT_TRUE(a.CopyDataFrom(b).ok());
  EXPECT_EQ(a.item(0), 1.0f);
  Tensor c = Tensor::Ones({4});
  EXPECT_TRUE(a.CopyDataFrom(c).IsInvalidArgument());
}

TEST(TensorTest, LongChainBackwardDoesNotOverflowStack) {
  // 20k-node chain exercises the iterative topo sort.
  Tensor a = Tensor::Scalar(1.0f, true);
  Tensor y = a;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  ASSERT_TRUE(y.Backward().ok());
  EXPECT_FLOAT_EQ(a.GradToVector()[0], 1.0f);
}

TEST(ShapeTest, NumElementsAndToString) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(NumElements({}), 0);
}

}  // namespace
}  // namespace tensor
}  // namespace apan
