#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace apan {
namespace obs {
namespace {

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + info->test_suite_name() + "_" +
         info->name() + "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- JSON validator (always compiled, even with APAN_TRACING=OFF) ----------

TEST(ValidateJsonTest, AcceptsWellFormed) {
  std::string err;
  EXPECT_TRUE(ValidateJson("{}", &err)) << err;
  EXPECT_TRUE(ValidateJson("[1, 2.5, -3e4, \"s\", true, false, null]", &err))
      << err;
  EXPECT_TRUE(ValidateJson(
      "{\"traceEvents\":[{\"name\":\"a\\\"b\",\"ts\":0.5}]}", &err))
      << err;
}

TEST(ValidateJsonTest, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(ValidateJson("", &err));
  EXPECT_FALSE(ValidateJson("{", &err));
  EXPECT_FALSE(ValidateJson("[1,]", &err));
  EXPECT_FALSE(ValidateJson("{\"a\":01}", &err));
  EXPECT_FALSE(ValidateJson("{\"a\" 1}", &err));
  EXPECT_FALSE(ValidateJson("\"unterminated", &err));
  EXPECT_FALSE(ValidateJson("{} trailing", &err));
  EXPECT_FALSE(err.empty());  // errors come with a message
}

#if APAN_TRACING_ENABLED

// ---- Recorder behaviour (only meaningful when tracing is compiled in) ------

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  {
    Span span("ignored", &recorder);
  }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorderTest, SpansNestAndContain) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    Span outer("outer", &recorder);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      Span inner("inner", &recorder);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);  // same thread, same ring
  // Temporal containment: outer started before inner and ends after it.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
  EXPECT_GT(inner.dur_us, 0.0);
  EXPECT_GT(outer.dur_us, inner.dur_us);
}

TEST(TraceRecorderTest, ThreadsGetDistinctTids) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    Span main_span("main", &recorder);
  }
  std::thread worker([&recorder] { Span s("worker", &recorder); });
  worker.join();
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder recorder;
  recorder.Enable();
  const size_t total = TraceRecorder::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    recorder.Record("tick", static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(recorder.dropped(), 100u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), TraceRecorder::kRingCapacity);
  // Oldest-first: the first surviving span is the one recorded at ts=100.
  EXPECT_DOUBLE_EQ(events.front().ts_us, 100.0);
  EXPECT_DOUBLE_EQ(events.back().ts_us, static_cast<double>(total - 1));
}

TEST(TraceRecorderTest, WriteChromeTraceIsValidJson) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    Span a("append \"quoted\"", &recorder);  // name needing escaping
    Span b("sample", &recorder);
  }
  std::thread worker([&recorder] { Span s("merge", &recorder); });
  worker.join();

  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  const std::string text = ReadFile(path);
  std::string err;
  EXPECT_TRUE(ValidateJson(text, &err)) << err << "\n" << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("append \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\"sample\""), std::string::npos);
  EXPECT_NE(text.find("\"merge\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, ClearResetsBuffersAndDrops) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.Record("x", 0.0, 1.0);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceRecorderTest, GlobalSingletonRoundTrips) {
  TraceRecorder& g = TraceRecorder::Global();
  EXPECT_EQ(&g, &TraceRecorder::Global());
  g.Clear();
  g.Enable();
  {
    APAN_TRACE_SPAN("global_span");
  }
  g.Disable();
  const auto events = g.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "global_span");
  g.Clear();
}

#else  // !APAN_TRACING_ENABLED

// ---- Compile-out contract: stubs still link, macro is a no-op --------------

TEST(TraceStubTest, CompiledOutStubsLinkAndRefuseToWrite) {
  static_assert(!TraceRecorder::kCompiledIn);
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();  // no-op
  EXPECT_FALSE(recorder.enabled());
  recorder.Record("x", 0.0, 1.0);
  EXPECT_TRUE(recorder.Snapshot().empty());
  {
    APAN_TRACE_SPAN("noop");
    Span s("also_noop", &recorder);
  }
  const Status st = recorder.WriteChromeTrace("/dev/null");
  EXPECT_TRUE(st.IsFailedPrecondition());
}

#endif  // APAN_TRACING_ENABLED

}  // namespace
}  // namespace obs
}  // namespace apan
