#include "core/encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace core {
namespace {

using tensor::Shape;
using tensor::Tensor;

ApanConfig SmallConfig() {
  ApanConfig c;
  c.num_nodes = 10;
  c.embedding_dim = 8;
  c.num_heads = 2;
  c.mailbox_slots = 4;
  c.mlp_hidden = 16;
  c.dropout = 0.0f;
  return c;
}

TEST(ApanEncoderTest, OutputShapes) {
  Rng rng(1);
  ApanEncoder enc(SmallConfig(), &rng);
  Mailbox box(10, 4, 8);
  box.Deliver(3, std::vector<float>(8, 1.0f), 1.0);
  auto read = box.ReadBatch({3, 5});
  Tensor last = Tensor::Randn({2, 8}, &rng);
  auto out = enc.Forward(last, read);
  EXPECT_EQ(out.embeddings.shape(), (Shape{2, 8}));
  EXPECT_EQ(out.attention.shape(), (Shape{2, 2, 4}));
}

TEST(ApanEncoderTest, DeterministicInEvalMode) {
  Rng rng(2);
  ApanEncoder enc(SmallConfig(), &rng);
  enc.SetTraining(false);
  Mailbox box(10, 4, 8);
  box.Deliver(0, std::vector<float>(8, 0.5f), 1.0);
  auto read = box.ReadBatch({0});
  Tensor last = Tensor::Randn({1, 8}, &rng);
  auto a = enc.Forward(last, read);
  auto b = enc.Forward(last, read);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(a.embeddings.item(i), b.embeddings.item(i));
  }
}

TEST(ApanEncoderTest, ColdStartEmptyMailboxIsFinite) {
  Rng rng(3);
  ApanEncoder enc(SmallConfig(), &rng);
  Mailbox box(10, 4, 8);
  auto read = box.ReadBatch({7});
  auto out = enc.Forward(Tensor::Zeros({1, 8}), read);
  for (int64_t i = 0; i < out.embeddings.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.embeddings.item(i)));
  }
  // Uniform attention over the empty slots.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(out.attention.item(i), 0.25f, 1e-4f);
  }
}

TEST(ApanEncoderTest, InvariantToDeliveryOrderAfterSort) {
  // Two mailboxes holding the same mails delivered in different orders
  // must encode identically — the property that makes APAN robust to
  // out-of-order streams.
  Rng rng(4);
  ApanEncoder enc(SmallConfig(), &rng);
  enc.SetTraining(false);
  Mailbox a(10, 4, 8), b(10, 4, 8);
  std::vector<std::pair<double, float>> mails = {
      {1.0, 0.1f}, {2.0, 0.2f}, {3.0, 0.3f}};
  for (const auto& [t, v] : mails) {
    a.Deliver(0, std::vector<float>(8, v), t);
  }
  for (auto it = mails.rbegin(); it != mails.rend(); ++it) {
    b.Deliver(0, std::vector<float>(8, it->second), it->first);
  }
  Tensor last = Tensor::Randn({1, 8}, &rng);
  auto oa = enc.Forward(last, a.ReadBatch({0}));
  auto ob = enc.Forward(last, b.ReadBatch({0}));
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(oa.embeddings.item(i), ob.embeddings.item(i));
  }
}

TEST(ApanEncoderTest, MailContentChangesOutput) {
  Rng rng(5);
  ApanEncoder enc(SmallConfig(), &rng);
  enc.SetTraining(false);
  Mailbox a(10, 4, 8), b(10, 4, 8);
  a.Deliver(0, std::vector<float>(8, 1.0f), 1.0);
  b.Deliver(0, std::vector<float>(8, -1.0f), 1.0);
  Tensor last = Tensor::Zeros({1, 8});
  auto oa = enc.Forward(last, a.ReadBatch({0}));
  auto ob = enc.Forward(last, b.ReadBatch({0}));
  float diff = 0.0f;
  for (int64_t i = 0; i < 8; ++i) {
    diff += std::abs(oa.embeddings.item(i) - ob.embeddings.item(i));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(ApanEncoderTest, GradientsFlowToAllSubmodules) {
  Rng rng(6);
  ApanConfig cfg = SmallConfig();
  ApanEncoder enc(cfg, &rng);
  Mailbox box(10, 4, 8);
  box.Deliver(0, std::vector<float>(8, 0.3f), 1.0);
  box.Deliver(0, std::vector<float>(8, -0.2f), 2.0);
  auto out = enc.Forward(Tensor::Randn({1, 8}, &rng), box.ReadBatch({0}));
  ASSERT_TRUE(tensor::SumAll(out.embeddings).Backward().ok());
  int with_grad = 0;
  for (auto& p : enc.Parameters()) {
    double norm = 0.0;
    for (float g : p.GradToVector()) norm += std::abs(g);
    if (norm > 0.0) ++with_grad;
  }
  // Positional table, attention (4), layer norm (2), MLP (4) all live.
  EXPECT_GE(with_grad, 10);
}

TEST(ApanConfigTest, ValidationCatchesEachField) {
  ApanConfig c = SmallConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.num_heads = 3;  // does not divide 8
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = SmallConfig();
  c.embedding_dim = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.mailbox_slots = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.dropout = 1.0f;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.propagation_hops = -1;
  EXPECT_FALSE(c.Validate().ok());
}

}  // namespace
}  // namespace core
}  // namespace apan
