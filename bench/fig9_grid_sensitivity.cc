// Reproduces Figure 9: APAN's average precision over the grid of
// {number of sampled neighbors} x {number of mailbox slots}, both in
// {5, 10, 15, 20}, Wikipedia-like dataset.
//
// Shape to verify: the whole grid is flat (paper: best-to-worst spread
// only 0.6 AP points) — APAN is insensitive to its two main
// hyper-parameters.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace apan;
  std::printf(
      "== Figure 9: AP (%%) grid — mailbox slots x sampled neighbors, "
      "wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  const std::vector<int64_t> grid = {5, 10, 15, 20};

  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(5);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);

  std::printf("%-22s", "neighbors \\ slots");
  for (int64_t s : grid) std::printf(" | %6lld", (long long)s);
  std::printf("\n");
  bench::PrintRule(60);

  double best = 0.0, worst = 1.0;
  for (int64_t neighbors : grid) {
    std::printf("%-22lld", (long long)neighbors);
    for (int64_t slots : grid) {
      core::ApanConfig c;
      c.num_nodes = wiki.num_nodes;
      c.embedding_dim = wiki.feature_dim();
      c.mailbox_slots = slots;
      c.sampled_neighbors = neighbors;
      train::ApanLinkModel model(c, &wiki.features, /*seed=*/2021);
      auto report = trainer.Run(&model, wiki);
      APAN_CHECK_MSG(report.ok(), report.status().ToString());
      const double ap = report->test.ap;
      best = std::max(best, ap);
      worst = std::min(worst, ap);
      std::printf(" | %6.2f", 100 * ap);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  bench::PrintRule(60);
  std::printf("spread (best - worst): %.2f AP points (paper: 0.6)\n",
              100 * (best - worst));
  return 0;
}
