// Sharded serving throughput: end-to-end events/sec versus shard count.
//
// The stream is replayed through serve::ShardedEngine at 1, 2, 4, and 8
// shards (plus the single-worker AsyncPipeline as the unsharded
// baseline). Throughput counts the complete pipeline — synchronous
// scoring, cross-shard mail routing, and full propagation (timing stops
// after Flush) — so it measures the asynchronous link's scaling, which is
// the bottleneck the shard partition parallelizes. The cross-shard column
// reports what fraction of mail left its home shard: the out-of-order
// delivery the paper's §3.6 mailbox tolerates by construction.
//
// Every sharded configuration is replayed TWICE: once with stage metrics
// off (counters only — the cheapest the engine gets) and once with the
// full observability substrate on. The events/s delta between the runs is
// the observability tax, reported per row and bound by the <2% contract
// in docs/observability.md. The metrics-on run then feeds two attributed
// breakdowns into BENCH_fig10.json:
//
//   stages     per-shard worker time split into append / sample /
//              frontier_wait / frontier_serve / propagate / route /
//              merge / idle (disjoint by construction; coverage_pct says
//              how much of num_shards x wall time they account for);
//   transport  frames / bytes / write syscalls per directed shard lane.
//
// --transport selects the shard-to-shard messaging plane:
//   inproc  synchronous in-process delivery (default; the PR 2 numbers)
//   uds     Unix-domain-socket lane per shard pair, serve/wire.h framing
// With uds the bench prints BOTH planes per shard count, so the
// serialization + syscall tax of leaving shared memory reads directly
// off adjacent rows.
//
// Every multi-shard configuration is also run under BOTH node
// partitioners: the stateless ownership hash ("hash") and the
// locality-aware greedy assignment ("locality",
// graph::NodePartition::BuildLocality built prior-epoch style from the
// full replayed stream). Adjacent rows read off exactly what co-location
// buys: the cross-shard mail fraction, the per-peer frame/syscall load,
// and — on real hardware — the events/s recovered from not serializing
// nearly every mail through the transport. At one shard the partitioners
// coincide, so only the hash row is emitted.
//
// --trace=<path> replays one extra metrics-on run at the maximum shard
// count with the span recorder enabled and flushes a Chrome trace_event
// JSON there (open at https://ui.perfetto.dev). Requires a build with
// APAN_TRACING=ON (the default); compiled-out builds warn and skip.
//
//   ./build/bench/fig10_sharded_throughput
//   ./build/bench/fig10_sharded_throughput --transport=uds --trace=f10.json
//   APAN_BENCH_SCALE=4 ./build/bench/fig10_sharded_throughput

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "graph/node_partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve/transport.h"

namespace {

struct RunResult {
  double events_per_sec = 0.0;
  double wall_ms = 0.0;
  int64_t batches = 0;
  double sync_p50_ms = 0.0;
  double sync_p99_ms = 0.0;
  double cross_shard_pct = 0.0;
};

/// One stage row of the attributed breakdown (metrics-on run).
struct StageRow {
  const char* stage = nullptr;
  double total_ms = 0.0;      ///< summed across shards
  double ms_per_batch = 0.0;  ///< total_ms / batches
  double pct_wall = 0.0;      ///< share of num_shards x wall_ms
};

struct StageBreakdown {
  int shards = 0;
  std::string transport;
  std::string partition;
  double wall_ms = 0.0;
  int64_t batches = 0;
  double coverage_pct = 0.0;  ///< worker stages (incl. idle) vs wall
  std::vector<StageRow> rows;
};

/// Per-lane transport accounting (metrics-on run).
struct LaneRow {
  int from = 0;
  int to = 0;
  int64_t frames = 0;
  int64_t bytes = 0;
};

struct TransportBreakdown {
  int shards = 0;
  std::string transport;
  std::string partition;
  int64_t frames = 0;
  int64_t bytes = 0;
  int64_t syscalls = 0;
  int64_t cross_shard_frames = 0;
  std::vector<LaneRow> lanes;  ///< non-empty lanes only
};

/// One table row, retained for BENCH_fig10.json.
struct JsonRow {
  std::string engine;
  std::string transport;
  std::string partition;
  int shards = 0;
  RunResult r;
  /// Sharded rows only: the metrics-off twin and the tax of turning the
  /// stage instrumentation on (negative = on-run measured faster; noise).
  double events_per_sec_noobs = 0.0;
  double obs_overhead_pct = 0.0;
  bool has_noobs = false;
};

/// Replays the stream `loops` times (ResetState between passes — the
/// engine's epoch reset) under one stopwatch. A single pass is only tens
/// of milliseconds at bench scale, too short to time against scheduler
/// noise; the A/B overhead twins use loops > 1 to widen the window.
template <typename Engine>
RunResult Replay(Engine& engine, const apan::data::Dataset& dataset,
                 size_t batch, int loops = 1) {
  using namespace apan;
  Stopwatch watch;
  size_t served = 0;
  int64_t batches = 0;
  for (int loop = 0; loop < loops; ++loop) {
    if (loop > 0) {
      // Only the sharded engine has an epoch reset; the AsyncPipeline
      // baseline replays once.
      if constexpr (requires { engine.ResetState(); }) {
        engine.ResetState();
      }
    }
    for (size_t lo = 0; lo + batch <= dataset.events.size(); lo += batch) {
      std::vector<graph::Event> events(dataset.events.begin() + lo,
                                       dataset.events.begin() + lo + batch);
      auto result = engine.InferBatch(events);
      APAN_CHECK_MSG(result.ok(), result.status().ToString());
      served += result->scores.size();
      ++batches;
    }
    engine.Flush();
  }
  RunResult out;
  out.wall_ms = watch.ElapsedMillis();
  out.batches = batches;
  out.events_per_sec =
      static_cast<double>(served) / (out.wall_ms / 1000.0);
  out.sync_p50_ms = engine.sync_latency().P50();
  out.sync_p99_ms = engine.sync_latency().P99();
  return out;
}

/// The disjoint per-worker stages (docs/observability.md). Order is the
/// life of a batch on the worker; idle last.
constexpr const char* kWorkerStages[] = {
    "append",    "sample", "frontier_wait", "frontier_serve", "propagate",
    "route",     "merge",  "finalize",      "idle"};

StageBreakdown CollectStages(const apan::obs::Registry::Snapshot& snap,
                             int shards, const std::string& transport,
                             const std::string& partition,
                             const RunResult& r) {
  StageBreakdown out;
  out.shards = shards;
  out.transport = transport;
  out.partition = partition;
  out.wall_ms = r.wall_ms;
  out.batches = r.batches;
  const double worker_wall =
      static_cast<double>(shards) * r.wall_ms;  // worker-thread·ms available
  double covered = 0.0;
  for (const char* stage : kWorkerStages) {
    const auto* row = snap.FindHistogram(std::string("stage.") + stage);
    StageRow sr;
    sr.stage = stage;
    if (row != nullptr) sr.total_ms = row->total_ms;
    sr.ms_per_batch =
        r.batches > 0 ? sr.total_ms / static_cast<double>(r.batches) : 0.0;
    sr.pct_wall = worker_wall > 0.0 ? 100.0 * sr.total_ms / worker_wall : 0.0;
    covered += sr.total_ms;
    out.rows.push_back(sr);
  }
  out.coverage_pct =
      worker_wall > 0.0 ? 100.0 * covered / worker_wall : 0.0;
  return out;
}

TransportBreakdown CollectTransport(const apan::obs::Registry::Snapshot& snap,
                                    int shards, const std::string& transport,
                                    const std::string& partition) {
  TransportBreakdown out;
  out.shards = shards;
  out.transport = transport;
  out.partition = partition;
  const auto* frames = snap.FindCounter("transport.frames");
  const auto* bytes = snap.FindCounter("transport.bytes");
  const auto* syscalls = snap.FindCounter("transport.syscalls");
  if (frames == nullptr) return out;  // engine without transport metrics
  out.frames = frames->total;
  out.bytes = bytes != nullptr ? bytes->total : 0;
  out.syscalls = syscalls != nullptr ? syscalls->total : 0;
  for (int from = 0; from < shards; ++from) {
    for (int to = 0; to < shards; ++to) {
      const size_t lane = static_cast<size_t>(from * shards + to);
      if (lane >= frames->cells.size()) continue;
      const int64_t f = frames->cells[lane];
      if (f == 0) continue;
      LaneRow row;
      row.from = from;
      row.to = to;
      row.frames = f;
      if (bytes != nullptr && lane < bytes->cells.size()) {
        row.bytes = bytes->cells[lane];
      }
      if (from != to) out.cross_shard_frames += f;
      out.lanes.push_back(row);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apan;

  serve::TransportKind requested = serve::TransportKind::kInProcess;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      auto kind = serve::ParseTransportKind(arg.substr(strlen("--transport=")));
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      requested = *kind;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = std::string(arg.substr(strlen("--trace=")));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--transport=inproc|uds] [--trace=<path>]\n",
                   argv[0]);
      return 1;
    }
  }
  if (requested == serve::TransportKind::kUnixSocket &&
      !serve::UnixSocketTransport::Available()) {
    std::fprintf(stderr, "--transport=uds: AF_UNIX unavailable here\n");
    return 1;
  }
  std::vector<serve::TransportKind> planes = {
      serve::TransportKind::kInProcess};
  if (requested == serve::TransportKind::kUnixSocket) {
    planes.push_back(serve::TransportKind::kUnixSocket);
  }

  std::printf(
      "== Sharded serving throughput: events/sec vs shard count, "
      "wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  core::ApanConfig config;
  config.num_nodes = wiki.num_nodes;
  config.embedding_dim = wiki.feature_dim();
  config.propagation_hops = 1;
  config.dropout = 0.0f;
  const size_t batch = 200;  // paper's serving batch

  std::printf("%zu events, %lld nodes, batches of %zu\n\n",
              wiki.events.size(), (long long)wiki.num_nodes, batch);
  std::printf("%-18s | %9s | %9s | %12s | %12s | %12s | %12s | %12s\n",
              "Engine", "transport", "partition", "events/s", "ev/s no-obs",
              "sync p50 ms", "sync p99 ms", "cross-shard");
  bench::PrintRule(118);

  double baseline_eps = 0.0;
  int64_t mono_graph_bytes = 0;
  int64_t mono_state_bytes = 0;
  std::vector<JsonRow> json_rows;
  {
    core::ApanModel model(config, &wiki.features, /*seed=*/2021);
    serve::AsyncPipeline pipeline(&model, {});
    const RunResult r = Replay(pipeline, wiki, batch);
    baseline_eps = r.events_per_sec;
    mono_graph_bytes = model.graph().MemoryBytes();
    mono_state_bytes = model.state_store().MemoryBytes();
    std::printf(
        "%-18s | %9s | %9s | %12.0f | %12s | %12.3f | %12.3f | %12s\n",
        "AsyncPipeline", "-", "-", r.events_per_sec, "-", r.sync_p50_ms,
        r.sync_p99_ms, "-");
    std::fflush(stdout);
    JsonRow row{"AsyncPipeline", "-", "-", 0, r, 0.0, 0.0, false};
    json_rows.push_back(row);
  }

  struct MemoryRow {
    int shards = 0;
    std::string partition;
    int64_t slice_bytes = 0;
    int64_t state_bytes = 0;
    /// Largest / smallest per-shard state slice: the balance the
    /// partitioner actually delivered, not just the sum.
    int64_t state_bytes_max_shard = 0;
    int64_t state_bytes_min_shard = 0;
  };
  /// A named ownership index choice; null index = the engine's hash
  /// default.
  struct PartitionChoice {
    const char* name;
    std::shared_ptr<const graph::NodePartition> index;
  };
  std::vector<MemoryRow> memory_rows;
  std::vector<StageBreakdown> stage_breakdowns;
  std::vector<TransportBreakdown> transport_breakdowns;
  for (const int shards : {1, 2, 4, 8}) {
    std::vector<PartitionChoice> partitions;
    partitions.push_back({"hash", nullptr});
    if (shards > 1) {
      // Prior-epoch style: the greedy builder sees the stream it will
      // serve — the upper bound on what warmup-prefix construction gets.
      partitions.push_back(
          {"locality", graph::NodePartition::BuildLocality(
                           config.num_nodes, shards, wiki.events)});
    }
    for (const PartitionChoice& part : partitions) {
    for (const serve::TransportKind plane : planes) {
      // The A/B pair (metrics off vs on) is measured over kRepeats
      // interleaved pairs: a single replay is ~tens of milliseconds, so
      // scheduler noise and allocator warm-up would otherwise dwarf the
      // observability delta being priced. The reported overhead is the
      // MEDIAN of the per-pair deltas — twins of a pair run back to back,
      // so slow machine drift cancels within each pair, and the median
      // sheds the pairs a background task landed on. Throughput rows
      // report each twin's best repeat.
      constexpr int kRepeats = 7;
      constexpr int kLoops = 3;  ///< stream passes per timed replay
      double noobs_eps = 0.0;
      std::vector<double> pair_overhead_pct;
      RunResult best_r;
      std::string tname;
      StageBreakdown best_stages;
      TransportBreakdown best_transport;
      for (int rep = 0; rep < kRepeats; ++rep) {
        double a_eps = 0.0;
        {
          // Twin A: counters only — the no-observability reference.
          core::ApanModel model(config, &wiki.features, /*seed=*/2021);
          serve::ShardedEngine::Options options;
          options.num_shards = shards;
          options.partition = part.index;
          options.transport = serve::MakeTransportFactory(plane);
          options.stage_metrics = false;
          serve::ShardedEngine engine(&model, options);
          a_eps = Replay(engine, wiki, batch, kLoops).events_per_sec;
          if (a_eps > noobs_eps) noobs_eps = a_eps;
        }

        // Twin B: the full substrate on — the shipped configuration.
        core::ApanModel model(config, &wiki.features, /*seed=*/2021);
        serve::ShardedEngine::Options options;
        options.num_shards = shards;
        options.partition = part.index;
        options.transport = serve::MakeTransportFactory(plane);
        options.stage_metrics = true;
        serve::ShardedEngine engine(&model, options);
        RunResult r = Replay(engine, wiki, batch, kLoops);
        const auto stats = engine.stats();
        r.cross_shard_pct =
            stats.mails_routed > 0
                ? 100.0 * static_cast<double>(stats.mails_cross_shard) /
                      static_cast<double>(stats.mails_routed)
                : 0.0;
        tname = engine.transport_name();
        if (a_eps > 0.0) {
          pair_overhead_pct.push_back(100.0 * (a_eps - r.events_per_sec) /
                                      a_eps);
        }
        if (r.events_per_sec > best_r.events_per_sec) best_r = r;
        // Breakdowns come from the repeat with the highest stage
        // coverage — the run least perturbed by the machine (time a
        // descheduled-but-runnable worker spends is unattributable).
        const obs::Registry::Snapshot snap = engine.registry()->Scrape();
        StageBreakdown stages =
            CollectStages(snap, shards, tname, part.name, r);
        if (stages.coverage_pct > best_stages.coverage_pct) {
          best_stages = std::move(stages);
          best_transport = CollectTransport(snap, shards, tname, part.name);
        }
        if (rep == 0 && plane == serve::TransportKind::kInProcess) {
          // One memory row per (shards, partition) configuration — the
          // state split depends on WHERE nodes live, so each partitioner
          // gets its own measurement, never a reused one.
          MemoryRow row;
          row.shards = shards;
          row.partition = part.name;
          row.slice_bytes = engine.sharded_graph().MemoryBytes();
          row.state_bytes_min_shard =
              std::numeric_limits<int64_t>::max();
          for (int s = 0; s < shards; ++s) {
            const int64_t b = engine.state_store(s).MemoryBytes();
            row.state_bytes += b;
            row.state_bytes_max_shard =
                std::max(row.state_bytes_max_shard, b);
            row.state_bytes_min_shard =
                std::min(row.state_bytes_min_shard, b);
          }
          memory_rows.push_back(row);
        }
      }
      const RunResult r = best_r;
      stage_breakdowns.push_back(best_stages);
      transport_breakdowns.push_back(best_transport);

      char label[32];
      std::snprintf(label, sizeof(label), "Sharded x%d", shards);
      std::printf(
          "%-18s | %9s | %9s | %12.0f | %12.0f | %12.3f | %12.3f | "
          "%11.1f%%\n",
          label, tname.c_str(), part.name, r.events_per_sec, noobs_eps,
          r.sync_p50_ms, r.sync_p99_ms, r.cross_shard_pct);
      std::fflush(stdout);
      JsonRow row{"ShardedEngine", tname,      part.name, shards,
                  r,               noobs_eps, 0.0,       true};
      if (!pair_overhead_pct.empty()) {
        std::sort(pair_overhead_pct.begin(), pair_overhead_pct.end());
        row.obs_overhead_pct =
            pair_overhead_pct[pair_overhead_pct.size() / 2];
      }
      json_rows.push_back(row);
    }
    }
  }
  bench::PrintRule(118);
  std::printf(
      "baseline = single-worker AsyncPipeline (%.0f ev/s). Speedup needs\n"
      "hardware parallelism: on a 1-core box expect parity, not scaling.\n"
      "ev/s no-obs = the same config with stage metrics off; the delta is\n"
      "the observability tax (<2%% contract, docs/observability.md).\n"
      "sync p50/p99: the AsyncPipeline row encodes against one shared\n"
      "state table; sharded rows encode against per-shard NodeStateStores\n"
      "(no shared z vector, no cross-shard cache-line contention on the\n"
      "synchronous link), so the gap between the rows is the false-sharing\n"
      "tax of the monolithic state plane.\n"
      "partition: hash = the stateless ownership hash; locality = greedy\n"
      "co-location (NodePartition::BuildLocality) over the replayed stream\n"
      "— compare adjacent rows for what co-location buys in cross-shard\n"
      "mail and per-peer transport load.\n",
      baseline_eps);
  if (planes.size() > 1) {
    std::printf(
        "uds rows route every shard-to-shard message through a socketpair\n"
        "lane as length-prefixed wire frames; the gap vs the inproc row is\n"
        "the serialization + syscall tax of leaving shared memory.\n");
  }

  // ---- Attributed stage breakdown (the "where do the worker-seconds
  // go" table the negative scaling question needs) ------------------------
  std::printf(
      "\nper-shard worker time by stage, %% of shards x wall (inproc, "
      "metrics on;\ncolumn xN = N shards under the hash partition, xN/loc "
      "under locality):\n");
  size_t stage_columns = 0;
  std::printf("%-15s", "stage");
  for (const StageBreakdown& b : stage_breakdowns) {
    if (b.transport != "inproc") continue;
    char col[16];
    std::snprintf(col, sizeof(col), "x%d%s", b.shards,
                  b.partition == "locality" ? "/loc" : "");
    std::printf(" | %7s", col);
    ++stage_columns;
  }
  std::printf("\n");
  bench::PrintRule(15 + 10 * stage_columns);
  for (size_t s = 0; s < std::size(kWorkerStages); ++s) {
    std::printf("%-15s", kWorkerStages[s]);
    for (const StageBreakdown& b : stage_breakdowns) {
      if (b.transport != "inproc") continue;
      std::printf(" | %6.1f%%", b.rows[s].pct_wall);
    }
    std::printf("\n");
  }
  std::printf("%-15s", "coverage");
  for (const StageBreakdown& b : stage_breakdowns) {
    if (b.transport != "inproc") continue;
    std::printf(" | %6.1f%%", b.coverage_pct);
  }
  std::printf(
      "\ncoverage = how much of the workers' wall time the disjoint "
      "stages account\nfor (the rest is queue bookkeeping and message "
      "plumbing between stages).\n");

  for (const TransportBreakdown& t : transport_breakdowns) {
    if (t.frames == 0) continue;
    std::printf(
        "transport x%d %s/%s: %lld frames (%lld cross-shard), %lld bytes, "
        "%lld write syscalls\n",
        t.shards, t.transport.c_str(), t.partition.c_str(),
        (long long)t.frames, (long long)t.cross_shard_frames,
        (long long)t.bytes, (long long)t.syscalls);
  }

  // Both partitioned planes store their payload exactly once: graph
  // slices hold each adjacency occurrence once (plus a per-entry ordinal
  // for versioned reads), and per-shard NodeStateStores hold each node's
  // mailbox + z(t−) rows once (plus the dense local index) — so both
  // sums stay ~1x monolithic at every shard count.
  std::printf(
      "\nper-shard memory (inproc rows), summed across shards; max/min = "
      "largest\nand smallest single shard's state slice (the partitioner's "
      "balance):\n"
      "  monolithic: graph %lld bytes | state (mailbox + z rows) %lld "
      "bytes\n",
      (long long)mono_graph_bytes, (long long)mono_state_bytes);
  for (const MemoryRow& row : memory_rows) {
    std::printf(
        "  x%d %-8s: graph %lld bytes (%.2fx) | state %lld bytes "
        "(%.2fx, max/min %lld/%lld)\n",
        row.shards, row.partition.c_str(), (long long)row.slice_bytes,
        mono_graph_bytes > 0 ? static_cast<double>(row.slice_bytes) /
                                   static_cast<double>(mono_graph_bytes)
                             : 0.0,
        (long long)row.state_bytes,
        mono_state_bytes > 0 ? static_cast<double>(row.state_bytes) /
                                   static_cast<double>(mono_state_bytes)
                             : 0.0,
        (long long)row.state_bytes_max_shard,
        (long long)row.state_bytes_min_shard);
  }

  // ---- Recovery plane: checkpoint write + rejoin cost --------------------
  // One crash/recovery cycle per transport plane at 4 shards: engine A
  // serves the first half of the stream and is checkpointed at a flushed
  // boundary; a fresh engine B restores every shard and replays the
  // second half. snapshot_write_ms prices the checkpoint (all four
  // shards, crash-atomic files); restore_replay_ms is the full rejoin —
  // decode + validate + adopt state, then replay from the snapshot's
  // batch watermark to the stream head. events_shed must be 0 here (no
  // shard is ever down in this cycle); bench_check enforces that, so a
  // regression that silently sheds traffic during rejoin fails CI.
  struct RecoveryRow {
    std::string transport;
    int shards = 0;
    double snapshot_write_ms = 0.0;
    int64_t snapshot_bytes = 0;
    double restore_replay_ms = 0.0;
    int64_t events_replayed = 0;
    int64_t events_shed = 0;
  };
  std::vector<RecoveryRow> recovery_rows;
  {
    const int shards = 4;
    const size_t total_batches = wiki.events.size() / batch;
    const size_t cut = (total_batches / 2) * batch;
    const std::string snap_dir =
        std::filesystem::temp_directory_path().string();
    for (const serve::TransportKind plane : planes) {
      RecoveryRow row;
      row.shards = shards;
      std::vector<std::string> paths;
      for (int s = 0; s < shards; ++s) {
        paths.push_back(snap_dir + "/fig10_recovery_" + std::to_string(s) +
                        ".apsn");
      }
      {
        core::ApanModel model(config, &wiki.features, /*seed=*/2021);
        serve::ShardedEngine::Options options;
        options.num_shards = shards;
        options.transport = serve::MakeTransportFactory(plane);
        serve::ShardedEngine engine(&model, options);
        row.transport = engine.transport_name();
        for (size_t lo = 0; lo + batch <= cut; lo += batch) {
          std::vector<graph::Event> events(
              wiki.events.begin() + lo, wiki.events.begin() + lo + batch);
          auto result = engine.InferBatch(events);
          APAN_CHECK_MSG(result.ok(), result.status().ToString());
        }
        engine.Flush();
        Stopwatch snap_watch;
        for (int s = 0; s < shards; ++s) {
          const Status st = engine.SnapshotShard(s, paths[s]);
          APAN_CHECK_MSG(st.ok(), st.ToString());
        }
        row.snapshot_write_ms = snap_watch.ElapsedMillis();
        for (const std::string& path : paths) {
          std::error_code ec;
          const auto bytes = std::filesystem::file_size(path, ec);
          if (!ec) row.snapshot_bytes += static_cast<int64_t>(bytes);
        }
        // Engine A dies here (scope exit); only the files survive.
      }
      {
        core::ApanModel model(config, &wiki.features, /*seed=*/2021);
        serve::ShardedEngine::Options options;
        options.num_shards = shards;
        options.transport = serve::MakeTransportFactory(plane);
        serve::ShardedEngine engine(&model, options);
        Stopwatch rejoin_watch;
        for (int s = 0; s < shards; ++s) {
          const Status st = engine.RestoreShard(s, paths[s]);
          APAN_CHECK_MSG(st.ok(), st.ToString());
        }
        for (size_t lo = cut; lo + batch <= wiki.events.size(); lo += batch) {
          std::vector<graph::Event> events(
              wiki.events.begin() + lo, wiki.events.begin() + lo + batch);
          auto result = engine.InferBatch(events);
          APAN_CHECK_MSG(result.ok(), result.status().ToString());
          row.events_replayed += static_cast<int64_t>(events.size());
        }
        engine.Flush();
        row.restore_replay_ms = rejoin_watch.ElapsedMillis();
        row.events_shed = engine.stats().events_shed;
      }
      for (const std::string& path : paths) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
      }
      recovery_rows.push_back(row);
    }
  }
  std::printf(
      "\nrecovery (x4, crash at mid-stream): checkpoint all shards, then a\n"
      "fresh engine restores and replays the tail to the stream head:\n");
  for (const RecoveryRow& row : recovery_rows) {
    std::printf(
        "  %-7s: snapshot %7.2f ms (%lld bytes) | restore+replay %7.2f ms "
        "(%lld events, %lld shed)\n",
        row.transport.c_str(), row.snapshot_write_ms,
        (long long)row.snapshot_bytes, row.restore_replay_ms,
        (long long)row.events_replayed, (long long)row.events_shed);
  }

  // ---- Optional traced replay (--trace=<path>) ---------------------------
  if (!trace_path.empty()) {
    if (!obs::TraceRecorder::kCompiledIn) {
      std::fprintf(stderr,
                   "--trace: tracing compiled out (APAN_TRACING=OFF); "
                   "skipping %s\n",
                   trace_path.c_str());
    } else {
      const int shards = 8;
      core::ApanModel model(config, &wiki.features, /*seed=*/2021);
      serve::ShardedEngine::Options options;
      options.num_shards = shards;
      options.transport = serve::MakeTransportFactory(planes.back());
      serve::ShardedEngine engine(&model, options);
      obs::TraceRecorder::Global().Clear();
      obs::TraceRecorder::Global().Enable();
      Replay(engine, wiki, batch);
      obs::TraceRecorder::Global().Disable();
      const Status st = obs::TraceRecorder::Global().WriteChromeTrace(
          trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "--trace: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf(
          "\ntraced replay (x%d, %s) written to %s — open at "
          "https://ui.perfetto.dev\n",
          shards, engine.transport_name(), trace_path.c_str());
      if (obs::TraceRecorder::Global().dropped() > 0) {
        std::printf("  (ring wrapped: %llu oldest spans dropped)\n",
                    (unsigned long long)obs::TraceRecorder::Global().dropped());
      }
    }
  }

  // Machine-readable mirror of the tables above (schema:
  // docs/performance.md) so the throughput/latency/memory trajectory is
  // diffable across PRs.
  bench::JsonWriter json(bench::JsonOutPath("BENCH_fig10.json"));
  json.BeginObject();
  json.Field("figure", std::string("fig10_sharded_throughput"));
  json.Field("dataset", std::string("wikipedia-like"));
  json.Field("batch_size", static_cast<int64_t>(batch));
  json.Field("events", static_cast<int64_t>(wiki.events.size()));
  json.BeginArray("rows");
  for (const JsonRow& row : json_rows) {
    json.BeginObject();
    json.Field("engine", row.engine);
    json.Field("transport", row.transport);
    json.Field("partition", row.partition);
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("events_per_sec", row.r.events_per_sec);
    if (row.has_noobs) {
      json.Field("events_per_sec_noobs", row.events_per_sec_noobs);
      json.Field("obs_overhead_pct", row.obs_overhead_pct);
    }
    json.Field("sync_p50_ms", row.r.sync_p50_ms);
    json.Field("sync_p99_ms", row.r.sync_p99_ms);
    json.Field("cross_shard_pct", row.r.cross_shard_pct);
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("stages");
  for (const StageBreakdown& b : stage_breakdowns) {
    json.BeginObject();
    json.Field("shards", static_cast<int64_t>(b.shards));
    json.Field("transport", b.transport);
    json.Field("partition", b.partition);
    json.Field("wall_ms", b.wall_ms);
    json.Field("batches", b.batches);
    json.Field("coverage_pct", b.coverage_pct);
    json.BeginArray("breakdown");
    for (const StageRow& sr : b.rows) {
      json.BeginObject();
      json.Field("stage", std::string(sr.stage));
      json.Field("total_ms", sr.total_ms);
      json.Field("ms_per_batch", sr.ms_per_batch);
      json.Field("pct_wall", sr.pct_wall);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("transport");
  for (const TransportBreakdown& t : transport_breakdowns) {
    json.BeginObject();
    json.Field("shards", static_cast<int64_t>(t.shards));
    json.Field("transport", t.transport);
    json.Field("partition", t.partition);
    json.Field("frames", t.frames);
    json.Field("cross_shard_frames", t.cross_shard_frames);
    json.Field("bytes", t.bytes);
    json.Field("syscalls", t.syscalls);
    json.BeginArray("lanes");
    for (const LaneRow& lane : t.lanes) {
      json.BeginObject();
      json.Field("from", static_cast<int64_t>(lane.from));
      json.Field("to", static_cast<int64_t>(lane.to));
      json.Field("frames", lane.frames);
      json.Field("bytes", lane.bytes);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("memory");
  for (const MemoryRow& row : memory_rows) {
    json.BeginObject();
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("partition", row.partition);
    json.Field("graph_bytes", row.slice_bytes);
    json.Field("graph_ratio_vs_monolithic",
               mono_graph_bytes > 0
                   ? static_cast<double>(row.slice_bytes) /
                         static_cast<double>(mono_graph_bytes)
                   : 0.0);
    json.Field("state_bytes", row.state_bytes);
    json.Field("state_ratio_vs_monolithic",
               mono_state_bytes > 0
                   ? static_cast<double>(row.state_bytes) /
                         static_cast<double>(mono_state_bytes)
                   : 0.0);
    json.Field("state_bytes_max_shard", row.state_bytes_max_shard);
    json.Field("state_bytes_min_shard", row.state_bytes_min_shard);
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("recovery");
  for (const RecoveryRow& row : recovery_rows) {
    json.BeginObject();
    json.Field("transport", row.transport);
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("snapshot_write_ms", row.snapshot_write_ms);
    json.Field("snapshot_bytes", row.snapshot_bytes);
    json.Field("restore_replay_ms", row.restore_replay_ms);
    json.Field("events_replayed", row.events_replayed);
    json.Field("events_shed", row.events_shed);
    json.EndObject();
  }
  json.EndArray();
  json.Field("monolithic_graph_bytes", mono_graph_bytes);
  json.Field("monolithic_state_bytes", mono_state_bytes);
  json.Field("baseline_events_per_sec", baseline_eps);
  json.EndObject();
  return 0;
}
