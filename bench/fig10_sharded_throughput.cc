// Sharded serving throughput: end-to-end events/sec versus shard count.
//
// The stream is replayed through serve::ShardedEngine at 1, 2, 4, and 8
// shards (plus the single-worker AsyncPipeline as the unsharded
// baseline). Throughput counts the complete pipeline — synchronous
// scoring, cross-shard mail routing, and full propagation (timing stops
// after Flush) — so it measures the asynchronous link's scaling, which is
// the bottleneck the shard partition parallelizes. The cross-shard column
// reports what fraction of mail left its home shard: the out-of-order
// delivery the paper's §3.6 mailbox tolerates by construction.
//
// Alongside throughput the table reports sync-link p50/p99 (AsyncPipeline
// encodes against one shared state table, sharded rows against per-shard
// NodeStateStores — the gap is the monolithic plane's false-sharing tax)
// and, per shard count, the summed per-shard memory of BOTH partitioned
// planes: graph slices and state stores (mailbox + z rows), each ~1x the
// monolithic layout.
//
// --transport selects the shard-to-shard messaging plane:
//   inproc  synchronous in-process delivery (default; the PR 2 numbers)
//   uds     Unix-domain-socket lane per shard pair, serve/wire.h framing
// With uds the bench prints BOTH planes per shard count, so the
// serialization + syscall tax of leaving shared memory reads directly
// off adjacent rows.
//
//   ./build/bench/fig10_sharded_throughput
//   ./build/bench/fig10_sharded_throughput --transport=uds
//   APAN_BENCH_SCALE=4 ./build/bench/fig10_sharded_throughput

#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve/transport.h"

namespace {

struct RunResult {
  double events_per_sec = 0.0;
  double sync_p50_ms = 0.0;
  double sync_p99_ms = 0.0;
  double cross_shard_pct = 0.0;
};

/// One table row, retained for BENCH_fig10.json.
struct JsonRow {
  std::string engine;
  std::string transport;
  int shards = 0;
  RunResult r;
};

template <typename Engine>
RunResult Replay(Engine& engine, const apan::data::Dataset& dataset,
                 size_t batch) {
  using namespace apan;
  Stopwatch watch;
  size_t served = 0;
  for (size_t lo = 0; lo + batch <= dataset.events.size(); lo += batch) {
    std::vector<graph::Event> events(dataset.events.begin() + lo,
                                     dataset.events.begin() + lo + batch);
    auto result = engine.InferBatch(events);
    APAN_CHECK_MSG(result.ok(), result.status().ToString());
    served += result->scores.size();
  }
  engine.Flush();
  RunResult out;
  out.events_per_sec =
      static_cast<double>(served) / watch.ElapsedSeconds();
  out.sync_p50_ms = engine.sync_latency().P50();
  out.sync_p99_ms = engine.sync_latency().P99();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apan;

  serve::TransportKind requested = serve::TransportKind::kInProcess;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      auto kind = serve::ParseTransportKind(arg.substr(strlen("--transport=")));
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      requested = *kind;
    } else {
      std::fprintf(stderr, "usage: %s [--transport=inproc|uds]\n", argv[0]);
      return 1;
    }
  }
  if (requested == serve::TransportKind::kUnixSocket &&
      !serve::UnixSocketTransport::Available()) {
    std::fprintf(stderr, "--transport=uds: AF_UNIX unavailable here\n");
    return 1;
  }
  std::vector<serve::TransportKind> planes = {
      serve::TransportKind::kInProcess};
  if (requested == serve::TransportKind::kUnixSocket) {
    planes.push_back(serve::TransportKind::kUnixSocket);
  }

  std::printf(
      "== Sharded serving throughput: events/sec vs shard count, "
      "wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  core::ApanConfig config;
  config.num_nodes = wiki.num_nodes;
  config.embedding_dim = wiki.feature_dim();
  config.propagation_hops = 1;
  config.dropout = 0.0f;
  const size_t batch = 200;  // paper's serving batch

  std::printf("%zu events, %lld nodes, batches of %zu\n\n",
              wiki.events.size(), (long long)wiki.num_nodes, batch);
  std::printf("%-18s | %9s | %12s | %12s | %12s | %12s\n", "Engine",
              "transport", "events/s", "sync p50 ms", "sync p99 ms",
              "cross-shard");
  bench::PrintRule(91);

  double baseline_eps = 0.0;
  int64_t mono_graph_bytes = 0;
  int64_t mono_state_bytes = 0;
  std::vector<JsonRow> json_rows;
  {
    core::ApanModel model(config, &wiki.features, /*seed=*/2021);
    serve::AsyncPipeline pipeline(&model, {});
    const RunResult r = Replay(pipeline, wiki, batch);
    baseline_eps = r.events_per_sec;
    mono_graph_bytes = model.graph().MemoryBytes();
    mono_state_bytes = model.state_store().MemoryBytes();
    std::printf("%-18s | %9s | %12.0f | %12.3f | %12.3f | %12s\n",
                "AsyncPipeline", "-", r.events_per_sec, r.sync_p50_ms,
                r.sync_p99_ms, "-");
    std::fflush(stdout);
    json_rows.push_back({"AsyncPipeline", "-", 0, r});
  }

  struct MemoryRow {
    int shards = 0;
    int64_t slice_bytes = 0;
    int64_t state_bytes = 0;
  };
  std::vector<MemoryRow> memory_rows;
  for (const int shards : {1, 2, 4, 8}) {
    for (const serve::TransportKind plane : planes) {
      core::ApanModel model(config, &wiki.features, /*seed=*/2021);
      serve::ShardedEngine::Options options;
      options.num_shards = shards;
      options.transport = serve::MakeTransportFactory(plane);
      serve::ShardedEngine engine(&model, options);
      RunResult r = Replay(engine, wiki, batch);
      const auto stats = engine.stats();
      r.cross_shard_pct =
          stats.mails_routed > 0
              ? 100.0 * static_cast<double>(stats.mails_cross_shard) /
                    static_cast<double>(stats.mails_routed)
              : 0.0;
      if (plane == serve::TransportKind::kInProcess) {
        MemoryRow row;
        row.shards = shards;
        row.slice_bytes = engine.sharded_graph().MemoryBytes();
        for (int s = 0; s < shards; ++s) {
          row.state_bytes += engine.state_store(s).MemoryBytes();
        }
        memory_rows.push_back(row);
      }
      char label[32];
      std::snprintf(label, sizeof(label), "Sharded x%d", shards);
      std::printf("%-18s | %9s | %12.0f | %12.3f | %12.3f | %11.1f%%\n",
                  label, engine.transport_name(), r.events_per_sec,
                  r.sync_p50_ms, r.sync_p99_ms, r.cross_shard_pct);
      std::fflush(stdout);
      json_rows.push_back(
          {"ShardedEngine", engine.transport_name(), shards, r});
    }
  }
  bench::PrintRule(91);
  std::printf(
      "baseline = single-worker AsyncPipeline (%.0f ev/s). Speedup needs\n"
      "hardware parallelism: on a 1-core box expect parity, not scaling.\n"
      "sync p50/p99: the AsyncPipeline row encodes against one shared\n"
      "state table; sharded rows encode against per-shard NodeStateStores\n"
      "(no shared z vector, no cross-shard cache-line contention on the\n"
      "synchronous link), so the gap between the rows is the false-sharing\n"
      "tax of the monolithic state plane.\n",
      baseline_eps);
  if (planes.size() > 1) {
    std::printf(
        "uds rows route every shard-to-shard message through a socketpair\n"
        "lane as length-prefixed wire frames; the gap vs the inproc row is\n"
        "the serialization + syscall tax of leaving shared memory.\n");
  }

  // Both partitioned planes store their payload exactly once: graph
  // slices hold each adjacency occurrence once (plus a per-entry ordinal
  // for versioned reads), and per-shard NodeStateStores hold each node's
  // mailbox + z(t−) rows once (plus the dense local index) — so both
  // sums stay ~1x monolithic at every shard count.
  std::printf(
      "\nper-shard memory (inproc rows), summed across shards:\n"
      "  monolithic: graph %lld bytes | state (mailbox + z rows) %lld "
      "bytes\n",
      (long long)mono_graph_bytes, (long long)mono_state_bytes);
  for (const MemoryRow& row : memory_rows) {
    std::printf(
        "  x%d shards: graph %lld bytes (%.2fx) | state %lld bytes "
        "(%.2fx)\n",
        row.shards, (long long)row.slice_bytes,
        mono_graph_bytes > 0 ? static_cast<double>(row.slice_bytes) /
                                   static_cast<double>(mono_graph_bytes)
                             : 0.0,
        (long long)row.state_bytes,
        mono_state_bytes > 0 ? static_cast<double>(row.state_bytes) /
                                   static_cast<double>(mono_state_bytes)
                             : 0.0);
  }

  // Machine-readable mirror of the tables above (schema:
  // docs/performance.md) so the throughput/latency/memory trajectory is
  // diffable across PRs.
  bench::JsonWriter json(bench::JsonOutPath("BENCH_fig10.json"));
  json.BeginObject();
  json.Field("figure", std::string("fig10_sharded_throughput"));
  json.Field("dataset", std::string("wikipedia-like"));
  json.Field("batch_size", static_cast<int64_t>(batch));
  json.Field("events", static_cast<int64_t>(wiki.events.size()));
  json.BeginArray("rows");
  for (const JsonRow& row : json_rows) {
    json.BeginObject();
    json.Field("engine", row.engine);
    json.Field("transport", row.transport);
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("events_per_sec", row.r.events_per_sec);
    json.Field("sync_p50_ms", row.r.sync_p50_ms);
    json.Field("sync_p99_ms", row.r.sync_p99_ms);
    json.Field("cross_shard_pct", row.r.cross_shard_pct);
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("memory");
  for (const MemoryRow& row : memory_rows) {
    json.BeginObject();
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("graph_bytes", row.slice_bytes);
    json.Field("graph_ratio_vs_monolithic",
               mono_graph_bytes > 0
                   ? static_cast<double>(row.slice_bytes) /
                         static_cast<double>(mono_graph_bytes)
                   : 0.0);
    json.Field("state_bytes", row.state_bytes);
    json.Field("state_ratio_vs_monolithic",
               mono_state_bytes > 0
                   ? static_cast<double>(row.state_bytes) /
                         static_cast<double>(mono_state_bytes)
                   : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.Field("monolithic_graph_bytes", mono_graph_bytes);
  json.Field("monolithic_state_bytes", mono_state_bytes);
  json.Field("baseline_events_per_sec", baseline_eps);
  json.EndObject();
  return 0;
}
