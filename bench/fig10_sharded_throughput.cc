// Sharded serving throughput: end-to-end events/sec versus shard count.
//
// The stream is replayed through serve::ShardedEngine at 1, 2, 4, and 8
// shards (plus the single-worker AsyncPipeline as the unsharded
// baseline). Throughput counts the complete pipeline — synchronous
// scoring, cross-shard mail routing, and full propagation (timing stops
// after Flush) — so it measures the asynchronous link's scaling, which is
// the bottleneck the shard partition parallelizes. The cross-shard column
// reports what fraction of mail left its home shard: the out-of-order
// delivery the paper's §3.6 mailbox tolerates by construction.
//
// --transport selects the shard-to-shard messaging plane:
//   inproc  synchronous in-process delivery (default; the PR 2 numbers)
//   uds     Unix-domain-socket lane per shard pair, serve/wire.h framing
// With uds the bench prints BOTH planes per shard count, so the
// serialization + syscall tax of leaving shared memory reads directly
// off adjacent rows.
//
//   ./build/bench/fig10_sharded_throughput
//   ./build/bench/fig10_sharded_throughput --transport=uds
//   APAN_BENCH_SCALE=4 ./build/bench/fig10_sharded_throughput

#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "serve/async_pipeline.h"
#include "serve/sharded_engine.h"
#include "serve/transport.h"

namespace {

struct RunResult {
  double events_per_sec = 0.0;
  double sync_p50_ms = 0.0;
  double cross_shard_pct = 0.0;
};

template <typename Engine>
RunResult Replay(Engine& engine, const apan::data::Dataset& dataset,
                 size_t batch) {
  using namespace apan;
  Stopwatch watch;
  size_t served = 0;
  for (size_t lo = 0; lo + batch <= dataset.events.size(); lo += batch) {
    std::vector<graph::Event> events(dataset.events.begin() + lo,
                                     dataset.events.begin() + lo + batch);
    auto result = engine.InferBatch(events);
    APAN_CHECK_MSG(result.ok(), result.status().ToString());
    served += result->scores.size();
  }
  engine.Flush();
  RunResult out;
  out.events_per_sec =
      static_cast<double>(served) / watch.ElapsedSeconds();
  out.sync_p50_ms = engine.sync_latency().P50();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apan;

  serve::TransportKind requested = serve::TransportKind::kInProcess;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      auto kind = serve::ParseTransportKind(arg.substr(strlen("--transport=")));
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      requested = *kind;
    } else {
      std::fprintf(stderr, "usage: %s [--transport=inproc|uds]\n", argv[0]);
      return 1;
    }
  }
  if (requested == serve::TransportKind::kUnixSocket &&
      !serve::UnixSocketTransport::Available()) {
    std::fprintf(stderr, "--transport=uds: AF_UNIX unavailable here\n");
    return 1;
  }
  std::vector<serve::TransportKind> planes = {
      serve::TransportKind::kInProcess};
  if (requested == serve::TransportKind::kUnixSocket) {
    planes.push_back(serve::TransportKind::kUnixSocket);
  }

  std::printf(
      "== Sharded serving throughput: events/sec vs shard count, "
      "wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  core::ApanConfig config;
  config.num_nodes = wiki.num_nodes;
  config.embedding_dim = wiki.feature_dim();
  config.propagation_hops = 1;
  config.dropout = 0.0f;
  const size_t batch = 200;  // paper's serving batch

  std::printf("%zu events, %lld nodes, batches of %zu\n\n",
              wiki.events.size(), (long long)wiki.num_nodes, batch);
  std::printf("%-18s | %9s | %12s | %12s | %12s\n", "Engine", "transport",
              "events/s", "sync p50 ms", "cross-shard");
  bench::PrintRule(76);

  double baseline_eps = 0.0;
  int64_t mono_graph_bytes = 0;
  {
    core::ApanModel model(config, &wiki.features, /*seed=*/2021);
    serve::AsyncPipeline pipeline(&model, {});
    const RunResult r = Replay(pipeline, wiki, batch);
    baseline_eps = r.events_per_sec;
    mono_graph_bytes = model.graph().MemoryBytes();
    std::printf("%-18s | %9s | %12.0f | %12.3f | %12s\n", "AsyncPipeline", "-",
                r.events_per_sec, r.sync_p50_ms, "-");
    std::fflush(stdout);
  }

  std::vector<std::pair<int, int64_t>> slice_bytes;
  for (const int shards : {1, 2, 4, 8}) {
    for (const serve::TransportKind plane : planes) {
      core::ApanModel model(config, &wiki.features, /*seed=*/2021);
      serve::ShardedEngine::Options options;
      options.num_shards = shards;
      options.transport = serve::MakeTransportFactory(plane);
      serve::ShardedEngine engine(&model, options);
      RunResult r = Replay(engine, wiki, batch);
      const auto stats = engine.stats();
      r.cross_shard_pct =
          stats.mails_routed > 0
              ? 100.0 * static_cast<double>(stats.mails_cross_shard) /
                    static_cast<double>(stats.mails_routed)
              : 0.0;
      if (plane == serve::TransportKind::kInProcess) {
        slice_bytes.emplace_back(shards,
                                 engine.sharded_graph().MemoryBytes());
      }
      char label[32];
      std::snprintf(label, sizeof(label), "Sharded x%d", shards);
      std::printf("%-18s | %9s | %12.0f | %12.3f | %11.1f%%\n", label,
                  engine.transport_name(), r.events_per_sec, r.sync_p50_ms,
                  r.cross_shard_pct);
      std::fflush(stdout);
    }
  }
  bench::PrintRule(76);
  std::printf(
      "baseline = single-worker AsyncPipeline (%.0f ev/s). Speedup needs\n"
      "hardware parallelism: on a 1-core box expect parity, not scaling.\n",
      baseline_eps);
  if (planes.size() > 1) {
    std::printf(
        "uds rows route every shard-to-shard message through a socketpair\n"
        "lane as length-prefixed wire frames; the gap vs the inproc row is\n"
        "the serialization + syscall tax of leaving shared memory.\n");
  }

  // Shard-local graph slices store each adjacency occurrence exactly once
  // (plus a per-entry ordinal for versioned reads), so summed slice
  // memory stays ~1x the monolithic graph at every shard count.
  std::printf(
      "\ngraph memory: monolithic TemporalGraph = %lld bytes; summed "
      "slices:\n",
      (long long)mono_graph_bytes);
  for (const auto& [shards, bytes] : slice_bytes) {
    std::printf("  x%d shards: %lld bytes (%.2fx monolithic)\n", shards,
                (long long)bytes,
                mono_graph_bytes > 0
                    ? static_cast<double>(bytes) /
                          static_cast<double>(mono_graph_bytes)
                    : 0.0);
  }
  return 0;
}
