// Reproduces Figure 7: training time (seconds per epoch) versus average
// precision, Wikipedia-like dataset, link prediction.
//
// Shape to verify: in the *training* phase APAN is in the same band as
// TGN — propagation happens anyway during training, so the asynchronous
// trick buys nothing there; TGAT-2layers is the slowest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace apan;
  std::printf(
      "== Figure 7: training time (s/epoch) vs AP, wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(3);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);

  const std::vector<std::string> models = {
      "JODIE",        "DyRep",       "TGAT-1layer", "TGAT-2layers",
      "TGN-1layer",   "TGN-2layers", "APAN-1layer", "APAN-2layers"};

  std::printf("%-14s | %12s | %9s\n", "Model", "s/epoch", "AP (%)");
  bench::PrintRule(44);
  for (const auto& name : models) {
    auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
    auto report = trainer.Run(model.get(), wiki);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    std::printf("%-14s | %12.2f | %9.2f\n", name.c_str(),
                report->mean_train_seconds_per_epoch,
                100 * report->test.ap);
    std::fflush(stdout);
  }
  bench::PrintRule(44);
  return 0;
}
