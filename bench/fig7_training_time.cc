// Reproduces Figure 7: training time (seconds per epoch) versus average
// precision, Wikipedia-like dataset, link prediction.
//
// Shape to verify: TGAT-2layers is the slowest (temporal attention over
// two recursive hops), the recurrent baselines (JODIE, DyRep) are the
// cheapest, and APAN sits near the recurrent band — its per-event work
// is mailbox-local. The training fast path (FMA backward kernels + the
// graph-planned TrainingArena) is what holds APAN there; bench_check
// gates the APAN rows on AP and on zero arena plan misses.
//
// Emits BENCH_fig7.json (the training-speed trajectory bench_check
// validates across PRs): per model s/epoch, steps/s, test AP, and the
// TrainingArena counters that back the zero-alloc steady-state claim.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/kernels.h"

int main() {
  using namespace apan;
  std::printf(
      "== Figure 7: training time (s/epoch) vs AP, wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(3);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);

  const size_t train_batches =
      (wiki.train_end + cfg.batch_size - 1) / cfg.batch_size;

  const std::vector<std::string> models = {
      "JODIE",        "DyRep",       "TGAT-1layer", "TGAT-2layers",
      "TGN-1layer",   "TGN-2layers", "APAN-1layer", "APAN-2layers"};

  bench::JsonWriter json(bench::JsonOutPath("BENCH_fig7.json"));
  json.BeginObject();
  json.Field("figure", std::string("fig7_training_time"));
  json.Field("dataset", std::string("wikipedia-like"));
  json.Field("batch_size", static_cast<int64_t>(cfg.batch_size));
  json.Field("epochs", static_cast<int64_t>(cfg.max_epochs));
  json.Field("kernel_isa",
             std::string(tensor::kernels::IsaName(
                 tensor::kernels::ActiveIsa())));
  json.BeginArray("models");

  std::printf("%-14s | %12s | %9s | %9s\n", "Model", "s/epoch", "steps/s",
              "AP (%)");
  bench::PrintRule(56);
  for (const auto& name : models) {
    auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
    auto report = trainer.Run(model.get(), wiki);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    const double s_epoch = report->mean_train_seconds_per_epoch;
    const double steps_per_sec =
        s_epoch > 0 ? static_cast<double>(train_batches) / s_epoch : 0.0;
    std::printf("%-14s | %12.4f | %9.1f | %9.2f\n", name.c_str(), s_epoch,
                steps_per_sec, 100 * report->test.ap);
    std::fflush(stdout);
    json.BeginObject();
    json.Field("name", name);
    json.Field("seconds_per_epoch_mean", s_epoch);
    json.Field("steps_per_sec", steps_per_sec);
    json.Field("test_ap", report->test.ap);
    json.Field("epochs_run", static_cast<int64_t>(report->epochs_run));
    json.Field("arena_fresh_impls", report->arena_fresh_impls);
    json.Field("arena_reused_impls", report->arena_reused_impls);
    json.Field("arena_plan_misses", report->arena_plan_misses);
    json.Field("arena_pool_slots", report->arena_pool_slots);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  bench::PrintRule(56);
  return 0;
}
