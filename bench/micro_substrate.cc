// Micro-benchmarks of the substrates (google-benchmark): tensor ops, the
// encoder's attention pattern, temporal-graph queries, k-hop sampling,
// mailbox operations and the propagation queue. These are the primitive
// costs behind Figures 6-7.

#include <benchmark/benchmark.h>

#include "core/mailbox.h"
#include "core/propagator.h"
#include "graph/sampling.h"
#include "graph/temporal_graph.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "util/bounded_queue.h"

namespace apan {
namespace {

// ---- Tensor ops -------------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::NoGradGuard no_grad;
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedAttentionForward(benchmark::State& state) {
  // The exact shape of APAN's encoder attention: batch x 1 query over
  // m = 10 mailbox slots, d = 32, 2 heads.
  const int64_t batch = state.range(0);
  Rng rng(2);
  tensor::NoGradGuard no_grad;
  nn::MultiHeadAttention mha(32, 2, &rng);
  tensor::Tensor q = tensor::Tensor::Randn({batch, 32}, &rng);
  tensor::Tensor kv = tensor::Tensor::Randn({batch, 10, 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mha.Forward(q, kv, kv));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedAttentionForward)->Arg(64)->Arg(256)->Arg(1024);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  tensor::NoGradGuard no_grad;
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SoftmaxLastDim(x));
  }
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(1024)->Arg(8192);

// ---- Temporal graph ----------------------------------------------------------

graph::TemporalGraph MakeDenseGraph(int64_t nodes, int64_t events) {
  graph::TemporalGraph g(nodes);
  Rng rng(4);
  double t = 0.0;
  for (int64_t i = 0; i < events; ++i) {
    t += 0.01;
    APAN_CHECK(
        g.AddEvent({static_cast<graph::NodeId>(rng.Zipf(nodes, 1.1)),
                    static_cast<graph::NodeId>(rng.Zipf(nodes, 1.1)), t, -1})
            .ok());
  }
  return g;
}

void BM_MostRecentNeighbors(benchmark::State& state) {
  auto g = MakeDenseGraph(2000, 100000);
  Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(g.MostRecentNeighbors(v, 900.0, state.range(0)));
  }
}
BENCHMARK(BM_MostRecentNeighbors)->Arg(5)->Arg(10)->Arg(20);

void BM_KHopExpansion(benchmark::State& state) {
  // The asynchronous-link cost per interaction: 2-seed k-hop expansion.
  auto g = MakeDenseGraph(2000, 100000);
  Rng rng(6);
  const int32_t hops = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    const auto a = static_cast<graph::NodeId>(rng.UniformInt(2000));
    const auto b = static_cast<graph::NodeId>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(
        graph::KHopMostRecent(g, {a, b}, 900.0, hops, 10));
  }
}
BENCHMARK(BM_KHopExpansion)->Arg(1)->Arg(2);

// ---- Mailbox -----------------------------------------------------------------

void BM_MailboxDeliver(benchmark::State& state) {
  core::Mailbox box(10000, 10, 32);
  std::vector<float> mail(32, 0.5f);
  Rng rng(7);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    box.Deliver(static_cast<graph::NodeId>(rng.UniformInt(10000)), mail, t);
  }
}
BENCHMARK(BM_MailboxDeliver);

void BM_MailboxReadBatch(benchmark::State& state) {
  core::Mailbox box(10000, 10, 32);
  std::vector<float> mail(32, 0.5f);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    box.Deliver(static_cast<graph::NodeId>(rng.UniformInt(10000)), mail,
                i * 0.001);
  }
  std::vector<graph::NodeId> batch(state.range(0));
  for (auto& v : batch) {
    v = static_cast<graph::NodeId>(rng.UniformInt(10000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.ReadBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxReadBatch)->Arg(200)->Arg(1000);

// ---- Queue -------------------------------------------------------------------

void BM_BoundedQueueRoundTrip(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  for (auto _ : state) {
    APAN_CHECK(q.Push(1).ok());
    benchmark::DoNotOptimize(q.TryPop());
  }
}
BENCHMARK(BM_BoundedQueueRoundTrip);

}  // namespace
}  // namespace apan

BENCHMARK_MAIN();
