// Micro-benchmarks of the substrates (google-benchmark): tensor ops, the
// encoder's attention pattern, temporal-graph queries, k-hop sampling,
// mailbox operations and the propagation queue. These are the primitive
// costs behind Figures 6-7.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/encoder.h"
#include "core/mailbox.h"
#include "core/node_state_store.h"
#include "core/propagator.h"
#include "graph/sampling.h"
#include "graph/temporal_graph.h"
#include "nn/attention.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/bounded_queue.h"

namespace apan {
namespace {

namespace kernels = tensor::kernels;

// ---- Tensor ops -------------------------------------------------------------
// The *Reference variants run the naive serial loops (the pre-kernel
// substrate) against the same shapes — the before/after pair for every
// dispatched kernel.

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::NoGradGuard no_grad;
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.Normal());
  for (auto& v : b) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    kernels::reference::MatMul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulReference)->Arg(32)->Arg(64)->Arg(128);

void BM_Bmm(benchmark::State& state) {
  // The attention score shape before fusion: {b*h, 1, m} x {b*h, m, dh}.
  const int64_t bs = state.range(0);
  Rng rng(12);
  tensor::NoGradGuard no_grad;
  tensor::Tensor a = tensor::Tensor::Randn({bs, 1, 10}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({bs, 10, 16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Bmm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * bs);
}
BENCHMARK(BM_Bmm)->Arg(128)->Arg(512);

void BM_BatchedAttentionForward(benchmark::State& state) {
  // The exact shape of APAN's encoder attention: batch x 1 query over
  // m = 10 mailbox slots, d = 32, 2 heads. Runs the fused inference path
  // (NoGradGuard) with a per-iteration arena scope — the serve-time
  // configuration.
  const int64_t batch = state.range(0);
  Rng rng(2);
  tensor::NoGradGuard no_grad;
  nn::MultiHeadAttention mha(32, 2, &rng);
  tensor::Tensor q = tensor::Tensor::Randn({batch, 32}, &rng);
  tensor::Tensor kv = tensor::Tensor::Randn({batch, 10, 32}, &rng);
  for (auto _ : state) {
    tensor::ArenaScope arena;
    benchmark::DoNotOptimize(mha.Forward(q, kv, kv));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedAttentionForward)->Arg(64)->Arg(256)->Arg(1024);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  tensor::NoGradGuard no_grad;
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 10}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SoftmaxLastDim(x));
  }
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(1024)->Arg(8192);

void BM_SoftmaxReference(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  std::vector<float> x(static_cast<size_t>(rows * 10)), y(x.size());
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    kernels::reference::SoftmaxLastDim(x.data(), y.data(), rows, 10);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxReference)->Arg(1024)->Arg(8192);

void BM_MaskedSoftmax(benchmark::State& state) {
  // The fused mask+softmax over {b, h=2, m=10} scores with a {b, m}
  // additive mask — replaces mask expansion + Add + SoftmaxLastDim.
  const int64_t b = state.range(0);
  Rng rng(13);
  std::vector<float> scores(static_cast<size_t>(b * 2 * 10)),
      mask(static_cast<size_t>(b * 10), 0.0f), y(scores.size());
  for (auto& v : scores) v = static_cast<float>(rng.Normal());
  for (size_t i = 0; i < mask.size(); i += 3) {
    mask[i] = nn::MultiHeadAttention::kMaskedOut;
  }
  for (auto _ : state) {
    kernels::MaskedSoftmax(scores.data(), mask.data(), y.data(), b, 2, 10);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_MaskedSoftmax)->Arg(256)->Arg(1024);

void BM_RowNormalize(benchmark::State& state) {
  Rng rng(14);
  tensor::NoGradGuard no_grad;
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::RowNormalize(x));
  }
}
BENCHMARK(BM_RowNormalize)->Arg(1024)->Arg(8192);

void BM_RowNormalizeReference(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(14);
  std::vector<float> x(static_cast<size_t>(rows * 32)), y(x.size());
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    kernels::reference::RowNormalize(x.data(), y.data(), rows, 32, 1e-5f,
                                     nullptr);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_RowNormalizeReference)->Arg(1024)->Arg(8192);

void BM_AddBiasRelu(benchmark::State& state) {
  // The fused Linear epilogue at the MLP's hidden shape (80 wide).
  const int64_t rows = state.range(0);
  Rng rng(15);
  tensor::NoGradGuard no_grad;
  tensor::Tensor x = tensor::Tensor::Randn({rows, 80}, &rng);
  tensor::Tensor bias = tensor::Tensor::Randn({80}, &rng);
  for (auto _ : state) {
    tensor::ArenaScope arena;
    benchmark::DoNotOptimize(tensor::AddBiasRelu(x, bias));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AddBiasRelu)->Arg(256)->Arg(1024);

void BM_AddBiasReluReference(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(15);
  std::vector<float> x(static_cast<size_t>(rows * 80)), bias(80), y(x.size());
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  for (auto& v : bias) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    kernels::reference::AddBiasRelu(x.data(), bias.data(), y.data(), rows,
                                    80);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AddBiasReluReference)->Arg(256)->Arg(1024);

// ---- Training-side backward kernels ----------------------------------------
// Before/after pairs for the gradient primitives in kernels_backward.cc
// (the per-ISA FMA tier). The *Reference variants run the loop orders
// the ops.cc backward closures used before the kernel port (strided
// column walks with zero-skips). Shapes are the training hot path's:
// batch rows x the paper's 32-wide embedding / 80-wide MLP hidden.

std::vector<float> RandVec(size_t n, int seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void BM_MatMulGradA(benchmark::State& state) {
  const int64_t n = state.range(0), k = 32, m = 32;
  const auto g = RandVec(static_cast<size_t>(n * m), 21);
  const auto b = RandVec(static_cast<size_t>(k * m), 22);
  std::vector<float> da(static_cast<size_t>(n * k), 0.0f);
  for (auto _ : state) {
    kernels::MatMulGradA(g.data(), b.data(), da.data(), n, k, m);
    benchmark::DoNotOptimize(da.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_MatMulGradA)->Arg(200)->Arg(1000);

void BM_MatMulGradAReference(benchmark::State& state) {
  const int64_t n = state.range(0), k = 32, m = 32;
  const auto g = RandVec(static_cast<size_t>(n * m), 21);
  const auto b = RandVec(static_cast<size_t>(k * m), 22);
  std::vector<float> da(static_cast<size_t>(n * k), 0.0f);
  for (auto _ : state) {
    kernels::reference::MatMulGradA(g.data(), b.data(), da.data(), n, k, m);
    benchmark::DoNotOptimize(da.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_MatMulGradAReference)->Arg(200)->Arg(1000);

void BM_MatMulGradB(benchmark::State& state) {
  const int64_t n = state.range(0), k = 32, m = 32;
  const auto a = RandVec(static_cast<size_t>(n * k), 23);
  const auto g = RandVec(static_cast<size_t>(n * m), 24);
  std::vector<float> db(static_cast<size_t>(k * m), 0.0f);
  for (auto _ : state) {
    kernels::MatMulGradB(a.data(), g.data(), db.data(), n, k, m);
    benchmark::DoNotOptimize(db.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_MatMulGradB)->Arg(200)->Arg(1000);

void BM_MatMulGradBReference(benchmark::State& state) {
  const int64_t n = state.range(0), k = 32, m = 32;
  const auto a = RandVec(static_cast<size_t>(n * k), 23);
  const auto g = RandVec(static_cast<size_t>(n * m), 24);
  std::vector<float> db(static_cast<size_t>(k * m), 0.0f);
  for (auto _ : state) {
    kernels::reference::MatMulGradB(a.data(), g.data(), db.data(), n, k, m);
    benchmark::DoNotOptimize(db.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_MatMulGradBReference)->Arg(200)->Arg(1000);

void BM_MatMulTrain(benchmark::State& state) {
  // The recorded-forward GEMM (FMA tier); BM_MatMul above is the serve
  // (cross-ISA bitwise) twin at the same shapes.
  const int64_t n = state.range(0);
  const auto a = RandVec(static_cast<size_t>(n * n), 25);
  const auto b = RandVec(static_cast<size_t>(n * n), 26);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    kernels::MatMulTrain(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulTrain)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxBackward(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 10;
  const auto y = RandVec(static_cast<size_t>(rows * d), 27);
  const auto g = RandVec(static_cast<size_t>(rows * d), 28);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  for (auto _ : state) {
    kernels::SoftmaxBackward(y.data(), g.data(), dx.data(), rows, d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SoftmaxBackward)->Arg(400)->Arg(1024);

void BM_SoftmaxBackwardReference(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 10;
  const auto y = RandVec(static_cast<size_t>(rows * d), 27);
  const auto g = RandVec(static_cast<size_t>(rows * d), 28);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  for (auto _ : state) {
    kernels::reference::SoftmaxBackward(y.data(), g.data(), dx.data(), rows,
                                        d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SoftmaxBackwardReference)->Arg(400)->Arg(1024);

void BM_RowNormalizeBackward(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 32;
  const auto y = RandVec(static_cast<size_t>(rows * d), 29);
  const auto g = RandVec(static_cast<size_t>(rows * d), 30);
  auto inv_sigma = RandVec(static_cast<size_t>(rows), 31);
  for (auto& v : inv_sigma) v = 1.0f / (1.0f + v * v);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  for (auto _ : state) {
    kernels::RowNormalizeBackward(y.data(), g.data(), inv_sigma.data(),
                                  dx.data(), rows, d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RowNormalizeBackward)->Arg(200)->Arg(1024);

void BM_RowNormalizeBackwardReference(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 32;
  const auto y = RandVec(static_cast<size_t>(rows * d), 29);
  const auto g = RandVec(static_cast<size_t>(rows * d), 30);
  auto inv_sigma = RandVec(static_cast<size_t>(rows), 31);
  for (auto& v : inv_sigma) v = 1.0f / (1.0f + v * v);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  for (auto _ : state) {
    kernels::reference::RowNormalizeBackward(y.data(), g.data(),
                                             inv_sigma.data(), dx.data(),
                                             rows, d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RowNormalizeBackwardReference)->Arg(200)->Arg(1024);

void BM_AddBiasReluBackward(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 80;
  auto y = RandVec(static_cast<size_t>(rows * d), 32);
  for (auto& v : y) v = v > 0.0f ? v : 0.0f;  // a real ReLU output
  const auto g = RandVec(static_cast<size_t>(rows * d), 33);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  std::vector<float> dbias(static_cast<size_t>(d), 0.0f);
  for (auto _ : state) {
    kernels::AddBiasReluBackward(y.data(), g.data(), dx.data(), dbias.data(),
                                 rows, d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AddBiasReluBackward)->Arg(200)->Arg(1024);

void BM_AddBiasReluBackwardReference(benchmark::State& state) {
  const int64_t rows = state.range(0), d = 80;
  auto y = RandVec(static_cast<size_t>(rows * d), 32);
  for (auto& v : y) v = v > 0.0f ? v : 0.0f;
  const auto g = RandVec(static_cast<size_t>(rows * d), 33);
  std::vector<float> dx(static_cast<size_t>(rows * d), 0.0f);
  std::vector<float> dbias(static_cast<size_t>(d), 0.0f);
  for (auto _ : state) {
    kernels::reference::AddBiasReluBackward(y.data(), g.data(), dx.data(),
                                            dbias.data(), rows, d);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AddBiasReluBackwardReference)->Arg(200)->Arg(1024);

void BM_Accumulate(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto x = RandVec(static_cast<size_t>(n), 34);
  std::vector<float> y(static_cast<size_t>(n), 0.0f);
  for (auto _ : state) {
    kernels::Accumulate(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Accumulate)->Arg(2560)->Arg(65536);

void BM_AccumulateReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto x = RandVec(static_cast<size_t>(n), 34);
  std::vector<float> y(static_cast<size_t>(n), 0.0f);
  for (auto _ : state) {
    kernels::reference::Accumulate(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AccumulateReference)->Arg(2560)->Arg(65536);

// ---- Encoder serve forward --------------------------------------------------

std::unique_ptr<core::NodeStateStore> MakeWarmStore(
    const core::ApanConfig& config) {
  auto store = std::make_unique<core::NodeStateStore>(
      config.num_nodes, config.mailbox_slots, config.embedding_dim);
  Rng rng(16);
  std::vector<core::MailDelivery> mails;
  for (graph::NodeId v = 0; v < config.num_nodes; ++v) {
    std::vector<float> z(static_cast<size_t>(config.embedding_dim));
    for (auto& x : z) x = static_cast<float>(rng.Normal());
    store->SetLastEmbedding(v, z);
    const int count = 2 + static_cast<int>(rng.UniformInt(8));
    for (int i = 0; i < count; ++i) {
      std::vector<float> mail(static_cast<size_t>(config.embedding_dim));
      for (auto& x : mail) x = static_cast<float>(rng.Normal());
      mails.push_back({v, std::move(mail), 0.1 * i, 1});
    }
  }
  store->DeliverBatch(std::move(mails));
  return store;
}

/// Shared fixture for the serve-encode benchmarks: one change to the
/// shape/seeds changes both the arena and no-arena rows, keeping the
/// comparison apples-to-apples.
struct ServeEncodeFixture {
  core::ApanConfig config;
  Rng rng{17};
  core::ApanEncoder encoder;
  std::unique_ptr<core::NodeStateStore> store;
  std::vector<graph::NodeId> nodes;

  explicit ServeEncodeFixture(int64_t batch)
      : config(MakeConfig()), encoder(config, &rng) {
    encoder.SetTraining(false);
    store = MakeWarmStore(config);
    Rng pick(18);
    for (int64_t i = 0; i < batch; ++i) {
      nodes.push_back(static_cast<graph::NodeId>(
          pick.UniformInt(config.num_nodes)));
    }
  }

  static core::ApanConfig MakeConfig() {
    core::ApanConfig config;
    config.num_nodes = 4000;
    config.embedding_dim = 32;
    config.dropout = 0.0f;
    return config;
  }
};

void BM_EncoderServeForward(benchmark::State& state) {
  // The full serve-path encode at the paper's shape (d=32, m=10 slots,
  // 2 heads) — fused kernels + arena, exactly what both engines run per
  // batch on the synchronous link.
  ServeEncodeFixture f(state.range(0));
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    tensor::ArenaScope arena;
    benchmark::DoNotOptimize(f.encoder.EncodeNodes(*f.store, f.nodes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncoderServeForward)->Arg(100)->Arg(200)->Arg(500);

void BM_EncoderServeForwardNoArena(benchmark::State& state) {
  // Same forward without an arena scope: isolates the allocation tax.
  ServeEncodeFixture f(state.range(0));
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.encoder.EncodeNodes(*f.store, f.nodes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncoderServeForwardNoArena)->Arg(200);

// ---- Temporal graph ---------------------------------------------------------

graph::TemporalGraph MakeDenseGraph(int64_t nodes, int64_t events) {
  graph::TemporalGraph g(nodes);
  Rng rng(4);
  double t = 0.0;
  for (int64_t i = 0; i < events; ++i) {
    t += 0.01;
    APAN_CHECK(
        g.AddEvent({static_cast<graph::NodeId>(rng.Zipf(nodes, 1.1)),
                    static_cast<graph::NodeId>(rng.Zipf(nodes, 1.1)), t, -1})
            .ok());
  }
  return g;
}

void BM_MostRecentNeighbors(benchmark::State& state) {
  auto g = MakeDenseGraph(2000, 100000);
  Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(g.MostRecentNeighbors(v, 900.0, state.range(0)));
  }
}
BENCHMARK(BM_MostRecentNeighbors)->Arg(5)->Arg(10)->Arg(20);

void BM_KHopExpansion(benchmark::State& state) {
  // The asynchronous-link cost per interaction: 2-seed k-hop expansion.
  auto g = MakeDenseGraph(2000, 100000);
  Rng rng(6);
  const int32_t hops = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    const auto a = static_cast<graph::NodeId>(rng.UniformInt(2000));
    const auto b = static_cast<graph::NodeId>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(
        graph::KHopMostRecent(g, {a, b}, 900.0, hops, 10));
  }
}
BENCHMARK(BM_KHopExpansion)->Arg(1)->Arg(2);

// ---- Mailbox ----------------------------------------------------------------

void BM_MailboxDeliver(benchmark::State& state) {
  core::Mailbox box(10000, 10, 32);
  std::vector<float> mail(32, 0.5f);
  Rng rng(7);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    box.Deliver(static_cast<graph::NodeId>(rng.UniformInt(10000)), mail, t);
  }
}
BENCHMARK(BM_MailboxDeliver);

void BM_MailboxReadBatch(benchmark::State& state) {
  core::Mailbox box(10000, 10, 32);
  std::vector<float> mail(32, 0.5f);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    box.Deliver(static_cast<graph::NodeId>(rng.UniformInt(10000)), mail,
                i * 0.001);
  }
  std::vector<graph::NodeId> batch(state.range(0));
  for (auto& v : batch) {
    v = static_cast<graph::NodeId>(rng.UniformInt(10000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.ReadBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxReadBatch)->Arg(200)->Arg(1000);

// ---- Queue ------------------------------------------------------------------

void BM_BoundedQueueRoundTrip(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  for (auto _ : state) {
    APAN_CHECK(q.Push(1).ok());
    benchmark::DoNotOptimize(q.TryPop());
  }
}
BENCHMARK(BM_BoundedQueueRoundTrip);

}  // namespace
}  // namespace apan

BENCHMARK_MAIN();
