// Reproduces Table 1: statistics of the datasets used in the experiments.
//
// Paper values (for reference; our synthetic substitutes are scaled down
// per DESIGN.md §2 but preserve every structural property the table
// documents):
//            Wikipedia   Reddit    Alipay
//   Edges      157,474   672,447   2,776,009
//   Nodes        9,227    10,984     761,750
//   Feat dim       172       172         101
//   ...

#include <cstdio>

#include "bench/bench_util.h"

namespace apan {
namespace {

void PrintRow(const char* name, const data::Dataset& ds) {
  const auto s = ds.ComputeTable1Stats();
  std::printf("%-28s %10s\n", "", name);
  std::printf("%-28s %10lld\n", "Edges", (long long)s.num_edges);
  std::printf("%-28s %10lld\n", "Nodes", (long long)s.num_nodes);
  std::printf("%-28s %10lld\n", "Edge feature dim",
              (long long)s.feature_dim);
  std::printf("%-28s %10lld\n", "Nodes in train.",
              (long long)s.nodes_in_train);
  std::printf("%-28s %10lld\n", "Old nodes in val. and test.",
              (long long)s.old_nodes_in_eval);
  std::printf("%-28s %10lld\n", "Unseen nodes in val. and test.",
              (long long)s.unseen_nodes_in_eval);
  std::printf("%-28s %9.1fd\n", "Timespan", s.timespan);
  std::printf("%-28s %10s\n", "Data split",
              ds.name == "alipay-like" ? "10d-2d-2d" : "70%-15%-15%");
  std::printf("%-28s %10lld\n", "Interactions with labels",
              (long long)s.labeled_interactions);
  std::printf("%-28s %10s\n", "Label type",
              ds.label_kind == data::LabelKind::kEdge ? "txn ban"
                                                      : "user ban");
  bench::PrintRule(40);
}

}  // namespace
}  // namespace apan

int main() {
  using namespace apan;
  std::printf("== Table 1: Statistics of the datasets ==\n");
  std::printf("(synthetic stand-ins; see DESIGN.md for the substitution "
              "rationale; APAN_BENCH_SCALE=%.2f)\n\n",
              bench::EnvScale());
  bench::PrintRule(40);
  PrintRow("Wikipedia-like", bench::MakeWikipedia());
  PrintRow("Reddit-like", bench::MakeReddit());
  PrintRow("Alipay-like", bench::MakeAlipay());
  return 0;
}
