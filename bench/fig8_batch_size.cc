// Reproduces Figure 8: average precision versus training/serving batch
// size, Wikipedia-like dataset, for TGAT, TGN and APAN.
//
// Shape to verify: TGAT and TGN degrade as the batch grows (events inside
// a batch cannot see each other, so larger batches lose more of the
// latest interactions), while APAN — which by design predicts from
// slightly stale state anyway — stays roughly flat.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace apan;
  std::printf("== Figure 8: AP (%%) vs batch size, wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  const std::vector<size_t> batch_sizes = {100, 200, 300, 400, 500};
  const std::vector<std::string> models = {"TGAT", "TGN", "APAN"};

  std::printf("%-8s", "Model");
  for (size_t b : batch_sizes) std::printf(" | %7zu", b);
  std::printf("\n");
  bench::PrintRule(60);
  for (const auto& name : models) {
    std::printf("%-8s", name.c_str());
    for (size_t b : batch_sizes) {
      train::LinkTrainConfig cfg;
      cfg.batch_size = b;
      // Keep the optimizer-step budget comparable across batch sizes so
      // the measurement isolates the batching effect itself.
      cfg.max_epochs = bench::EnvEpochs(
          static_cast<int>(4 * (b + 100) / 200));
      cfg.patience = cfg.max_epochs;
      train::LinkTrainer trainer(cfg);
      auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
      auto report = trainer.Run(model.get(), wiki);
      APAN_CHECK_MSG(report.ok(), report.status().ToString());
      std::printf(" | %7.2f", 100 * report->test.ap);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  bench::PrintRule(60);
  return 0;
}
