// Reproduces Figure 6: inference time (ms per batch of 200 events) versus
// average precision, Wikipedia-like dataset, link prediction.
//
// Shape to verify: APAN's synchronous-path latency is far below TGN/TGAT
// (paper: 8.7x vs TGN-2layers) and *does not grow* with propagation
// layers, because propagation is off the inference path. The graph-query
// column shows why: APAN issues zero inference-path queries.
//
// Besides the table this bench writes BENCH_fig6.json (repo root when run
// from there; APAN_BENCH_JSON_DIR overrides) with mean/p50/p99 ms per
// batch and AP per model, so the serving-latency trajectory is tracked
// across PRs. Schema: docs/performance.md.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/kernels.h"

int main() {
  using namespace apan;
  std::printf(
      "== Figure 6: inference latency (ms/batch of 200) vs AP, "
      "wikipedia-like ==\n\n");
  std::printf("kernel isa: %s\n\n",
              tensor::kernels::IsaName(tensor::kernels::ActiveIsa()));

  data::Dataset wiki = bench::MakeWikipedia();
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(3);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);

  const std::vector<std::string> models = {
      "JODIE",        "DyRep",        "TGAT-1layer", "TGAT-2layers",
      "TGN-1layer",   "TGN-2layers",  "APAN-1layer", "APAN-2layers"};

  std::printf("%-14s | %9s | %9s | %9s | %7s | %14s\n", "Model", "ms mean",
              "ms p50", "ms p99", "AP (%)", "sync graph qs");
  bench::PrintRule(78);
  double apan2_ms = 0, tgn2_ms = 0;

  bench::JsonWriter json(bench::JsonOutPath("BENCH_fig6.json"));
  json.BeginObject();
  json.Field("figure", std::string("fig6_inference_latency"));
  json.Field("dataset", std::string("wikipedia-like"));
  json.Field("batch_size", static_cast<int64_t>(cfg.batch_size));
  json.Field("kernel_isa",
             std::string(tensor::kernels::IsaName(
                 tensor::kernels::ActiveIsa())));
  json.BeginArray("models");

  for (const auto& name : models) {
    auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
    auto report = trainer.Run(model.get(), wiki);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    std::printf("%-14s | %9.2f | %9.2f | %9.2f | %7.2f | %14lld\n",
                name.c_str(), report->mean_inference_millis_per_batch,
                report->inference_p50_millis, report->inference_p99_millis,
                100 * report->test.ap,
                (long long)report->sync_graph_queries);
    std::fflush(stdout);
    json.BeginObject();
    json.Field("name", name);
    json.Field("ms_per_batch_mean", report->mean_inference_millis_per_batch);
    json.Field("ms_per_batch_p50", report->inference_p50_millis);
    json.Field("ms_per_batch_p99", report->inference_p99_millis);
    json.Field("test_ap", report->test.ap);
    json.Field("sync_graph_queries", report->sync_graph_queries);
    json.EndObject();
    if (name == "APAN-2layers") {
      apan2_ms = report->mean_inference_millis_per_batch;
    }
    if (name == "TGN-2layers") {
      tgn2_ms = report->mean_inference_millis_per_batch;
    }
  }
  json.EndArray();
  json.EndObject();
  bench::PrintRule(78);
  if (apan2_ms > 0) {
    std::printf(
        "speedup TGN-2layers / APAN-2layers = %.1fx (paper reports 8.7x "
        "on GPU hardware)\n",
        tgn2_ms / apan2_ms);
  }
  return 0;
}
