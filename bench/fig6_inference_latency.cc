// Reproduces Figure 6: inference time (ms per batch of 200 events) versus
// average precision, Wikipedia-like dataset, link prediction.
//
// Shape to verify: APAN's synchronous-path latency is far below TGN/TGAT
// (paper: 8.7x vs TGN-2layers) and *does not grow* with propagation
// layers, because propagation is off the inference path. The graph-query
// column shows why: APAN issues zero inference-path queries.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace apan;
  std::printf(
      "== Figure 6: inference latency (ms/batch of 200) vs AP, "
      "wikipedia-like ==\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(3);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);

  const std::vector<std::string> models = {
      "JODIE",        "DyRep",        "TGAT-1layer", "TGAT-2layers",
      "TGN-1layer",   "TGN-2layers",  "APAN-1layer", "APAN-2layers"};

  std::printf("%-14s | %12s | %9s | %16s\n", "Model", "ms/batch", "AP (%)",
              "sync graph qs");
  bench::PrintRule(62);
  double apan2_ms = 0, tgn2_ms = 0;
  for (const auto& name : models) {
    auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
    auto report = trainer.Run(model.get(), wiki);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    std::printf("%-14s | %12.2f | %9.2f | %16lld\n", name.c_str(),
                report->mean_inference_millis_per_batch,
                100 * report->test.ap,
                (long long)report->sync_graph_queries);
    std::fflush(stdout);
    if (name == "APAN-2layers") {
      apan2_ms = report->mean_inference_millis_per_batch;
    }
    if (name == "TGN-2layers") {
      tgn2_ms = report->mean_inference_millis_per_batch;
    }
  }
  bench::PrintRule(62);
  if (apan2_ms > 0) {
    std::printf(
        "speedup TGN-2layers / APAN-2layers = %.1fx (paper reports 8.7x "
        "on GPU hardware)\n",
        tgn2_ms / apan2_ms);
  }
  return 0;
}
