// Reproduces Table 2: link-prediction accuracy and AP on the Wikipedia-
// and Reddit-like datasets for all twelve models.
//
// Paper shape to verify: dynamic models beat static; unsupervised
// embeddings (GAE/VGAE/DeepWalk/Node2vec/CTDNE) trail the end-to-end
// models; APAN is competitive with TGN at the top.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/stopwatch.h"

namespace apan {
namespace {

struct Row {
  std::string name;
  double wiki_acc = 0, wiki_ap = 0, reddit_acc = 0, reddit_ap = 0;
};

void RunTemporal(const std::string& name, const data::Dataset& wiki,
                 const data::Dataset& reddit, Row* row) {
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(6);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);
  {
    auto model = bench::MakeTemporalModel(name, wiki, /*seed=*/2021);
    auto report = trainer.Run(model.get(), wiki);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    row->wiki_acc = report->test.accuracy;
    row->wiki_ap = report->test.ap;
  }
  {
    auto model = bench::MakeTemporalModel(name, reddit, /*seed=*/2021);
    auto report = trainer.Run(model.get(), reddit);
    APAN_CHECK_MSG(report.ok(), report.status().ToString());
    row->reddit_acc = report->test.accuracy;
    row->reddit_ap = report->test.ap;
  }
}

void RunStatic(const std::string& name, const data::Dataset& wiki,
               const data::Dataset& reddit, Row* row) {
  train::ProbeConfig cfg;
  cfg.epochs = bench::EnvEpochs(6);
  {
    auto model = bench::MakeStaticModel(name, wiki, /*seed=*/2021);
    APAN_CHECK(model->Fit(wiki).ok());
    auto eval = train::EvaluateStaticLink(*model, wiki, cfg);
    APAN_CHECK_MSG(eval.ok(), eval.status().ToString());
    row->wiki_acc = eval->test.accuracy;
    row->wiki_ap = eval->test.ap;
  }
  {
    auto model = bench::MakeStaticModel(name, reddit, /*seed=*/2021);
    APAN_CHECK(model->Fit(reddit).ok());
    auto eval = train::EvaluateStaticLink(*model, reddit, cfg);
    APAN_CHECK_MSG(eval.ok(), eval.status().ToString());
    row->reddit_acc = eval->test.accuracy;
    row->reddit_ap = eval->test.ap;
  }
}

}  // namespace
}  // namespace apan

int main() {
  using namespace apan;
  std::printf("== Table 2: Link prediction (test accuracy / AP, %%) ==\n");
  std::printf("(synthetic stand-ins; shapes, not absolute paper values)\n\n");

  data::Dataset wiki = bench::MakeWikipedia();
  data::Dataset reddit = bench::MakeReddit();
  std::printf("wikipedia-like: %lld events | reddit-like: %lld events\n\n",
              (long long)wiki.num_events(), (long long)reddit.num_events());

  const std::vector<std::string> unsupervised = {"GAE", "VGAE", "DeepWalk",
                                                 "Node2vec", "CTDNE"};
  const std::vector<std::string> supervised = {
      "GAT", "SAGE", "DyRep", "JODIE", "TGAT", "TGN", "APAN"};

  std::printf("%-10s | %9s %9s | %9s %9s\n", "Model", "Wiki Acc", "Wiki AP",
              "Red Acc", "Red AP");
  bench::PrintRule();
  Stopwatch total;
  for (const auto& name : unsupervised) {
    Row row{name};
    RunStatic(name, wiki, reddit, &row);
    std::printf("%-10s | %9.2f %9.2f | %9.2f %9.2f\n", name.c_str(),
                100 * row.wiki_acc, 100 * row.wiki_ap, 100 * row.reddit_acc,
                100 * row.reddit_ap);
    std::fflush(stdout);
  }
  bench::PrintRule();
  for (const auto& name : supervised) {
    Row row{name};
    RunTemporal(name, wiki, reddit, &row);
    std::printf("%-10s | %9.2f %9.2f | %9.2f %9.2f\n", name.c_str(),
                100 * row.wiki_acc, 100 * row.wiki_ap, 100 * row.reddit_acc,
                100 * row.reddit_ap);
    std::fflush(stdout);
  }
  bench::PrintRule();
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
