// Reproduces Table 3: dynamic node classification AUC (Wikipedia-like,
// Reddit-like) and edge classification AUC (Alipay-like).
//
// Protocol: train each model on link prediction, freeze it, collect
// embeddings at labeled events, train an MLP probe on the training-range
// rows, report test ROC-AUC (the TGN protocol the paper follows).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/stopwatch.h"

namespace apan {
namespace {

double TemporalTaskAuc(const std::string& name, const data::Dataset& ds) {
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(5);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);
  auto model = bench::MakeTemporalModel(name, ds, /*seed=*/2021);
  auto report = trainer.Run(model.get(), ds);
  APAN_CHECK_MSG(report.ok(), report.status().ToString());
  auto rows = train::CollectTemporalRows(model.get(), ds, 200);
  APAN_CHECK_MSG(rows.ok(), rows.status().ToString());
  train::ProbeConfig pc;
  pc.epochs = 12;
  auto probe = train::TrainClassificationProbe(*rows, pc);
  APAN_CHECK_MSG(probe.ok(), probe.status().ToString());
  return probe->test_auc;
}

double StaticTaskAuc(const std::string& name, const data::Dataset& ds) {
  auto model = bench::MakeStaticModel(name, ds, /*seed=*/2021);
  APAN_CHECK(model->Fit(ds).ok());
  auto rows = train::CollectStaticRows(*model, ds);
  train::ProbeConfig pc;
  pc.epochs = 12;
  auto probe = train::TrainClassificationProbe(rows, pc);
  APAN_CHECK_MSG(probe.ok(), probe.status().ToString());
  return probe->test_auc;
}

}  // namespace
}  // namespace apan

int main() {
  using namespace apan;
  std::printf(
      "== Table 3: node classification / edge classification (AUC, %%) "
      "==\n\n");
  std::printf(
      "(node-label density boosted ~10x vs Table 1/2 datasets: the paper's "
      "0.14%% rate\n leaves a scaled-down test split without positives, "
      "making AUC degenerate.\n Structure and features are generated "
      "identically.)\n\n");

  // Same generators as Tables 1/2 but with enough labeled events that the
  // evaluation split contains positives at this scale.
  auto wiki_cfg =
      data::SyntheticConfig::WikipediaLike().Scaled(0.25 * bench::EnvScale());
  wiki_cfg.risky_user_fraction = 0.06;
  wiki_cfg.risky_positive_prob = 0.3;
  wiki_cfg.negative_label_prob = 0.10;
  data::Dataset wiki = *data::GenerateSynthetic(wiki_cfg);
  auto reddit_cfg =
      data::SyntheticConfig::RedditLike().Scaled(0.15 * bench::EnvScale());
  reddit_cfg.risky_user_fraction = 0.05;
  reddit_cfg.risky_positive_prob = 0.25;
  reddit_cfg.negative_label_prob = 0.10;
  data::Dataset reddit = *data::GenerateSynthetic(reddit_cfg);
  data::Dataset alipay = bench::MakeAlipay();

  std::printf("%-10s | %10s %10s | %10s\n", "Model", "Wiki node",
              "Reddit node", "Alipay edge");
  bench::PrintRule(52);
  Stopwatch total;

  // Unsupervised rows (no Alipay column in the paper for these).
  for (const std::string name : {"GAE", "VGAE", "CTDNE"}) {
    const double w = StaticTaskAuc(name, wiki);
    const double r = StaticTaskAuc(name, reddit);
    std::printf("%-10s | %10.2f %10.2f | %10s\n", name.c_str(), 100 * w,
                100 * r, "\\");
    std::fflush(stdout);
  }
  bench::PrintRule(52);
  for (const std::string name :
       {"GAT", "SAGE", "DyRep", "JODIE", "TGAT", "TGN", "APAN"}) {
    const double w = TemporalTaskAuc(name, wiki);
    const double r = TemporalTaskAuc(name, reddit);
    const double a = TemporalTaskAuc(name, alipay);
    std::printf("%-10s | %10.2f %10.2f | %10.2f\n", name.c_str(), 100 * w,
                100 * r, 100 * a);
    std::fflush(stdout);
  }
  bench::PrintRule(52);
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
