// Ablation of APAN's design choices (beyond the Figure 9 grid):
//   * propagation hops k ∈ {0, 1, 2}  — how far mails travel (§3.5);
//   * most-recent vs uniform neighbor sampling in the propagator (§3.5
//     argues most-recent restores time-variant information better);
//   * learned positional encoding vs the §3.6 Bochner time-kernel
//     replacement.
// All runs share weights-agnostic settings; each row is an independent
// training run on the Wikipedia-like dataset.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace apan {
namespace {

double RunVariant(const std::string& label, const data::Dataset& ds,
                  core::ApanConfig config) {
  config.num_nodes = ds.num_nodes;
  config.embedding_dim = ds.feature_dim();
  train::ApanLinkModel model(config, &ds.features, /*seed=*/2021, label);
  train::LinkTrainConfig cfg;
  cfg.max_epochs = bench::EnvEpochs(6);
  cfg.patience = 2;
  train::LinkTrainer trainer(cfg);
  auto report = trainer.Run(&model, ds);
  APAN_CHECK_MSG(report.ok(), report.status().ToString());
  std::printf("%-34s | %7.2f | %7.2f\n", label.c_str(),
              100 * report->test.ap, 100 * report->test.accuracy);
  std::fflush(stdout);
  return report->test.ap;
}

}  // namespace
}  // namespace apan

int main() {
  using namespace apan;
  std::printf("== Ablation: APAN design choices, wikipedia-like ==\n\n");
  data::Dataset wiki = bench::MakeWikipedia();

  std::printf("%-34s | %7s | %7s\n", "Variant", "AP (%)", "Acc (%)");
  bench::PrintRule(56);

  core::ApanConfig base;
  for (int32_t hops : {0, 1, 2}) {
    core::ApanConfig c = base;
    c.propagation_hops = hops;
    RunVariant("hops=" + std::to_string(hops) +
                   (hops == 2 ? " (paper default)" : ""),
               wiki, c);
  }
  bench::PrintRule(56);
  {
    core::ApanConfig c = base;
    c.sampling = core::PropagationSampling::kUniform;
    RunVariant("uniform neighbor sampling", wiki, c);
  }
  {
    core::ApanConfig c = base;
    RunVariant("most-recent sampling (paper)", wiki, c);
  }
  bench::PrintRule(56);
  {
    core::ApanConfig c = base;
    c.positional = core::PositionalMode::kTimeKernel;
    RunVariant("time-kernel positional (§3.6)", wiki, c);
  }
  {
    core::ApanConfig c = base;
    RunVariant("learned positional (paper)", wiki, c);
  }
  bench::PrintRule(56);
  return 0;
}
