// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every bench honours two environment variables:
//   APAN_BENCH_SCALE   multiplies dataset sizes (default 1.0 = the
//                      laptop-scale defaults documented in DESIGN.md §2);
//   APAN_BENCH_EPOCHS  overrides the training epoch budget.

#ifndef APAN_BENCH_BENCH_UTIL_H_
#define APAN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dyrep.h"
#include "baselines/gae.h"
#include "baselines/jodie.h"
#include "baselines/random_walk.h"
#include "baselines/static_gnn.h"
#include "baselines/tgat.h"
#include "baselines/tgn.h"
#include "data/synthetic.h"
#include "train/apan_adapter.h"
#include "train/link_trainer.h"
#include "train/probe.h"

namespace apan {
namespace bench {

inline double EnvScale(double fallback = 1.0) {
  const char* s = std::getenv("APAN_BENCH_SCALE");
  if (s == nullptr || s[0] == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  // atof would turn a malformed value into 0.0, silently shrinking every
  // dataset to nothing; reject it loudly and keep the default instead.
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bench: ignoring malformed APAN_BENCH_SCALE=%s\n", s);
    return fallback;
  }
  return v;
}

inline int EnvEpochs(int fallback) {
  const char* s = std::getenv("APAN_BENCH_EPOCHS");
  if (s == nullptr || s[0] == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0 || v > 1'000'000) {
    std::fprintf(stderr, "bench: ignoring malformed APAN_BENCH_EPOCHS=%s\n",
                 s);
    return fallback;
  }
  return static_cast<int>(v);
}

/// Where the machine-readable BENCH_*.json lands: the repo root by
/// convention (run benches from there), overridable with
/// APAN_BENCH_JSON_DIR. Schema: docs/performance.md.
inline std::string JsonOutPath(const char* filename) {
  const char* dir = std::getenv("APAN_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  return std::string(dir) + "/" + filename;
}

/// Bench-default dataset sizes: small enough for a 2-core box, large
/// enough that model ordering is stable. Scale with APAN_BENCH_SCALE.
inline data::Dataset MakeWikipedia() {
  return *data::GenerateSynthetic(
      data::SyntheticConfig::WikipediaLike().Scaled(0.25 * EnvScale()));
}
inline data::Dataset MakeReddit() {
  return *data::GenerateSynthetic(
      data::SyntheticConfig::RedditLike().Scaled(0.15 * EnvScale()));
}
inline data::Dataset MakeAlipay() {
  return *data::GenerateSynthetic(
      data::SyntheticConfig::AlipayLike().Scaled(0.08 * EnvScale()));
}

/// Factory for the streaming (TemporalModel) competitors.
inline std::unique_ptr<train::TemporalModel> MakeTemporalModel(
    const std::string& name, const data::Dataset& ds, uint64_t seed) {
  const int64_t n = ds.num_nodes;
  const int64_t d = ds.feature_dim();
  if (name == "APAN" || name == "APAN-1layer" || name == "APAN-2layers") {
    core::ApanConfig c;
    c.num_nodes = n;
    c.embedding_dim = d;
    c.propagation_hops = name == "APAN-1layer" ? 1 : 2;
    return std::make_unique<train::ApanLinkModel>(
        c, &ds.features, seed, name);
  }
  if (name == "TGAT" || name == "TGAT-1layer" || name == "TGAT-2layers") {
    baselines::Tgat::Options o{.num_nodes = n, .dim = d};
    o.num_layers = name == "TGAT-2layers" ? 2 : 1;
    return std::make_unique<baselines::Tgat>(o, &ds.features, seed, name);
  }
  if (name == "TGN" || name == "TGN-1layer" || name == "TGN-2layers") {
    baselines::Tgn::Options o{.num_nodes = n, .dim = d};
    o.num_layers = name == "TGN-2layers" ? 2 : 1;
    return std::make_unique<baselines::Tgn>(o, &ds.features, seed, name);
  }
  if (name == "JODIE") {
    return std::make_unique<baselines::Jodie>(
        baselines::Jodie::Options{
            .num_nodes = n, .num_users = ds.num_users, .dim = d},
        &ds.features, seed);
  }
  if (name == "DyRep") {
    return std::make_unique<baselines::DyRep>(
        baselines::DyRep::Options{.num_nodes = n, .dim = d}, &ds.features,
        seed);
  }
  if (name == "SAGE") {
    return std::make_unique<baselines::StaticGnn>(
        baselines::StaticGnn::Kind::kSage,
        baselines::StaticGnn::Options{.num_nodes = n, .dim = d}, seed);
  }
  if (name == "GAT") {
    return std::make_unique<baselines::StaticGnn>(
        baselines::StaticGnn::Kind::kGat,
        baselines::StaticGnn::Options{.num_nodes = n, .dim = d}, seed);
  }
  std::fprintf(stderr, "unknown temporal model: %s\n", name.c_str());
  std::abort();
}

/// Factory for the unsupervised static-embedding competitors.
inline std::unique_ptr<train::StaticEmbeddingModel> MakeStaticModel(
    const std::string& name, const data::Dataset& ds, uint64_t seed) {
  const int64_t n = ds.num_nodes;
  const int64_t d = ds.feature_dim();
  if (name == "GAE" || name == "VGAE") {
    return std::make_unique<baselines::Gae>(
        baselines::Gae::Options{
            .num_nodes = n, .dim = d, .variational = name == "VGAE"},
        seed);
  }
  baselines::RandomWalkEmbedding::Options o;
  o.dim = d;
  if (name == "DeepWalk") {
    return std::make_unique<baselines::RandomWalkEmbedding>(
        baselines::RandomWalkEmbedding::Kind::kDeepWalk, o, seed);
  }
  if (name == "Node2vec") {
    return std::make_unique<baselines::RandomWalkEmbedding>(
        baselines::RandomWalkEmbedding::Kind::kNode2Vec, o, seed);
  }
  if (name == "CTDNE") {
    return std::make_unique<baselines::RandomWalkEmbedding>(
        baselines::RandomWalkEmbedding::Kind::kCtdne, o, seed);
  }
  std::fprintf(stderr, "unknown static model: %s\n", name.c_str());
  std::abort();
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// \brief Minimal streaming JSON writer for the BENCH_*.json files
/// (schema documented in docs/performance.md). No dependency, no
/// escaping needs beyond plain ASCII keys/values, which is all the
/// benches emit. Values print with %.6g; open objects/arrays must be
/// closed in LIFO order.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {
    if (file_ == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }
  ~JsonWriter() {
    if (file_ != nullptr) {
      std::fputc('\n', file_);
      std::fclose(file_);
    }
  }
  bool ok() const { return file_ != nullptr; }

  void BeginObject() {
    Separate();
    Raw("{");
    fresh_ = true;
  }
  void EndObject() {
    Raw("}");
    fresh_ = false;
  }
  void BeginArray(const char* key) {
    Separate();
    KeyRaw(key);
    Raw("[");
    fresh_ = true;
  }
  void EndArray() {
    Raw("]");
    fresh_ = false;
  }

  void Field(const char* key, const std::string& value) {
    Separate();
    KeyRaw(key);
    if (file_ != nullptr) std::fprintf(file_, "\"%s\"", value.c_str());
    fresh_ = false;
  }
  void Field(const char* key, double value) {
    Separate();
    KeyRaw(key);
    if (file_ != nullptr) std::fprintf(file_, "%.6g", value);
    fresh_ = false;
  }
  void Field(const char* key, int64_t value) {
    Separate();
    KeyRaw(key);
    if (file_ != nullptr) std::fprintf(file_, "%lld", (long long)value);
    fresh_ = false;
  }

 private:
  void Raw(const char* s) {
    if (file_ != nullptr) std::fputs(s, file_);
  }
  void Separate() {
    if (!fresh_) Raw(", ");
  }
  void KeyRaw(const char* key) {
    if (file_ != nullptr) std::fprintf(file_, "\"%s\": ", key);
  }

  std::FILE* file_;
  bool fresh_ = true;  ///< Right after an opening bracket: no comma.
};

}  // namespace bench
}  // namespace apan

#endif  // APAN_BENCH_BENCH_UTIL_H_
