#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace apan {
namespace obs {

// ----------------------------------------------------------- ValidateJson
// Minimal recursive-descent well-formedness check. Accepts exactly the
// JSON grammar (objects, arrays, strings with escapes, numbers, literals)
// with a depth cap; reports the byte offset of the first error.

namespace {

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool Validate(std::string* error) {
    SkipWs();
    if (!Value(0)) return Fail(error);
    SkipWs();
    if (pos_ != text_.size()) {
      err_ = "trailing content";
      return Fail(error);
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool Fail(std::string* error) {
    if (error != nullptr) {
      std::ostringstream os;
      os << (err_.empty() ? "malformed JSON" : err_) << " at byte " << pos_;
      *error = os.str();
    }
    return err_.empty();
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Err("expected ':'");
      }
      ++pos_;
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Err("expected ',' or '}'");
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Err("expected ',' or ']'");
    }
  }

  bool String() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Err("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<size_t>(i)]))) {
              return Err("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Err("bad escape");
        }
      }
      ++pos_;
    }
    return Err("unterminated string");
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Err("bad literal");
      }
    }
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Err("expected value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Err("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Err("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Err(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonScanner(text).Validate(error);
}

#if APAN_TRACING_ENABLED

// ---------------------------------------------------------- TraceRecorder

struct TraceRecorder::ThreadBuffer {
  /// Immutable after creation (registration happens under the recorder's
  /// mu_); readable without `mu`.
  std::thread::id owner;
  int tid = 0;
  mutable util::Mutex mu;  ///< owner thread vs. flusher, flush-time only
  std::vector<TraceEvent> ring APAN_GUARDED_BY(mu);
  uint64_t total_written APAN_GUARDED_BY(mu) = 0;
};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::Enable() {
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  const auto me = std::this_thread::get_id();
  // The global recorder outlives every thread, so its buffer pointer can
  // be cached in TLS. Local recorders (tests) may be destroyed while the
  // thread lives on — they pay the scan on every span instead.
  if (this == &Global()) {
    thread_local ThreadBuffer* cached = nullptr;
    if (cached != nullptr) return cached;
    util::MutexLock lock(mu_);
    for (const auto& b : buffers_) {
      if (b->owner == me) {
        cached = b.get();
        return cached;
      }
    }
    auto buf = std::make_unique<ThreadBuffer>();
    buf->owner = me;
    buf->tid = static_cast<int>(buffers_.size());
    cached = buf.get();
    buffers_.push_back(std::move(buf));
    return cached;
  }
  util::MutexLock lock(mu_);
  for (const auto& b : buffers_) {
    if (b->owner == me) return b.get();
  }
  auto buf = std::make_unique<ThreadBuffer>();
  buf->owner = me;
  buf->tid = static_cast<int>(buffers_.size());
  ThreadBuffer* raw = buf.get();
  buffers_.push_back(std::move(buf));
  return raw;
}

void TraceRecorder::Record(const char* name, double ts_us, double dur_us) {
  ThreadBuffer* buf = BufferForThisThread();
  TraceEvent ev;
  ev.name = name;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  util::MutexLock lock(buf->mu);
  ev.tid = buf->tid;
  if (buf->ring.size() < kRingCapacity) {
    buf->ring.push_back(ev);
  } else {
    buf->ring[static_cast<size_t>(buf->total_written % kRingCapacity)] = ev;
  }
  ++buf->total_written;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  util::MutexLock lock(mu_);
  for (const auto& b : buffers_) {
    util::MutexLock buf_lock(b->mu);
    const size_t n = b->ring.size();
    if (n == 0) continue;
    // Oldest-first: the ring wraps at total_written % capacity.
    const size_t start =
        b->total_written > n
            ? static_cast<size_t>(b->total_written % kRingCapacity)
            : 0;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(b->ring[(start + i) % n]);
    }
  }
  return out;
}

uint64_t TraceRecorder::dropped() const {
  uint64_t d = 0;
  util::MutexLock lock(mu_);
  for (const auto& b : buffers_) {
    util::MutexLock buf_lock(b->mu);
    if (b->total_written > kRingCapacity) {
      d += b->total_written - kRingCapacity;
    }
  }
  return d;
}

void TraceRecorder::Clear() {
  util::MutexLock lock(mu_);
  for (const auto& b : buffers_) {
    util::MutexLock buf_lock(b->mu);
    b->ring.clear();
    b->total_written = 0;
  }
}

namespace {
void AppendEscaped(std::string* out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c));
      out->append(hex);
    } else {
      out->push_back(c);
    }
  }
}
}  // namespace

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string body;
  body.reserve(events.size() * 96 + 64);
  body += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char num[64];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"";
    AppendEscaped(&body, ev.name == nullptr ? "(null)" : ev.name);
    body += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(num, sizeof(num), "%d", ev.tid);
    body += num;
    body += ",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", ev.ts_us);
    body += num;
    body += ",\"dur\":";
    std::snprintf(num, sizeof(num), "%.3f", ev.dur_us);
    body += num;
    body += '}';
  }
  body += "]}";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace file: " + path);
  }
  out << body << '\n';
  out.flush();
  if (!out) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status();
}

#endif  // APAN_TRACING_ENABLED

}  // namespace obs
}  // namespace apan
