#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace apan {
namespace obs {

// ---------------------------------------------------------------- Counter

Counter::Counter(int num_cells)
    : cells_(static_cast<size_t>(std::max(1, num_cells))) {}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

// ------------------------------------------------------------------ Gauge

Gauge::Gauge(int num_cells)
    : cells_(static_cast<size_t>(std::max(1, num_cells))) {}

void Gauge::UpdateMax(int cell, int64_t v) {
  auto& a = cells_[static_cast<size_t>(cell)].v;
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int64_t Gauge::Sum() const {
  int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

int64_t Gauge::Max() const {
  int64_t m = 0;
  for (const auto& c : cells_) {
    m = std::max(m, c.v.load(std::memory_order_relaxed));
  }
  return m;
}

// -------------------------------------------------------------- Histogram

Histogram::Cell::Cell()
    : min(std::numeric_limits<double>::infinity()),
      max(-std::numeric_limits<double>::infinity()) {}

Histogram::Histogram(int num_cells) {
  const int n = std::max(1, num_cells);
  cells_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) cells_.push_back(std::make_unique<Cell>());
}

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // <= 0, NaN, and exact zero underflow
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5,1)
  const int octave = exp - 1;                // value = (2m) * 2^octave
  if (octave < kMinExp) return 0;
  if (octave > kMaxExp) return kNumBuckets - 1;
  // 2m is the mantissa in [1, 2); map it linearly onto kSubBuckets.
  int sub = static_cast<int>((2.0 * m - 1.0) * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLower(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp + 1);
  const int i = index - 1;
  const int octave = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

void Histogram::BucketBounds(double value, double* lower, double* upper) {
  const int idx = BucketIndex(value);
  *lower = BucketLower(idx);
  *upper = BucketLower(idx + 1);
}

void Histogram::Record(int cell, double value) {
  // NaN and negatives clamp to 0 so the moment accumulators stay finite
  // (the old LatencyRecorder stored raw samples; nothing in the repo
  // records negative latencies, so the clamp only defends against bugs).
  const double v = (value > 0.0) ? value : 0.0;
  Cell& c = *cells_[static_cast<size_t>(cell)];
  c.buckets[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  c.sumsq.fetch_add(v * v, std::memory_order_relaxed);
  double cur = c.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !c.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = c.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !c.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const auto& c : cells_) n += c->count.load(std::memory_order_relaxed);
  return n;
}

double Histogram::Sum() const {
  double s = 0.0;
  for (const auto& c : cells_) s += c->sum.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Mean() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return Sum() / static_cast<double>(n);
}

double Histogram::StdDev() const {
  const uint64_t n = count();
  if (n < 2) return 0.0;
  double sumsq = 0.0;
  for (const auto& c : cells_) {
    sumsq += c->sumsq.load(std::memory_order_relaxed);
  }
  const double m = Mean();
  const double var = (sumsq - static_cast<double>(n) * m * m) /
                     static_cast<double>(n - 1);
  return std::sqrt(std::max(0.0, var));
}

double Histogram::Min() const {
  double m = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& c : cells_) {
    if (c->count.load(std::memory_order_relaxed) == 0) continue;
    any = true;
    m = std::min(m, c->min.load(std::memory_order_relaxed));
  }
  return any ? m : 0.0;
}

double Histogram::Max() const {
  double m = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& c : cells_) {
    if (c->count.load(std::memory_order_relaxed) == 0) continue;
    any = true;
    m = std::max(m, c->max.load(std::memory_order_relaxed));
  }
  return any ? m : 0.0;
}

double Histogram::Quantile(double q) const {
  // Aggregate the per-cell buckets once; relaxed loads make this safe
  // (though approximate) against concurrent writers.
  std::array<uint64_t, kNumBuckets> agg{};
  uint64_t n = 0;
  for (const auto& c : cells_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t x =
          c->buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      agg[static_cast<size_t>(b)] += x;
      n += x;
    }
  }
  if (n == 0) return 0.0;
  // fmax/fmin eat NaN (std::clamp would pass it into the rank cast — UB);
  // NaN q thus maps to 1, the max-side extreme, as LatencyRecorder did.
  q = std::fmax(0.0, std::fmin(q, 1.0));
  const double rank = q * static_cast<double>(n - 1);
  uint64_t before = 0;
  int idx = kNumBuckets - 1;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t cnt = agg[static_cast<size_t>(b)];
    if (cnt == 0) continue;
    if (rank < static_cast<double>(before + cnt)) {
      idx = b;
      break;
    }
    before += cnt;
  }
  const uint64_t cnt = agg[static_cast<size_t>(idx)];
  const double lower = BucketLower(idx);
  const double upper = BucketLower(idx + 1);
  const double frac =
      cnt == 0 ? 0.0
               : (rank - static_cast<double>(before)) /
                     static_cast<double>(cnt);
  const double v = lower + frac * (upper - lower);
  // The exact observed range is tighter than the bucket bounds.
  return std::clamp(v, Min(), Max());
}

void Histogram::Clear() {
  for (auto& c : cells_) {
    c->count.store(0, std::memory_order_relaxed);
    c->sum.store(0.0, std::memory_order_relaxed);
    c->sumsq.store(0.0, std::memory_order_relaxed);
    c->min.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    c->max.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    for (auto& b : c->buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- Registry

Counter* Registry::GetCounter(const std::string& name, int num_cells) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(num_cells)).first;
  }
  APAN_CHECK_MSG(it->second->num_cells() == std::max(1, num_cells),
                 "counter '" + name + "' re-registered with different cells");
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name, int num_cells) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(num_cells)).first;
  }
  APAN_CHECK_MSG(it->second->num_cells() == std::max(1, num_cells),
                 "gauge '" + name + "' re-registered with different cells");
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name, int num_cells) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(num_cells))
             .first;
  }
  APAN_CHECK_MSG(it->second->num_cells() == std::max(1, num_cells),
                 "histogram '" + name +
                     "' re-registered with different cells");
  return it->second.get();
}

Registry::Snapshot Registry::Scrape() const {
  Snapshot snap;
  util::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    CounterRow row;
    row.name = name;
    for (int i = 0; i < c->num_cells(); ++i) {
      row.cells.push_back(c->CellValue(i));
      row.total += row.cells.back();
    }
    snap.counters.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    GaugeRow row;
    row.name = name;
    for (int i = 0; i < g->num_cells(); ++i) {
      row.cells.push_back(g->CellValue(i));
    }
    row.sum = g->Sum();
    row.max = g->Max();
    snap.gauges.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.total_ms = h->Sum();
    row.mean = h->Mean();
    row.p50 = h->P50();
    row.p99 = h->P99();
    row.max = h->Max();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

namespace {
template <typename Row>
const Row* FindRow(const std::vector<Row>& rows, const std::string& name) {
  for (const auto& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}
}  // namespace

const Registry::CounterRow* Registry::Snapshot::FindCounter(
    const std::string& name) const {
  return FindRow(counters, name);
}
const Registry::GaugeRow* Registry::Snapshot::FindGauge(
    const std::string& name) const {
  return FindRow(gauges, name);
}
const Registry::HistogramRow* Registry::Snapshot::FindHistogram(
    const std::string& name) const {
  return FindRow(histograms, name);
}

}  // namespace obs
}  // namespace apan
