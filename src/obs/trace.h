// Stage-level trace spans flushed to Chrome trace_event JSON.
//
// Usage:
//   obs::TraceRecorder::Global().Enable();
//   { APAN_TRACE_SPAN("encode"); ... }          // RAII complete event
//   auto st = obs::TraceRecorder::Global().WriteChromeTrace("run.json");
// Open the file at chrome://tracing or https://ui.perfetto.dev.
//
// Spans are buffered in thread-confined ring buffers (no lock on the hot
// path beyond a per-thread mutex that only the owner and the flusher ever
// contend on, and only at flush time). A ring keeps the newest
// kRingCapacity spans per thread and counts what it overwrote, so a long
// run degrades to "most recent window" instead of unbounded memory.
//
// When CMake is configured with -DAPAN_TRACING=OFF this entire header
// compiles to no-op stubs: Span is an empty object, APAN_TRACE_SPAN is
// `(void)0`, and WriteChromeTrace returns FailedPrecondition. The serve
// plane keeps the macro calls in place at zero cost — that is the
// compile-out contract the trace-off CI build enforces.

#ifndef APAN_OBS_TRACE_H_
#define APAN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

#ifndef APAN_TRACING_ENABLED
#define APAN_TRACING_ENABLED 1
#endif

namespace apan {
namespace obs {

/// \brief Minimal JSON well-formedness validator (recursive descent, no
/// DOM). Always compiled — tools/trace_check and the trace tests use it
/// regardless of whether tracing itself is compiled in.
bool ValidateJson(std::string_view text, std::string* error);

/// One finished span. `name` must be a string literal (spans store the
/// pointer, never copy) — every call site in the repo passes one.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   ///< start, microseconds since recorder epoch
  double dur_us = 0.0;  ///< duration, microseconds
  int tid = 0;          ///< recorder-assigned thread index
};

#if APAN_TRACING_ENABLED

class TraceRecorder {
 public:
  static constexpr bool kCompiledIn = true;
  static constexpr size_t kRingCapacity = 1 << 16;  ///< spans kept per thread

  /// Process-wide recorder. The serve plane records here; a local
  /// recorder (tests) works too but pays a registry scan per span.
  static TraceRecorder& Global();

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Enable();
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record a finished span on the calling thread's ring.
  void Record(const char* name, double ts_us, double dur_us);

  /// Microseconds since this recorder's construction (the trace epoch).
  double NowMicros() const;

  /// All buffered events, oldest-first per thread. Safe to call while
  /// other threads record (they may add events concurrently; nothing
  /// tears).
  std::vector<TraceEvent> Snapshot() const;

  /// Spans overwritten because a ring wrapped (diagnostic).
  uint64_t dropped() const;

  void Clear();

  /// Flush everything buffered to `path` as Chrome trace_event JSON.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;  ///< guards buffers_ growth
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ APAN_GUARDED_BY(mu_);
};

/// \brief RAII span: measures construction→destruction and records it if
/// the recorder is enabled at construction time.
class Span {
 public:
  explicit Span(const char* name)
      : Span(name, &TraceRecorder::Global()) {}
  Span(const char* name, TraceRecorder* recorder) {
    if (recorder != nullptr && recorder->enabled()) {
      recorder_ = recorder;
      name_ = name;
      start_us_ = recorder->NowMicros();
    }
  }
  ~Span() {
    if (recorder_ != nullptr) {
      recorder_->Record(name_, start_us_, recorder_->NowMicros() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

#define APAN_TRACE_CONCAT_INNER(a, b) a##b
#define APAN_TRACE_CONCAT(a, b) APAN_TRACE_CONCAT_INNER(a, b)
#define APAN_TRACE_SPAN(name) \
  ::apan::obs::Span APAN_TRACE_CONCAT(apan_trace_span_, __COUNTER__)(name)

#else  // !APAN_TRACING_ENABLED — no-op stubs, zero cost.

class TraceRecorder {
 public:
  static constexpr bool kCompiledIn = false;
  static constexpr size_t kRingCapacity = 0;

  static TraceRecorder& Global() {
    static TraceRecorder r;
    return r;
  }

  void Enable() {}
  void Disable() {}
  bool enabled() const { return false; }
  void Record(const char*, double, double) {}
  double NowMicros() const { return 0.0; }
  std::vector<TraceEvent> Snapshot() const { return {}; }
  uint64_t dropped() const { return 0; }
  void Clear() {}
  Status WriteChromeTrace(const std::string&) const {
    return Status::FailedPrecondition(
        "tracing compiled out (build with -DAPAN_TRACING=ON)");
  }
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, TraceRecorder*) {}
};

#define APAN_TRACE_SPAN(name) static_cast<void>(0)

#endif  // APAN_TRACING_ENABLED

}  // namespace obs
}  // namespace apan

#endif  // APAN_OBS_TRACE_H_
