// Serve-plane metrics: counters, gauges, and log-bucketed histograms
// behind a named registry.
//
// Design goals (docs/observability.md):
//   * hot-path writes are single relaxed atomic RMWs on per-shard cells —
//     no mutex, no allocation, TSan-clean by construction. A metric is a
//     *family* of cache-line-padded cells; the serve engines index cells
//     by shard id so concurrent writers never share a line;
//   * reads (scrape) aggregate the cells with relaxed loads. Scraping
//     while writers are active is safe and sees a near-point-in-time
//     view — exact totals require quiescence (e.g. after Flush), which
//     is when the benches and the example scrape;
//   * Histogram replaces util::LatencyRecorder (one quantile
//     implementation repo-wide): fixed log-scale buckets — 32 sub-buckets
//     per power of two, so any quantile is exact to within ~3.2% relative
//     bucket width — instead of the old record-everything vector whose
//     Quantile() sorted all samples on every call. The NaN-proof clamp
//     semantics are preserved: q is clamped to [0, 1] and NaN q maps to
//     the max-side extreme; the empty histogram reports 0 everywhere.

#ifndef APAN_OBS_METRICS_H_
#define APAN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace apan {
namespace obs {

namespace internal {
/// One padded atomic so adjacent cells of a family never share a cache
/// line (the whole point of per-shard cells).
struct alignas(64) PaddedAtomic {
  std::atomic<int64_t> v{0};
};
}  // namespace internal

/// \brief Monotonic counter family. Add is one relaxed fetch_add on the
/// chosen cell; Value() sums the cells.
class Counter {
 public:
  explicit Counter(int num_cells);

  void Add(int64_t n = 1) { Add(0, n); }
  void Add(int cell, int64_t n) {
    cells_[static_cast<size_t>(cell)].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  int num_cells() const { return static_cast<int>(cells_.size()); }
  int64_t CellValue(int cell) const {
    return cells_[static_cast<size_t>(cell)].v.load(
        std::memory_order_relaxed);
  }
  int64_t Value() const;

 private:
  std::vector<internal::PaddedAtomic> cells_;
};

/// \brief Last-value / high-water gauge family. Set overwrites the cell;
/// UpdateMax ratchets it upward (the queue high-water pattern).
class Gauge {
 public:
  explicit Gauge(int num_cells);

  void Set(int cell, int64_t v) {
    cells_[static_cast<size_t>(cell)].v.store(v, std::memory_order_relaxed);
  }
  void UpdateMax(int cell, int64_t v);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  int64_t CellValue(int cell) const {
    return cells_[static_cast<size_t>(cell)].v.load(
        std::memory_order_relaxed);
  }
  /// Sum across cells (per-shard depths -> engine-wide depth).
  int64_t Sum() const;
  /// Max across cells (per-shard high-water -> engine-wide high-water).
  int64_t Max() const;

 private:
  std::vector<internal::PaddedAtomic> cells_;
};

/// \brief Fixed-bucket log-scale histogram family for latencies (values
/// are milliseconds by convention, but any nonnegative double works).
///
/// Buckets: 32 linear sub-buckets per power of two over [2^-20, 2^21) ms
/// (~1 ns to ~35 min), plus an underflow bucket for v <= 2^-20 (including
/// v <= 0 and NaN values, which clamp to 0) and an overflow bucket.
/// Record is a handful of relaxed atomic ops (bucket + count + moment
/// accumulators + rare min/max CAS); Quantile walks the aggregated
/// buckets and interpolates within the winning bucket, so its error is
/// bounded by that bucket's width — at most ~3.2% of the value (exactly
/// BucketBounds(v) wide). Results clamp to the exact observed [min, max].
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;
  static constexpr int kMinExp = -20;  ///< smallest octave: [2^-20, 2^-19)
  static constexpr int kMaxExp = 20;   ///< largest octave: [2^20, 2^21)
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp + 1) * kSubBuckets + 2;  // + underflow + overflow

  explicit Histogram(int num_cells);

  void Record(double value) { Record(0, value); }
  void Record(int cell, double value);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  uint64_t count() const;
  /// Sum of recorded values (total milliseconds — the per-stage totals
  /// the fig10 breakdown reports).
  double Sum() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator), 0 for n < 2.
  double StdDev() const;
  double Min() const;  ///< exact observed minimum (0 when empty)
  double Max() const;  ///< exact observed maximum (0 when empty)

  /// \brief q-th quantile by bucket interpolation. `q` is clamped to
  /// [0, 1]; NaN q maps to 1 (the max-side extreme) — the
  /// LatencyRecorder clamp contract, preserved. Empty histogram -> 0.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }

  /// Zeroes all cells. Not atomic with respect to concurrent writers
  /// (a racing Record may land before or after the wipe); callers reset
  /// between runs, at quiescence.
  void Clear();

  /// [lower, upper) of the bucket `value` falls into — the quantile
  /// error bound at that value (tests assert against it).
  static void BucketBounds(double value, double* lower, double* upper);

 private:
  static int BucketIndex(double value);
  static double BucketLower(int index);

  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> sumsq{0.0};
    std::atomic<double> min;
    std::atomic<double> max;
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    Cell();
  };

  std::vector<std::unique_ptr<Cell>> cells_;
};

/// \brief Named metric registry. Get* creates on first use and returns
/// the same stable handle for the same name afterwards (CHECK-fails on a
/// cell-count mismatch — one family, one shape). Handles stay valid for
/// the registry's lifetime; creation is mutex-guarded, the handles
/// themselves are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, int num_cells = 1)
      APAN_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, int num_cells = 1)
      APAN_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, int num_cells = 1)
      APAN_EXCLUDES(mu_);

  /// Point-in-time aggregate of every metric (relaxed reads; safe while
  /// writers are active). Rows are sorted by name.
  struct CounterRow {
    std::string name;
    int64_t total = 0;
    std::vector<int64_t> cells;
  };
  struct GaugeRow {
    std::string name;
    int64_t sum = 0;
    int64_t max = 0;
    std::vector<int64_t> cells;
  };
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    double total_ms = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  struct Snapshot {
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
    const CounterRow* FindCounter(const std::string& name) const;
    const GaugeRow* FindGauge(const std::string& name) const;
    const HistogramRow* FindHistogram(const std::string& name) const;
  };
  Snapshot Scrape() const APAN_EXCLUDES(mu_);

 private:
  /// Guards family *creation* only — the returned handles are lock-free
  /// (cell writes are relaxed atomics; see the header comment).
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      APAN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ APAN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      APAN_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace apan

#endif  // APAN_OBS_METRICS_H_
