// Module base class: parameter registration, train/eval mode, and
// parameter (de)serialization shared by all neural network layers.

#ifndef APAN_NN_MODULE_H_
#define APAN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace apan {
namespace nn {

/// \brief Base class for layers and models.
///
/// Subclasses register their trainable tensors via RegisterParameter and
/// child layers via RegisterChild; Parameters() then yields the transitive
/// closure in registration order (a stable order — optimizers and
/// serialization rely on it).
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its children.
  std::vector<tensor::Tensor> Parameters() const {
    std::vector<tensor::Tensor> out;
    CollectParameters(&out);
    return out;
  }

  /// Total number of trainable scalars.
  int64_t ParameterCount() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.numel();
    return n;
  }

  /// Switches dropout-style layers between train and eval behaviour.
  virtual void SetTraining(bool training) {
    training_ = training;
    for (Module* child : children_) child->SetTraining(training);
  }

  bool training() const { return training_; }

  /// \brief Copies all parameter values out (flattened, in Parameters()
  /// order). Used for checkpointing and for parameter-sharing tests.
  std::vector<float> StateToVector() const {
    std::vector<float> out;
    for (const auto& p : Parameters()) {
      out.insert(out.end(), p.values().begin(), p.values().end());
    }
    return out;
  }

  /// \brief Restores parameter values from StateToVector output.
  /// \return InvalidArgument when the size does not match.
  Status LoadStateFromVector(const std::vector<float>& state) {
    size_t offset = 0;
    auto params = Parameters();
    for (auto& p : params) {
      const size_t n = static_cast<size_t>(p.numel());
      if (offset + n > state.size()) {
        return Status::InvalidArgument("state vector too short");
      }
      std::copy_n(state.begin() + offset, n, p.data());
      offset += n;
    }
    if (offset != state.size()) {
      return Status::InvalidArgument("state vector too long");
    }
    return Status::OK();
  }

 protected:
  void RegisterParameter(tensor::Tensor param) {
    params_.push_back(std::move(param));
  }

  void RegisterChild(Module* child) {
    APAN_CHECK(child != nullptr && child != this);
    children_.push_back(child);
  }

 private:
  void CollectParameters(std::vector<tensor::Tensor>* out) const {
    for (const auto& p : params_) out->push_back(p);
    for (const Module* child : children_) child->CollectParameters(out);
  }

  std::vector<tensor::Tensor> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace apan

#endif  // APAN_NN_MODULE_H_
