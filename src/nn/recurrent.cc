#include "nn/recurrent.h"

#include "tensor/ops.h"

namespace apan {
namespace nn {

using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      xr_(input_dim, hidden_dim, rng, /*bias=*/true),
      hr_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      xz_(input_dim, hidden_dim, rng, /*bias=*/true),
      hz_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      xn_(input_dim, hidden_dim, rng, /*bias=*/true),
      hn_(hidden_dim, hidden_dim, rng, /*bias=*/true) {
  RegisterChild(&xr_);
  RegisterChild(&hr_);
  RegisterChild(&xz_);
  RegisterChild(&hz_);
  RegisterChild(&xn_);
  RegisterChild(&hn_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  APAN_CHECK(x.defined() && h.defined());
  APAN_CHECK_MSG(x.rank() == 2 && x.dim(1) == input_dim_,
                 "GruCell input dim mismatch");
  APAN_CHECK_MSG(h.rank() == 2 && h.dim(1) == hidden_dim_ &&
                     h.dim(0) == x.dim(0),
                 "GruCell hidden state shape mismatch");
  Tensor r = tensor::Sigmoid(tensor::Add(xr_.Forward(x), hr_.Forward(h)));
  Tensor z = tensor::Sigmoid(tensor::Add(xz_.Forward(x), hz_.Forward(h)));
  Tensor n =
      tensor::Tanh(tensor::Add(xn_.Forward(x), tensor::Mul(r, hn_.Forward(h))));
  // h' = (1 - z) * n + z * h = n - z*n + z*h
  Tensor zn = tensor::Mul(z, n);
  Tensor zh = tensor::Mul(z, h);
  return tensor::Add(tensor::Sub(n, zn), zh);
}

}  // namespace nn
}  // namespace apan
