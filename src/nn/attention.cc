#include "nn/attention.h"

#include <cmath>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace apan {
namespace nn {

using tensor::Tensor;
namespace kernels = tensor::kernels;

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads,
                                       Rng* rng, int64_t key_dim,
                                       int64_t value_dim, int64_t query_dim)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(query_dim > 0 ? query_dim : model_dim, model_dim, rng,
          /*bias=*/false),
      wk_(key_dim > 0 ? key_dim : model_dim, model_dim, rng, /*bias=*/false),
      wv_(value_dim > 0 ? value_dim : model_dim, model_dim, rng,
          /*bias=*/false),
      wo_(model_dim, model_dim, rng, /*bias=*/false) {
  APAN_CHECK_MSG(model_dim % num_heads == 0,
                 "model_dim must be divisible by num_heads");
  RegisterChild(&wq_);
  RegisterChild(&wk_);
  RegisterChild(&wv_);
  RegisterChild(&wo_);
}

AttentionOutput MultiHeadAttention::Forward(
    const Tensor& query, const Tensor& keys, const Tensor& values,
    const std::vector<float>* mask) const {
  APAN_CHECK(query.defined() && keys.defined() && values.defined());
  APAN_CHECK_MSG(query.rank() == 2 && keys.rank() == 3 && values.rank() == 3,
                 "attention expects query {b,dq}, keys/values {b,m,dk}");
  const int64_t batch = query.dim(0);
  const int64_t num_keys = keys.dim(1);
  APAN_CHECK(keys.dim(0) == batch && values.dim(0) == batch);
  APAN_CHECK(values.dim(1) == num_keys);
  if (mask != nullptr) {
    APAN_CHECK_MSG(
        mask->size() == static_cast<size_t>(batch * num_keys),
        "attention mask must have batch*num_keys entries");
  }

  if (!tensor::NoGradGuard::GradEnabled()) {
    return ForwardInference(query, keys, values, mask);
  }

  // Project and split heads. Row layout after the projections keeps each
  // (batch, head) block contiguous, so head split/merge are pure reshapes.
  // Q: {b, d} -> {b*h, 1, dh}
  Tensor q = wq_.Forward(query);
  q = tensor::Reshape(q, {batch * num_heads_, 1, head_dim_});
  // K, V: {b, m, d} -> {b, m, h, dh} -> {b, h, m, dh} -> {b*h, m, dh}
  Tensor k = wk_.Forward(keys);
  k = tensor::Reshape(k, {batch, num_keys, num_heads_, head_dim_});
  k = tensor::Permute(k, {0, 2, 1, 3});
  k = tensor::Reshape(k, {batch * num_heads_, num_keys, head_dim_});
  Tensor v = wv_.Forward(values);
  v = tensor::Reshape(v, {batch, num_keys, num_heads_, head_dim_});
  v = tensor::Permute(v, {0, 2, 1, 3});
  v = tensor::Reshape(v, {batch * num_heads_, num_keys, head_dim_});

  // scores = QK^T / sqrt(dh): {b*h, 1, m}
  Tensor scores = tensor::Bmm(q, tensor::Permute(k, {0, 2, 1}));
  scores = tensor::MulScalar(
      scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));

  if (mask != nullptr) {
    // Expand the per-(batch, key) mask across heads as a constant tensor.
    std::vector<float> expanded(
        static_cast<size_t>(batch * num_heads_ * num_keys));
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t h = 0; h < num_heads_; ++h) {
        for (int64_t m = 0; m < num_keys; ++m) {
          expanded[static_cast<size_t>(((b * num_heads_) + h) * num_keys +
                                       m)] =
              (*mask)[static_cast<size_t>(b * num_keys + m)];
        }
      }
    }
    Tensor mask_t = Tensor::FromVector({batch * num_heads_, 1, num_keys},
                                       std::move(expanded));
    scores = tensor::Add(scores, mask_t);
  }

  Tensor attn = tensor::SoftmaxLastDim(scores);  // {b*h, 1, m}
  Tensor context = tensor::Bmm(attn, v);         // {b*h, 1, dh}
  context = tensor::Reshape(context, {batch, model_dim_});
  Tensor out = wo_.Forward(context);

  AttentionOutput result;
  result.output = out;
  result.weights =
      tensor::Reshape(attn, {batch, num_heads_, num_keys}).Detach();
  return result;
}

AttentionOutput MultiHeadAttention::ForwardInference(
    const Tensor& query, const Tensor& keys, const Tensor& values,
    const std::vector<float>* mask) const {
  const int64_t batch = query.dim(0);
  const int64_t num_keys = keys.dim(1);
  const int64_t dq = query.dim(1);
  const int64_t dk = keys.dim(2);
  const int64_t dv = values.dim(2);
  // The generic path gets these checks from Linear::Forward; the raw
  // kernels below index the weight buffers directly, so a mismatch here
  // must abort instead of reading out of bounds.
  APAN_CHECK_MSG(dq == wq_.in_features() && dk == wk_.in_features() &&
                     dv == wv_.in_features(),
                 "attention input feature dimension mismatch");
  // The raw GEMMs below apply no bias; if the projections ever grow one,
  // serving must not silently diverge from the training graph.
  APAN_CHECK_MSG(!wq_.has_bias() && !wk_.has_bias() && !wv_.has_bias() &&
                     !wo_.has_bias(),
                 "fused attention path assumes bias-free projections");

  // Projections to {batch, d} / {batch*m, d}; the 3-D key/value tensors
  // are already row-major {b*m, dk}, so no flatten copy is needed.
  Tensor q = tensor::ForwardBuffer({batch, model_dim_}, /*zero=*/false);
  kernels::MatMul(query.data(), wq_.weight().data(), q.data(), batch, dq,
                  model_dim_);
  Tensor k = tensor::ForwardBuffer({batch * num_keys, model_dim_},
                                   /*zero=*/false);
  kernels::MatMul(keys.data(), wk_.weight().data(), k.data(),
                  batch * num_keys, dk, model_dim_);
  Tensor v = tensor::ForwardBuffer({batch * num_keys, model_dim_},
                                   /*zero=*/false);
  kernels::MatMul(values.data(), wv_.weight().data(), v.data(),
                  batch * num_keys, dv, model_dim_);

  // Strided scores replace the Permute+Reshape head split; the softmax
  // folds the per-(batch, key) mask in without expanding it across heads.
  Tensor attn = tensor::ForwardBuffer({batch, num_heads_, num_keys},
                                      /*zero=*/false);
  kernels::AttentionScores(
      q.data(), k.data(), attn.data(), batch, num_heads_, num_keys,
      head_dim_, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  kernels::MaskedSoftmax(attn.data(),
                         mask != nullptr ? mask->data() : nullptr,
                         attn.data(), batch, num_heads_, num_keys);

  Tensor context = tensor::ForwardBuffer({batch, model_dim_}, /*zero=*/false);
  kernels::AttentionContext(attn.data(), v.data(), context.data(), batch,
                            num_heads_, num_keys, head_dim_);
  Tensor out = tensor::ForwardBuffer({batch, model_dim_}, /*zero=*/false);
  kernels::MatMul(context.data(), wo_.weight().data(), out.data(), batch,
                  model_dim_, model_dim_);

  AttentionOutput result;
  result.output = out;
  result.weights = attn;  // already {batch, heads, num_keys}, no grad
  return result;
}

}  // namespace nn
}  // namespace apan
