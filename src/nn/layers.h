// Core feed-forward layers: Linear, Mlp, LayerNorm, Dropout, EmbeddingTable.

#ifndef APAN_NN_LAYERS_H_
#define APAN_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace apan {
namespace nn {

/// \brief Affine map y = xW + b over the last dimension.
///
/// Accepts rank-2 {n, in} or rank-3 {b, m, in} inputs (rank-3 inputs are
/// flattened to rows, transformed, and reshaped back).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  /// With fuse_relu the ReLU epilogue runs inside the bias application
  /// (one pass, the AddBiasRelu kernel) — bitwise-identical to
  /// Relu(Forward(x)).
  tensor::Tensor Forward(const tensor::Tensor& x,
                         bool fuse_relu = false) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool has_bias() const { return bias_.defined(); }
  const tensor::Tensor& weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  tensor::Tensor weight_;  // {in, out}
  tensor::Tensor bias_;    // {out} or undefined
};

/// \brief Two-layer feed-forward network with ReLU, matching the paper's
/// "two-layer feedforward neural network with a hidden size of 80" (§4.4).
class Mlp : public Module {
 public:
  Mlp(int64_t in_features, int64_t hidden, int64_t out_features, Rng* rng,
      float dropout = 0.0f);

  tensor::Tensor Forward(const tensor::Tensor& x, Rng* rng = nullptr) const;

 private:
  Linear fc1_;
  Linear fc2_;
  float dropout_;
};

/// \brief Layer normalization with learnable gain and bias (Ba et al.,
/// 2016) over the last dimension — the normalization APAN's encoder uses
/// after the attention residual (paper Eq. 5).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// \brief Fused residual-add + LayerNorm: y = LN(x + residual). In
  /// inference mode this is one kernel pass with no intermediate sum
  /// tensor; under gradient recording it composes Add + Forward (the
  /// same graph the encoder built before the fusion).
  tensor::Tensor ForwardResidual(const tensor::Tensor& x,
                                 const tensor::Tensor& residual) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  float eps_;
  tensor::Tensor gain_;  // {dim}
  tensor::Tensor bias_;  // {dim}
};

/// \brief Lookup table of trainable row vectors. Used for the positional
/// encoding of mailbox slots (paper §3.3) and for shallow embedding
/// baselines.
class EmbeddingTable : public Module {
 public:
  EmbeddingTable(int64_t num_embeddings, int64_t dim, Rng* rng,
                 float init_scale = 0.1f);

  /// Gathers rows: returns {indices.size(), dim}.
  tensor::Tensor Forward(const std::vector<int64_t>& indices) const;

  /// The full table {num_embeddings, dim}.
  const tensor::Tensor& table() const { return table_; }

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  tensor::Tensor table_;
};

}  // namespace nn
}  // namespace apan

#endif  // APAN_NN_LAYERS_H_
