// GRU cell — the memory updater of the TGN baseline and of JODIE/DyRep's
// recurrent state updates.

#ifndef APAN_NN_RECURRENT_H_
#define APAN_NN_RECURRENT_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace apan {
namespace nn {

/// \brief Standard GRU cell (Cho et al., 2014).
///
///   r = sigmoid(x Wxr + h Whr + br)
///   z = sigmoid(x Wxz + h Whz + bz)
///   n = tanh(x Wxn + r * (h Whn + bn))
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// \param x {batch, input_dim} \param h {batch, hidden_dim}
  /// \return h' {batch, hidden_dim}
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  int64_t input_dim() const { return input_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  Linear xr_, hr_;
  Linear xz_, hz_;
  Linear xn_, hn_;
};

}  // namespace nn
}  // namespace apan

#endif  // APAN_NN_RECURRENT_H_
