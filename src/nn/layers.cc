#include "nn/layers.h"

#include "tensor/kernels.h"

namespace apan {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features) {
  APAN_CHECK(in_features > 0 && out_features > 0 && rng != nullptr);
  weight_ = Tensor::XavierUniform(in_features, out_features, rng);
  RegisterParameter(weight_);
  if (bias) {
    bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
    RegisterParameter(bias_);
  }
}

Tensor Linear::Forward(const Tensor& x, bool fuse_relu) const {
  APAN_CHECK(x.defined());
  APAN_CHECK_MSG(x.shape().back() == in_features_,
                 "Linear input feature dimension mismatch");
  Tensor input = x;
  Shape orig = x.shape();
  const bool needs_flatten = x.rank() > 2;
  if (needs_flatten) {
    input = tensor::Reshape(x, {x.numel() / in_features_, in_features_});
  }
  Tensor out = tensor::MatMul(input, weight_);
  if (bias_.defined()) {
    out = fuse_relu ? tensor::AddBiasRelu(out, bias_)
                    : tensor::Add(out, bias_);
  } else if (fuse_relu) {
    out = tensor::Relu(out);
  }
  if (needs_flatten) {
    Shape out_shape = orig;
    out_shape.back() = out_features_;
    out = tensor::Reshape(out, out_shape);
  }
  return out;
}

Mlp::Mlp(int64_t in_features, int64_t hidden, int64_t out_features, Rng* rng,
         float dropout)
    : fc1_(in_features, hidden, rng),
      fc2_(hidden, out_features, rng),
      dropout_(dropout) {
  RegisterChild(&fc1_);
  RegisterChild(&fc2_);
}

Tensor Mlp::Forward(const Tensor& x, Rng* rng) const {
  Tensor h = fc1_.Forward(x, /*fuse_relu=*/true);
  if (dropout_ > 0.0f && training() && rng != nullptr) {
    h = tensor::Dropout(h, dropout_, /*training=*/true, rng);
  }
  return fc2_.Forward(h);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  APAN_CHECK(dim > 0);
  gain_ = Tensor::Ones({dim}, /*requires_grad=*/true);
  bias_ = Tensor::Zeros({dim}, /*requires_grad=*/true);
  RegisterParameter(gain_);
  RegisterParameter(bias_);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  APAN_CHECK_MSG(x.shape().back() == dim_,
                 "LayerNorm dimension mismatch");
  Tensor normalized = tensor::RowNormalize(x, eps_);
  return tensor::Add(tensor::Mul(normalized, gain_), bias_);
}

Tensor LayerNorm::ForwardResidual(const Tensor& x,
                                  const Tensor& residual) const {
  APAN_CHECK(x.defined() && residual.defined());
  APAN_CHECK_MSG(x.shape() == residual.shape() &&
                     x.shape().back() == dim_,
                 "LayerNorm residual shape mismatch");
  if (tensor::NoGradGuard::GradEnabled()) {
    return Forward(tensor::Add(x, residual));
  }
  const int64_t rows = x.numel() / dim_;
  Tensor out = tensor::ForwardBuffer(x.shape(), /*zero=*/false);
  tensor::kernels::ResidualLayerNorm(x.data(), residual.data(), gain_.data(),
                                     bias_.data(), out.data(), rows, dim_,
                                     eps_);
  return out;
}

EmbeddingTable::EmbeddingTable(int64_t num_embeddings, int64_t dim, Rng* rng,
                               float init_scale)
    : num_embeddings_(num_embeddings), dim_(dim) {
  APAN_CHECK(num_embeddings > 0 && dim > 0 && rng != nullptr);
  table_ = Tensor::Randn({num_embeddings, dim}, rng, init_scale,
                         /*requires_grad=*/true);
  RegisterParameter(table_);
}

Tensor EmbeddingTable::Forward(const std::vector<int64_t>& indices) const {
  return tensor::GatherRows(table_, indices);
}

}  // namespace nn
}  // namespace apan
