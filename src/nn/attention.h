// Scaled dot-product multi-head attention (Vaswani et al., 2017) — the
// encoder core of APAN (paper §3.3, Eq. 3-4) and of the TGAT/TGN baselines.

#ifndef APAN_NN_ATTENTION_H_
#define APAN_NN_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace apan {
namespace nn {

/// Output of an attention call.
struct AttentionOutput {
  /// Attended representation, {batch, model_dim}.
  tensor::Tensor output;
  /// Detached attention weights {batch, heads, num_keys}; rows over keys
  /// sum to 1. Exposed for the interpretability analysis in paper §3.6.
  tensor::Tensor weights;
};

/// \brief Multi-head attention with a single query per batch element.
///
/// APAN attends from the node's last embedding z(t−) (one query) over its
/// mailbox (m keys/values); TGAT/TGN attend from a node over its sampled
/// temporal neighbors. Both are covered by the {batch, 1 query, m keys}
/// case, which this class implements without materializing a query axis.
class MultiHeadAttention : public Module {
 public:
  /// `model_dim` must be divisible by `num_heads`. Query, keys and values
  /// may have their own input dims (0 = model_dim); they are projected to
  /// model_dim internally.
  MultiHeadAttention(int64_t model_dim, int64_t num_heads, Rng* rng,
                     int64_t key_dim = 0, int64_t value_dim = 0,
                     int64_t query_dim = 0);

  /// \param query  {batch, query_dim}
  /// \param keys   {batch, num_keys, key_dim}
  /// \param values {batch, num_keys, value_dim}
  /// \param mask   optional, size batch*num_keys (row-major); entries are
  ///               added to the pre-softmax scores: 0 keeps a slot, a large
  ///               negative value (kMaskedOut) removes it.
  AttentionOutput Forward(const tensor::Tensor& query,
                          const tensor::Tensor& keys,
                          const tensor::Tensor& values,
                          const std::vector<float>* mask = nullptr) const;

  int64_t model_dim() const { return model_dim_; }
  int64_t num_heads() const { return num_heads_; }

  /// Additive mask value that suppresses a slot.
  static constexpr float kMaskedOut = -1e9f;

 private:
  /// Kernel-fused forward for inference mode (NoGradGuard active): no
  /// autograd graph, no Permute/Reshape head-split materializations, no
  /// batch*heads*num_keys mask expansion — the projections feed strided
  /// AttentionScores / MaskedSoftmax / AttentionContext kernels and all
  /// intermediates come from the active TensorArena.
  AttentionOutput ForwardInference(const tensor::Tensor& query,
                                   const tensor::Tensor& keys,
                                   const tensor::Tensor& values,
                                   const std::vector<float>* mask) const;

  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace nn
}  // namespace apan

#endif  // APAN_NN_ATTENTION_H_
