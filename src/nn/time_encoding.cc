#include "nn/time_encoding.h"

#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace nn {

using tensor::Tensor;

TimeEncoding::TimeEncoding(int64_t dim, Rng* rng) : dim_(dim) {
  APAN_CHECK(dim > 0 && rng != nullptr);
  // Geometric frequency ladder (transformer-style init), then trainable.
  std::vector<float> freqs(static_cast<size_t>(dim));
  for (int64_t i = 0; i < dim; ++i) {
    freqs[static_cast<size_t>(i)] = static_cast<float>(
        1.0 / std::pow(10.0, 4.0 * static_cast<double>(i) /
                                 static_cast<double>(dim)));
  }
  omega_ = Tensor::FromVector({1, dim}, std::move(freqs),
                              /*requires_grad=*/true);
  phase_ = Tensor::Zeros({dim}, /*requires_grad=*/true);
  RegisterParameter(omega_);
  RegisterParameter(phase_);
}

Tensor TimeEncoding::Forward(const std::vector<double>& deltas) const {
  APAN_CHECK_MSG(!deltas.empty(), "TimeEncoding on empty batch");
  std::vector<float> col(deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    col[i] = static_cast<float>(deltas[i]);
  }
  Tensor dt = Tensor::FromVector({static_cast<int64_t>(deltas.size()), 1},
                                 std::move(col));
  // {n,1} x {1,d} -> {n,d}; broadcasting dt across frequencies.
  Tensor scaled = tensor::MatMul(dt, omega_);
  return tensor::Cos(tensor::Add(scaled, phase_));
}

}  // namespace nn
}  // namespace apan
