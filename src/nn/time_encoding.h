// Bochner time-encoding kernel from TGAT (Xu et al., ICLR 2020):
//   Phi(dt) = cos(dt * omega + phi)
// with learnable frequencies omega and phases phi. APAN's paper (§3.6)
// names this kernel as the drop-in replacement for its positional
// encoding; the TGAT and TGN baselines require it.

#ifndef APAN_NN_TIME_ENCODING_H_
#define APAN_NN_TIME_ENCODING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace apan {
namespace nn {

/// \brief Maps time deltas to d-dimensional embeddings.
class TimeEncoding : public Module {
 public:
  TimeEncoding(int64_t dim, Rng* rng);

  /// \param deltas one time delta per row.
  /// \return {deltas.size(), dim} encoding.
  tensor::Tensor Forward(const std::vector<double>& deltas) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  tensor::Tensor omega_;  // {1, dim} frequencies
  tensor::Tensor phase_;  // {dim} phases
};

}  // namespace nn
}  // namespace apan

#endif  // APAN_NN_TIME_ENCODING_H_
