// Chronological batching of event streams.
//
// CTDG models consume the stream in time order, `batch_size` events at a
// time (paper §4.4 uses batches of 200 for train/val/test alike).

#ifndef APAN_DATA_BATCHING_H_
#define APAN_DATA_BATCHING_H_

#include <cstddef>

#include "data/dataset.h"

namespace apan {
namespace data {

/// Half-open range [begin, end) of event indices forming one batch.
struct Batch {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// \brief Iterates a split in fixed-size chronological chunks (the last
/// chunk may be smaller).
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, Split split, size_t batch_size)
      : batch_size_(batch_size == 0 ? 1 : batch_size) {
    const auto [lo, hi] = dataset.SplitRange(split);
    cursor_ = lo;
    end_ = hi;
  }

  /// Constructs over an explicit range (used by streaming benches).
  BatchIterator(size_t begin, size_t end, size_t batch_size)
      : batch_size_(batch_size == 0 ? 1 : batch_size),
        cursor_(begin),
        end_(end) {}

  bool Done() const { return cursor_ >= end_; }

  /// Returns the next batch and advances. Calling past the end yields an
  /// empty batch.
  Batch Next() {
    Batch b;
    b.begin = cursor_;
    b.end = std::min(end_, cursor_ + batch_size_);
    cursor_ = b.end;
    return b;
  }

  /// Number of batches remaining.
  size_t Remaining() const {
    if (Done()) return 0;
    return (end_ - cursor_ + batch_size_ - 1) / batch_size_;
  }

 private:
  size_t batch_size_;
  size_t cursor_ = 0;
  size_t end_ = 0;
};

}  // namespace data
}  // namespace apan

#endif  // APAN_DATA_BATCHING_H_
