#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace apan {
namespace data {

Status Dataset::SplitByFraction(double train_frac, double val_frac) {
  if (train_frac <= 0 || val_frac < 0 || train_frac + val_frac > 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  const auto n = events.size();
  train_end = static_cast<size_t>(static_cast<double>(n) * train_frac);
  val_end = static_cast<size_t>(static_cast<double>(n) *
                                (train_frac + val_frac));
  train_end = std::min(train_end, n);
  val_end = std::clamp(val_end, train_end, n);
  return Status::OK();
}

int64_t Dataset::CountLabeled(Split split) const {
  const auto [lo, hi] = SplitRange(split);
  int64_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (labels[i] >= 0) ++count;
  }
  return count;
}

int64_t Dataset::CountPositive(Split split) const {
  const auto [lo, hi] = SplitRange(split);
  int64_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (labels[i] == 1) ++count;
  }
  return count;
}

std::vector<bool> Dataset::NodesSeenInTrain() const {
  std::vector<bool> seen(static_cast<size_t>(num_nodes), false);
  for (size_t i = 0; i < train_end; ++i) {
    seen[static_cast<size_t>(events[i].src)] = true;
    seen[static_cast<size_t>(events[i].dst)] = true;
  }
  return seen;
}

Dataset::Table1Stats Dataset::ComputeTable1Stats() const {
  Table1Stats s;
  s.num_edges = num_events();
  s.num_nodes = num_nodes;
  s.feature_dim = feature_dim();
  const auto seen_train = NodesSeenInTrain();
  s.nodes_in_train = static_cast<int64_t>(
      std::count(seen_train.begin(), seen_train.end(), true));
  std::unordered_set<graph::NodeId> eval_nodes;
  for (size_t i = train_end; i < events.size(); ++i) {
    eval_nodes.insert(events[i].src);
    eval_nodes.insert(events[i].dst);
  }
  for (graph::NodeId v : eval_nodes) {
    if (seen_train[static_cast<size_t>(v)]) {
      ++s.old_nodes_in_eval;
    } else {
      ++s.unseen_nodes_in_eval;
    }
  }
  if (!events.empty()) {
    s.timespan = events.back().timestamp - events.front().timestamp;
  }
  for (int8_t l : labels) {
    if (l >= 0) ++s.labeled_interactions;
  }
  return s;
}

Status Dataset::Validate() const {
  if (events.size() != labels.size()) {
    return Status::Internal("labels not aligned with events");
  }
  if (features.num_edges() != num_events()) {
    return Status::Internal("features not aligned with events");
  }
  double last_t = -1.0;
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 ||
        e.dst >= num_nodes) {
      return Status::Internal(
          internal::StrCat("event ", i, " endpoint out of range"));
    }
    if (e.timestamp < last_t) {
      return Status::Internal(
          internal::StrCat("event ", i, " breaks timestamp order"));
    }
    last_t = e.timestamp;
    if (e.edge_id != static_cast<graph::EdgeId>(i)) {
      return Status::Internal(
          internal::StrCat("event ", i, " has edge_id ", e.edge_id,
                           "; expected dense event order"));
    }
  }
  if (train_end > events.size() || val_end > events.size() ||
      train_end > val_end) {
    return Status::Internal("split boundaries out of order");
  }
  return Status::OK();
}

}  // namespace data
}  // namespace apan
