// CSV import/export in the JODIE dataset layout:
//   src,dst,timestamp,label,f0,f1,...,f{d-1}
// one row per temporal edge, rows sorted by timestamp. This is the format
// of the public Wikipedia/Reddit files the paper uses, so a user with
// access to those datasets can run every experiment on the real data.

#ifndef APAN_DATA_CSV_H_
#define APAN_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace apan {
namespace data {

/// Writes `dataset` to `path`. Overwrites existing files.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// \brief Reads a dataset from `path`.
/// \param name stored on the result; \param label_kind semantic of the
/// label column. Node ids are compacted; the split defaults to 70/15/15.
Result<Dataset> ReadCsv(const std::string& path, const std::string& name,
                        LabelKind label_kind);

}  // namespace data
}  // namespace apan

#endif  // APAN_DATA_CSV_H_
