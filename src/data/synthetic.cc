#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>
#include <vector>

#include "util/random.h"

namespace apan {
namespace data {

SyntheticConfig SyntheticConfig::WikipediaLike() {
  SyntheticConfig c;
  c.name = "wikipedia-like";
  c.num_users = 700;
  c.num_items = 300;
  c.num_events = 15000;
  c.repeat_prob = 0.85;
  c.preference_candidates = 8;
  c.feature_noise = 0.25;
  c.unseen_user_fraction = 0.19;
  c.label_kind = LabelKind::kNodeDynamic;
  c.risky_user_fraction = 0.03;
  c.risky_positive_prob = 0.05;
  c.seed = 20210620;
  return c;
}

SyntheticConfig SyntheticConfig::RedditLike() {
  SyntheticConfig c;
  c.name = "reddit-like";
  c.num_users = 900;
  c.num_items = 150;
  c.num_events = 30000;
  c.repeat_prob = 0.88;
  c.repeat_window = 3;
  c.preference_candidates = 8;
  c.feature_noise = 0.25;
  c.unseen_user_fraction = 0.012;
  c.label_kind = LabelKind::kNodeDynamic;
  c.risky_user_fraction = 0.02;
  c.risky_positive_prob = 0.03;
  c.seed = 20210621;
  return c;
}

SyntheticConfig SyntheticConfig::AlipayLike() {
  SyntheticConfig c;
  c.name = "alipay-like";
  c.num_users = 4000;
  c.num_items = 0;  // general transaction graph
  c.num_events = 40000;
  c.repeat_prob = 0.6;
  c.preference_candidates = 6;
  c.feature_noise = 0.3;
  c.timespan = 14.0;
  c.unseen_user_fraction = 0.02;
  c.label_kind = LabelKind::kEdge;
  c.num_fraud_communities = 10;
  c.fraud_community_size = 8;
  c.fraud_event_prob = 0.01;
  c.label_feature_shift = 1.0;
  c.seed = 20210622;
  return c;
}

SyntheticConfig SyntheticConfig::Scaled(double factor) const {
  SyntheticConfig c = *this;
  factor = std::max(factor, 0.05);
  c.num_users = std::max<int64_t>(
      10, static_cast<int64_t>(static_cast<double>(num_users) * factor));
  if (num_items > 0) {
    c.num_items = std::max<int64_t>(
        5, static_cast<int64_t>(static_cast<double>(num_items) * factor));
  }
  c.num_events = std::max<int64_t>(
      100, static_cast<int64_t>(static_cast<double>(num_events) * factor));
  return c;
}

namespace {

/// Draws feature_dim-dim features as a random projection of the endpoint
/// latent vectors plus noise (and an optional label shift direction).
class FeatureProjector {
 public:
  FeatureProjector(int64_t feature_dim, int64_t latent_dim, Rng* rng)
      : feature_dim_(feature_dim), latent_dim_(latent_dim) {
    proj_.resize(static_cast<size_t>(feature_dim * 2 * latent_dim));
    for (auto& w : proj_) {
      w = static_cast<float>(
          rng->Normal(0.0, 1.0 / std::sqrt(2.0 * latent_dim)));
    }
    shift_dir_.resize(static_cast<size_t>(feature_dim));
    for (auto& w : shift_dir_) {
      w = static_cast<float>(rng->Normal(0.0, 1.0));
    }
    float norm = 0.0f;
    for (float w : shift_dir_) norm += w * w;
    norm = std::sqrt(norm);
    for (auto& w : shift_dir_) w /= norm;
  }

  std::vector<float> Make(const std::vector<float>& src_latent,
                          const std::vector<float>& dst_latent,
                          double noise, double shift, Rng* rng) const {
    std::vector<float> out(static_cast<size_t>(feature_dim_), 0.0f);
    for (int64_t f = 0; f < feature_dim_; ++f) {
      float acc = 0.0f;
      const float* row = proj_.data() + f * 2 * latent_dim_;
      for (int64_t k = 0; k < latent_dim_; ++k) {
        acc += row[k] * src_latent[static_cast<size_t>(k)];
        acc += row[latent_dim_ + k] * dst_latent[static_cast<size_t>(k)];
      }
      acc += static_cast<float>(rng->Normal(0.0, noise));
      acc += static_cast<float>(shift) * shift_dir_[static_cast<size_t>(f)];
      out[static_cast<size_t>(f)] = acc;
    }
    return out;
  }

 private:
  int64_t feature_dim_;
  int64_t latent_dim_;
  std::vector<float> proj_;
  std::vector<float> shift_dir_;
};

std::vector<std::vector<float>> MakeLatents(int64_t n, int64_t k, Rng* rng) {
  std::vector<std::vector<float>> latents(static_cast<size_t>(n));
  for (auto& v : latents) {
    v.resize(static_cast<size_t>(k));
    for (auto& x : v) x = static_cast<float>(rng->Normal());
  }
  return latents;
}

}  // namespace

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_users <= 1 || config.num_events <= 0 ||
      config.feature_dim <= 0 || config.latent_dim <= 0) {
    return Status::InvalidArgument("synthetic config has non-positive sizes");
  }
  if (config.num_items < 0 || config.timespan <= 0.0) {
    return Status::InvalidArgument("invalid items/timespan");
  }
  if (config.label_kind == LabelKind::kEdge && config.num_items > 0) {
    return Status::InvalidArgument(
        "edge-labeled (fraud) generation requires a general graph "
        "(num_items == 0)");
  }
  const bool bipartite = config.num_items > 0;
  const int64_t num_nodes = config.num_users + config.num_items;

  Rng rng(config.seed);
  Rng feature_rng = rng.Fork(1);
  Rng label_rng = rng.Fork(2);

  Dataset ds;
  ds.name = config.name;
  ds.num_nodes = num_nodes;
  ds.num_users = config.num_users;
  ds.label_kind = config.label_kind;
  ds.features = graph::EdgeFeatureStore(config.feature_dim);
  ds.events.reserve(static_cast<size_t>(config.num_events));
  ds.labels.reserve(static_cast<size_t>(config.num_events));

  const auto latents = MakeLatents(num_nodes, config.latent_dim, &rng);
  FeatureProjector projector(config.feature_dim, config.latent_dim,
                             &feature_rng);

  // Late-start (unseen) cohort: a contiguous block of the *least active*
  // user ranks so they rarely dominate the stream once admitted.
  const int64_t num_late = static_cast<int64_t>(
      static_cast<double>(config.num_users) * config.unseen_user_fraction);
  const int64_t late_begin = config.num_users - num_late;
  const int64_t late_start_event = static_cast<int64_t>(
      static_cast<double>(config.num_events) * config.late_start_fraction);

  // Risky users for node labels.
  std::vector<bool> risky(static_cast<size_t>(config.num_users), false);
  if (config.label_kind == LabelKind::kNodeDynamic) {
    const int64_t num_risky = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(config.num_users) *
                                config.risky_user_fraction));
    for (int64_t i = 0; i < num_risky; ++i) {
      risky[static_cast<size_t>(
          label_rng.UniformInt(static_cast<uint64_t>(config.num_users)))] =
          true;
    }
  }

  // Fraud communities for edge labels.
  std::vector<std::vector<graph::NodeId>> communities;
  std::vector<bool> in_community(static_cast<size_t>(num_nodes), false);
  if (config.label_kind == LabelKind::kEdge &&
      config.num_fraud_communities > 0) {
    for (int64_t c = 0; c < config.num_fraud_communities; ++c) {
      std::vector<graph::NodeId> members;
      while (members.size() <
             static_cast<size_t>(config.fraud_community_size)) {
        const auto v = static_cast<graph::NodeId>(
            label_rng.UniformInt(static_cast<uint64_t>(num_nodes)));
        if (!in_community[static_cast<size_t>(v)]) {
          in_community[static_cast<size_t>(v)] = true;
          members.push_back(v);
        }
      }
      communities.push_back(std::move(members));
    }
  }

  // Per-user recent interaction partners (repeat structure).
  std::vector<std::deque<graph::NodeId>> recent(
      static_cast<size_t>(config.num_users));

  const double rate =
      static_cast<double>(config.num_events) / config.timespan;
  double t = 0.0;

  auto pick_user = [&](int64_t event_index) -> graph::NodeId {
    const bool allow_late = event_index >= late_start_event;
    // Late users enter with a small boost so the cohort actually shows up.
    if (allow_late && num_late > 0 && rng.Bernoulli(0.08)) {
      return late_begin +
             static_cast<graph::NodeId>(
                 rng.UniformInt(static_cast<uint64_t>(num_late)));
    }
    const int64_t pool = allow_late ? config.num_users : late_begin;
    return static_cast<graph::NodeId>(rng.Zipf(
        static_cast<uint64_t>(std::max<int64_t>(pool, 1)),
        config.user_activity_alpha));
  };

  auto pick_partner = [&](graph::NodeId user) -> graph::NodeId {
    auto& hist = recent[static_cast<size_t>(user)];
    if (!hist.empty() && rng.Bernoulli(config.repeat_prob)) {
      return hist[rng.UniformInt(hist.size())];
    }
    // Preference-guided pick: draw a few candidates, keep the best latent
    // match.
    graph::NodeId best = -1;
    float best_score = -1e30f;
    for (int64_t c = 0; c < config.preference_candidates; ++c) {
      graph::NodeId cand;
      if (bipartite) {
        cand = config.num_users +
               static_cast<graph::NodeId>(
                   rng.Zipf(static_cast<uint64_t>(config.num_items),
                            config.item_popularity_alpha));
      } else {
        do {
          cand = static_cast<graph::NodeId>(
              rng.Zipf(static_cast<uint64_t>(config.num_users),
                       config.user_activity_alpha));
        } while (cand == user);
      }
      float score = 0.0f;
      const auto& pu = latents[static_cast<size_t>(user)];
      const auto& qi = latents[static_cast<size_t>(cand)];
      for (int64_t k = 0; k < config.latent_dim; ++k) {
        score += pu[static_cast<size_t>(k)] * qi[static_cast<size_t>(k)];
      }
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    return best;
  };

  for (int64_t i = 0; i < config.num_events; ++i) {
    t += rng.Exponential(rate);
    graph::NodeId src, dst;
    int8_t label;
    double shift = 0.0;

    const bool fraud_event =
        config.label_kind == LabelKind::kEdge && !communities.empty() &&
        label_rng.Bernoulli(config.fraud_event_prob);
    if (fraud_event) {
      const auto& community =
          communities[label_rng.UniformInt(communities.size())];
      src = community[label_rng.UniformInt(community.size())];
      do {
        dst = community[label_rng.UniformInt(community.size())];
      } while (dst == src);
      label = 1;
      shift = config.label_feature_shift;
    } else {
      src = pick_user(i);
      dst = pick_partner(src);
      if (config.label_kind == LabelKind::kNodeDynamic) {
        const bool positive =
            risky[static_cast<size_t>(src)] &&
            label_rng.Bernoulli(config.risky_positive_prob);
        if (positive) {
          label = 1;
          shift = config.label_feature_shift;
        } else if (label_rng.Bernoulli(config.negative_label_prob)) {
          label = 0;
        } else {
          label = -1;
        }
      } else {
        label = label_rng.Bernoulli(config.negative_label_prob) ? 0 : -1;
      }
    }

    // Maintain repeat structure for both endpoints that are users.
    auto remember = [&](graph::NodeId user, graph::NodeId partner) {
      if (user < 0 || user >= config.num_users) return;
      auto& hist = recent[static_cast<size_t>(user)];
      hist.push_back(partner);
      while (hist.size() > static_cast<size_t>(config.repeat_window)) {
        hist.pop_front();
      }
    };
    remember(src, dst);
    if (!bipartite) remember(dst, src);

    const auto feat =
        projector.Make(latents[static_cast<size_t>(src)],
                       latents[static_cast<size_t>(dst)],
                       config.feature_noise, shift, &feature_rng);
    const graph::EdgeId edge_id = ds.features.Append(feat);
    ds.events.push_back({src, dst, t, edge_id});
    ds.labels.push_back(label);
  }

  APAN_RETURN_NOT_OK(ds.SplitByFraction(0.70, 0.15));
  APAN_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace data
}  // namespace apan
