// Temporal-graph dataset container with chronological splits.

#ifndef APAN_DATA_DATASET_H_
#define APAN_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_features.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace apan {
namespace data {

/// What the per-event binary label describes.
enum class LabelKind {
  kNodeDynamic,  ///< Wikipedia/Reddit: state change of the source node
                 ///< (e.g. "user banned") attached to this event.
  kEdge,         ///< Alipay: the interaction itself is fraudulent.
};

/// Which chronological split an event belongs to.
enum class Split { kTrain, kValidation, kTest };

/// \brief An in-memory CTDG dataset: time-sorted events, per-event features
/// and labels, and a 70/15/15 (or custom) chronological split.
///
/// Mirrors the JODIE dataset format the paper uses: bipartite user/item
/// interactions; `labels[i]` is 1/0 for labeled events and -1 when the
/// event carries no label.
struct Dataset {
  std::string name;
  int64_t num_nodes = 0;
  int64_t num_users = 0;  ///< Users are ids [0, num_users); items the rest.
  std::vector<graph::Event> events;
  graph::EdgeFeatureStore features{1};
  std::vector<int8_t> labels;
  LabelKind label_kind = LabelKind::kNodeDynamic;

  /// Event-index split boundaries: [0, train_end) train,
  /// [train_end, val_end) validation, [val_end, events.size()) test.
  size_t train_end = 0;
  size_t val_end = 0;

  int64_t feature_dim() const { return features.dim(); }
  int64_t num_events() const { return static_cast<int64_t>(events.size()); }

  Split SplitOf(size_t event_index) const {
    if (event_index < train_end) return Split::kTrain;
    if (event_index < val_end) return Split::kValidation;
    return Split::kTest;
  }

  /// [begin, end) event-index range of a split.
  std::pair<size_t, size_t> SplitRange(Split split) const {
    switch (split) {
      case Split::kTrain:
        return {0, train_end};
      case Split::kValidation:
        return {train_end, val_end};
      case Split::kTest:
        return {val_end, events.size()};
    }
    return {0, 0};
  }

  /// \brief Assigns train/val/test boundaries by event fraction (the
  /// paper's 70%-15%-15%). Fractions must be positive and sum to <= 1.
  Status SplitByFraction(double train_frac, double val_frac);

  /// Number of labeled events (label >= 0) within a split.
  int64_t CountLabeled(Split split) const;
  /// Number of positive labels within a split.
  int64_t CountPositive(Split split) const;

  /// Nodes that appear in the training range.
  std::vector<bool> NodesSeenInTrain() const;
  /// \brief Statistics row matching the paper's Table 1: nodes in train,
  /// "old" nodes in val+test (seen in train) and unseen nodes in val+test.
  struct Table1Stats {
    int64_t num_edges = 0;
    int64_t num_nodes = 0;
    int64_t feature_dim = 0;
    int64_t nodes_in_train = 0;
    int64_t old_nodes_in_eval = 0;
    int64_t unseen_nodes_in_eval = 0;
    double timespan = 0.0;
    int64_t labeled_interactions = 0;
  };
  Table1Stats ComputeTable1Stats() const;

  /// Consistency checks: sorted timestamps, aligned array sizes, valid ids.
  Status Validate() const;
};

}  // namespace data
}  // namespace apan

#endif  // APAN_DATA_DATASET_H_
