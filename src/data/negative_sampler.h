// Time-aware negative sampling for the link-prediction loss (paper Eq. 7).
//
// The paper's negative pool is dynamic: "nodes that have never interacted
// cannot be sampled as negative data". This sampler tracks destination
// nodes as the stream advances and draws negatives uniformly from the
// already-seen pool, optionally rejecting the true destination.

#ifndef APAN_DATA_NEGATIVE_SAMPLER_H_
#define APAN_DATA_NEGATIVE_SAMPLER_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace apan {
namespace data {

/// \brief Uniform sampler over the set of destination nodes seen so far.
class NegativeSampler {
 public:
  explicit NegativeSampler(int64_t num_nodes)
      : seen_(static_cast<size_t>(num_nodes), false) {}

  /// Admits a node into the pool (call for each event's destination, and
  /// for sources too in non-bipartite graphs).
  void Observe(graph::NodeId node) {
    APAN_CHECK(node >= 0 &&
               static_cast<size_t>(node) < seen_.size());
    if (!seen_[static_cast<size_t>(node)]) {
      seen_[static_cast<size_t>(node)] = true;
      pool_.push_back(node);
    }
  }

  size_t pool_size() const { return pool_.size(); }

  /// \brief Draws a negative destination different from `exclude` when the
  /// pool allows it. Returns -1 when the pool is empty.
  graph::NodeId Sample(Rng* rng, graph::NodeId exclude = -1) const {
    if (pool_.empty()) return -1;
    if (pool_.size() == 1) return pool_[0];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const graph::NodeId cand = pool_[rng->UniformInt(pool_.size())];
      if (cand != exclude) return cand;
    }
    return pool_[rng->UniformInt(pool_.size())];
  }

 private:
  std::vector<bool> seen_;
  std::vector<graph::NodeId> pool_;
};

}  // namespace data
}  // namespace apan

#endif  // APAN_DATA_NEGATIVE_SAMPLER_H_
