#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace apan {
namespace data {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.precision(17);  // round-trip exact doubles (timestamps)
  out << "src,dst,timestamp,label";
  for (int64_t f = 0; f < dataset.feature_dim(); ++f) out << ",f" << f;
  out << "\n";
  for (size_t i = 0; i < dataset.events.size(); ++i) {
    const auto& e = dataset.events[i];
    out << e.src << "," << e.dst << "," << e.timestamp << ","
        << static_cast<int>(dataset.labels[i]);
    const float* row = dataset.features.Row(e.edge_id);
    for (int64_t f = 0; f < dataset.feature_dim(); ++f) {
      out << "," << row[f];
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const std::string& path, const std::string& name,
                        LabelKind label_kind) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  // Feature dim = columns after the 4 fixed ones.
  int64_t columns = 1;
  for (char c : line) {
    if (c == ',') ++columns;
  }
  const int64_t feature_dim = columns - 4;
  if (feature_dim <= 0) {
    return Status::InvalidArgument("csv needs at least one feature column");
  }

  Dataset ds;
  ds.name = name;
  ds.label_kind = label_kind;
  ds.features = graph::EdgeFeatureStore(feature_dim);

  std::unordered_map<int64_t, graph::NodeId> remap;
  auto intern = [&](int64_t raw) {
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<graph::NodeId>(remap.size()));
    return it->second;
  };

  double last_t = -1e300;
  size_t line_no = 1;
  std::vector<float> feat(static_cast<size_t>(feature_dim));
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string cell;
    auto next_cell = [&](double* value) -> bool {
      if (!std::getline(ss, cell, ',')) return false;
      try {
        *value = std::stod(cell);
      } catch (...) {
        return false;
      }
      return true;
    };
    double src_raw, dst_raw, ts, label_raw;
    if (!next_cell(&src_raw) || !next_cell(&dst_raw) || !next_cell(&ts) ||
        !next_cell(&label_raw)) {
      return Status::InvalidArgument(
          internal::StrCat("malformed row at line ", line_no));
    }
    if (ts < last_t) {
      return Status::InvalidArgument(
          internal::StrCat("timestamps not sorted at line ", line_no));
    }
    last_t = ts;
    for (int64_t f = 0; f < feature_dim; ++f) {
      double v;
      if (!next_cell(&v)) {
        return Status::InvalidArgument(
            internal::StrCat("missing feature at line ", line_no));
      }
      feat[static_cast<size_t>(f)] = static_cast<float>(v);
    }
    const graph::NodeId src = intern(static_cast<int64_t>(src_raw));
    const graph::NodeId dst = intern(static_cast<int64_t>(dst_raw));
    const graph::EdgeId edge_id = ds.features.Append(feat);
    ds.events.push_back({src, dst, ts, edge_id});
    ds.labels.push_back(static_cast<int8_t>(label_raw));
  }
  ds.num_nodes = static_cast<int64_t>(remap.size());
  ds.num_users = ds.num_nodes;  // unknown bipartition; treat as general
  APAN_RETURN_NOT_OK(ds.SplitByFraction(0.70, 0.15));
  APAN_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace data
}  // namespace apan
