// Synthetic temporal-graph generators standing in for the paper's three
// datasets (Wikipedia, Reddit, Alipay — see DESIGN.md §2 for the fidelity
// argument). Each generator is fully deterministic given its seed and
// plants learnable signal so that model *ranking* is meaningful:
//
//   * repeat structure — users preferentially re-interact with recent
//     partners (the temporal signal memory/mailbox models exploit);
//   * latent affinity — users prefer items with matching latent factors
//     (the static signal all embedding models can learn);
//   * feature signal — edge features are a projection of the endpoint
//     latents plus noise, so attention over features is informative;
//   * label signal — "risky" users (node labels) and fraud communities
//     (edge labels) produce feature-shifted, structurally distinct events.

#ifndef APAN_DATA_SYNTHETIC_H_
#define APAN_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace apan {
namespace data {

/// \brief Generator parameters. Factories mirror the paper's datasets at a
/// laptop-friendly scale; every knob can be overridden (benches expose a
/// scale multiplier).
struct SyntheticConfig {
  std::string name = "synthetic";
  /// Bipartite when num_items > 0 (users interact with items); otherwise a
  /// general interaction graph over num_users nodes (Alipay-like).
  int64_t num_users = 700;
  int64_t num_items = 300;
  int64_t num_events = 15000;
  int64_t feature_dim = 32;
  int64_t latent_dim = 8;

  double user_activity_alpha = 1.05;   ///< Zipf exponent of user activity.
  double item_popularity_alpha = 1.05; ///< Zipf exponent of item popularity.
  double repeat_prob = 0.7;            ///< P(revisit a recent partner).
  int64_t repeat_window = 5;           ///< Recent partners considered.
  int64_t preference_candidates = 4;   ///< Zipf draws per non-repeat pick.
  double timespan = 30.0;              ///< Total stream duration ("days").
  double feature_noise = 0.5;

  /// Fraction of users withheld from the early stream; they start
  /// interacting only after `late_start_fraction` of events, producing the
  /// unseen-node cohort of the paper's Table 1.
  double unseen_user_fraction = 0.15;
  double late_start_fraction = 0.75;

  LabelKind label_kind = LabelKind::kNodeDynamic;
  /// Node labels: fraction of users that are "risky".
  double risky_user_fraction = 0.03;
  /// P(label = 1) for an event whose source is risky.
  double risky_positive_prob = 0.08;
  /// P(label = 0) for any other event; the rest stay unlabeled (-1),
  /// matching the sparse "interactions with labels" rows of Table 1.
  double negative_label_prob = 0.05;
  /// Magnitude of the feature shift on positive-labeled events.
  double label_feature_shift = 1.2;

  /// Edge labels (fraud): community structure.
  int64_t num_fraud_communities = 0;
  int64_t fraud_community_size = 0;
  /// P(an event is a fraud-community interaction).
  double fraud_event_prob = 0.0;

  uint64_t seed = 20210620;  // SIGMOD'21 opening day.

  /// Wikipedia-like: bipartite, 19% unseen users, sparse node labels.
  static SyntheticConfig WikipediaLike();
  /// Reddit-like: bipartite, denser repeats, ~1% unseen, node labels.
  static SyntheticConfig RedditLike();
  /// Alipay-like: general graph, fraud-community edge labels.
  static SyntheticConfig AlipayLike();

  /// Multiplies node and event counts by `factor` (>= 0.05).
  SyntheticConfig Scaled(double factor) const;
};

/// \brief Generates a dataset. The result is validated (Dataset::Validate)
/// and already split 70/15/15.
/// \return InvalidArgument for inconsistent configs.
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace data
}  // namespace apan

#endif  // APAN_DATA_SYNTHETIC_H_
