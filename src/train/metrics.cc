#include "train/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace apan {
namespace train {

namespace {

std::vector<size_t> DescendingOrder(const std::vector<float>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

double AveragePrecision(const std::vector<float>& scores,
                        const std::vector<int>& labels) {
  APAN_CHECK_MSG(scores.size() == labels.size(),
                 "scores/labels size mismatch");
  const int64_t total_pos =
      std::count(labels.begin(), labels.end(), 1);
  if (total_pos == 0 || scores.empty()) return 0.0;

  const auto order = DescendingOrder(scores);
  double ap = 0.0;
  int64_t tp = 0;
  size_t i = 0;
  // Process tied-score blocks together: within a block, precision is
  // evaluated at the block end with positives spread evenly (the
  // interpolation sklearn uses for ties).
  while (i < order.size()) {
    size_t j = i;
    int64_t block_pos = 0;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]] == 1) ++block_pos;
      ++j;
    }
    if (block_pos > 0) {
      // Average precision over the positives in this block, treating them
      // as uniformly placed within the block.
      const double block_size = static_cast<double>(j - i);
      const double tp_before = static_cast<double>(tp);
      for (int64_t p = 1; p <= block_pos; ++p) {
        const double frac = static_cast<double>(p) /
                            static_cast<double>(block_pos);
        const double rank = static_cast<double>(i) + frac * block_size;
        const double tp_here = tp_before + static_cast<double>(p);
        ap += tp_here / rank;
      }
    }
    tp += block_pos;
    i = j;
  }
  return ap / static_cast<double>(total_pos);
}

double RocAuc(const std::vector<float>& scores,
              const std::vector<int>& labels) {
  APAN_CHECK_MSG(scores.size() == labels.size(),
                 "scores/labels size mismatch");
  const int64_t pos = std::count(labels.begin(), labels.end(), 1);
  const int64_t neg = static_cast<int64_t>(labels.size()) - pos;
  if (pos == 0 || neg == 0) return 0.5;

  // Midranks over ascending scores.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += midrank;
    }
    i = j;
  }
  const double u = rank_sum_pos - static_cast<double>(pos) *
                                      (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double AccuracyAtThreshold(const std::vector<float>& scores,
                           const std::vector<int>& labels, float threshold) {
  APAN_CHECK_MSG(scores.size() == labels.size(),
                 "scores/labels size mismatch");
  if (scores.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int pred = scores[i] >= threshold ? 1 : 0;
    if (pred == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  out.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace train
}  // namespace apan
