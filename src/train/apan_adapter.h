// ApanLinkModel — core::ApanModel behind the TemporalModel interface.

#ifndef APAN_TRAIN_APAN_ADAPTER_H_
#define APAN_TRAIN_APAN_ADAPTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/apan_model.h"
#include "train/temporal_model.h"

namespace apan {
namespace train {

/// \brief APAN as a streaming link-prediction model.
///
/// ScoreLinks/EmbedEndpoints run the synchronous link only (no graph
/// queries — SyncPathGraphQueries() stays 0 by construction, asserted in
/// tests); Consume runs the asynchronous link in-line, mirroring the
/// reference implementation's training loop.
class ApanLinkModel : public TemporalModel {
 public:
  /// `features` must outlive the model.
  ApanLinkModel(const core::ApanConfig& config,
                const graph::EdgeFeatureStore* features, uint64_t seed,
                std::string name = "APAN");

  std::string name() const override { return name_; }
  int64_t embedding_dim() const override {
    return model_.config().embedding_dim;
  }

  /// Link logits follow the paper's Eq. 7: a scaled dot product
  /// σ(z_i(t)ᵀ z_j(t)) with a learnable affine calibration (the MLP
  /// decoder of §3.4 serves the downstream classification tasks).
  LinkScores ScoreLinks(const EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const EventBatch& batch) override;
  Status Consume(const EventBatch& batch) override;
  void ResetState() override;
  std::vector<tensor::Tensor> Parameters() override {
    return model_.Parameters();
  }
  void SetTraining(bool training) override { model_.SetTraining(training); }
  int64_t SyncPathGraphQueries() const override { return sync_queries_; }

  core::ApanModel& model() { return model_; }

 private:
  /// Encodes the unique nodes of a batch once ("if a node involves several
  /// interactions in a batch, the embedding will be generated only once",
  /// §3.2) and caches the detached values for Consume.
  struct Encoded {
    std::vector<graph::NodeId> unique_nodes;
    std::unordered_map<graph::NodeId, int64_t> row_of;
    core::ApanEncoder::Output output;
  };
  Encoded Encode(const EventBatch& batch, bool with_negatives);

  std::string name_;
  core::ApanModel model_;
  int64_t sync_queries_ = 0;
  // Cache from the last Encode, reused by Consume on the same batch.
  bool has_cache_ = false;
  size_t cache_begin_ = 0;
  size_t cache_end_ = 0;
  std::vector<graph::NodeId> cache_nodes_;
  std::vector<float> cache_values_;  // unique_nodes x dim, detached
};

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_APAN_ADAPTER_H_
