#include "train/link_trainer.h"

#include <algorithm>
#include <cmath>

#include "data/batching.h"
#include "data/negative_sampler.h"
#include "graph/node_partition.h"
#include "obs/metrics.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "train/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace apan {
namespace train {

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

bool IsBipartite(const data::Dataset& ds) {
  return ds.num_users > 0 && ds.num_users < ds.num_nodes;
}

/// Admits a processed event's endpoints into the negative pool.
void ObserveEvent(const data::Dataset& ds, const graph::Event& e,
                  data::NegativeSampler* sampler) {
  if (IsBipartite(ds)) {
    sampler->Observe(e.dst);  // negatives are items
  } else {
    sampler->Observe(e.src);
    sampler->Observe(e.dst);
  }
}

/// Draws per-event negatives from the already-seen pool. Events whose pool
/// is still empty (the very first batch) fall back to the true destination
/// — their scores contribute a constant and affect all models equally.
std::vector<graph::NodeId> DrawNegatives(const data::Dataset& ds,
                                         const data::Batch& batch,
                                         const data::NegativeSampler& sampler,
                                         Rng* rng) {
  std::vector<graph::NodeId> negs;
  negs.reserve(batch.size());
  for (size_t i = batch.begin; i < batch.end; ++i) {
    const auto& e = ds.events[i];
    graph::NodeId neg = sampler.Sample(rng, e.dst);
    if (neg < 0) neg = e.dst;
    negs.push_back(neg);
  }
  return negs;
}

struct ScoredSplit {
  std::vector<float> scores;
  std::vector<int> labels;
  double total_score_millis = 0.0;
  size_t num_batches = 0;
  /// Per-batch ScoreLinks wall times (for the p50/p99 latency report).
  std::vector<double> batch_millis;
};

/// One data-parallel training step (config.data_parallel_shards > 1).
/// The batch's events are grouped by the NodePartition owner of their
/// source node; each non-empty shard runs its own forward/backward over
/// its sub-batch with the loss scaled by the shard's share of the batch
/// (the BCE means decompose: sum_s (n_s/n) * mean_s == mean over the
/// full batch), and the per-shard gradient partials are reduced in
/// ascending shard order before the caller's single optimizer step —
/// so the reduced gradient is independent of shard execution order and
/// equals the single-shard gradient up to float summation order.
Status ShardedTrainStep(TemporalModel* model, const data::Dataset& dataset,
                        const EventBatch& batch,
                        const graph::NodePartition& part,
                        tensor::Adam* optimizer,
                        tensor::TrainingArena* arena) {
  const int shards = part.num_shards;
  std::vector<std::vector<size_t>> shard_events(
      static_cast<size_t>(shards));
  std::vector<std::vector<graph::NodeId>> shard_negs(
      static_cast<size_t>(shards));
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto s = static_cast<size_t>(
        part.owner_of[static_cast<size_t>(batch.event(i).src)]);
    shard_events[s].push_back(batch.begin + i);
    shard_negs[s].push_back(batch.negatives[i]);
  }

  std::vector<tensor::Tensor> params = model->Parameters();
  size_t total_numel = 0;
  for (auto& p : params) total_numel += static_cast<size_t>(p.numel());

  // partials[s] stays all-zero when shard s drew no events this batch.
  std::vector<std::vector<float>> partials(
      static_cast<size_t>(shards), std::vector<float>(total_numel, 0.0f));
  const float inv_batch = 1.0f / static_cast<float>(batch.size());
  for (int s = 0; s < shards; ++s) {
    const auto& events = shard_events[static_cast<size_t>(s)];
    if (events.empty()) continue;  // ScoreLinks requires a non-empty batch
    EventBatch sub{&dataset, batch.begin, batch.end,
                   shard_negs[static_cast<size_t>(s)], events};
    optimizer->ZeroGrad();
    {
      tensor::TrainingStepScope step_scope(arena);
      TemporalModel::LinkScores scores = model->ScoreLinks(sub);
      std::vector<float> pos_targets(sub.size(), 1.0f);
      std::vector<float> neg_targets(sub.size(), 0.0f);
      tensor::Tensor loss = tensor::MulScalar(
          tensor::Add(tensor::BceWithLogits(scores.pos_logits, pos_targets),
                      tensor::BceWithLogits(scores.neg_logits, neg_targets)),
          0.5f * static_cast<float>(sub.size()) * inv_batch);
      APAN_RETURN_NOT_OK(loss.Backward());
    }
    size_t offset = 0;
    for (auto& p : params) {
      const size_t n = static_cast<size_t>(p.numel());
      const std::vector<float> g = p.GradToVector();
      if (!g.empty()) {
        std::copy(g.begin(), g.end(),
                  partials[static_cast<size_t>(s)].begin() +
                      static_cast<ptrdiff_t>(offset));
      }
      offset += n;
    }
  }

  optimizer->ZeroGrad();
  for (int s = 0; s < shards; ++s) {
    size_t offset = 0;
    for (auto& p : params) {
      const auto n = static_cast<size_t>(p.numel());
      tensor::kernels::Accumulate(
          partials[static_cast<size_t>(s)].data() + offset, p.grad_data(),
          static_cast<int64_t>(n));
      offset += n;
    }
  }
  return Status::OK();
}

/// Snapshot / restore of model parameter values (early stopping).
std::vector<float> SnapshotParams(TemporalModel* model) {
  std::vector<float> snap;
  for (auto& p : model->Parameters()) {
    snap.insert(snap.end(), p.values().begin(), p.values().end());
  }
  return snap;
}

void RestoreParams(TemporalModel* model, const std::vector<float>& snap) {
  size_t offset = 0;
  for (auto& p : model->Parameters()) {
    const size_t n = static_cast<size_t>(p.numel());
    APAN_CHECK(offset + n <= snap.size());
    std::copy_n(snap.begin() + offset, n, p.data());
    offset += n;
  }
  APAN_CHECK(offset == snap.size());
}

}  // namespace

Result<LinkReport> LinkTrainer::Run(TemporalModel* model,
                                    const data::Dataset& dataset) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  APAN_RETURN_NOT_OK(dataset.Validate());
  if (dataset.train_end == 0) {
    return Status::InvalidArgument("dataset has an empty training split");
  }

  tensor::Adam optimizer(model->Parameters(), {.lr = config_.lr});
  LinkReport report;
  report.model_name = model->name();

  double best_val_ap = -1.0;
  std::vector<float> best_params;
  int bad_epochs = 0;
  std::vector<double> epoch_seconds;

  // One training arena for the whole run: the first step plans, every
  // later step (across epochs too — the op sequence doesn't change)
  // replays from the sealed pool.
  tensor::TrainingArena train_arena;
  std::shared_ptr<const graph::NodePartition> partition;
  if (config_.data_parallel_shards > 1) {
    partition = graph::NodePartition::BuildDefault(
        static_cast<int64_t>(dataset.num_nodes), config_.data_parallel_shards);
  }

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    // ---- Train pass -------------------------------------------------------
    model->ResetState();
    model->SetTraining(true);
    data::NegativeSampler sampler(dataset.num_nodes);
    Rng neg_rng(config_.negative_seed);
    Stopwatch epoch_watch;

    data::BatchIterator train_iter(dataset, data::Split::kTrain,
                                   config_.batch_size);
    while (!train_iter.Done()) {
      const data::Batch b = train_iter.Next();
      EventBatch batch{&dataset, b.begin, b.end,
                       DrawNegatives(dataset, b, sampler, &neg_rng),
                       {}};
      if (partition == nullptr) {
        tensor::TrainingStepScope step_scope(&train_arena);
        TemporalModel::LinkScores scores = model->ScoreLinks(batch);
        std::vector<float> pos_targets(batch.size(), 1.0f);
        std::vector<float> neg_targets(batch.size(), 0.0f);
        tensor::Tensor loss = tensor::MulScalar(
            tensor::Add(tensor::BceWithLogits(scores.pos_logits, pos_targets),
                        tensor::BceWithLogits(scores.neg_logits, neg_targets)),
            0.5f);
        optimizer.ZeroGrad();
        APAN_RETURN_NOT_OK(loss.Backward());
      } else {
        APAN_RETURN_NOT_OK(ShardedTrainStep(model, dataset, batch, *partition,
                                            &optimizer, &train_arena));
      }
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
      APAN_RETURN_NOT_OK(model->Consume(batch));
      for (size_t i = b.begin; i < b.end; ++i) {
        ObserveEvent(dataset, dataset.events[i], &sampler);
      }
    }
    epoch_seconds.push_back(epoch_watch.ElapsedSeconds());
    ++report.epochs_run;

    // ---- Validation pass (state continues from the train stream) ----------
    model->SetTraining(false);
    ScoredSplit val;
    {
      tensor::NoGradGuard no_grad;
      data::BatchIterator val_iter(dataset, data::Split::kValidation,
                                   config_.batch_size);
      while (!val_iter.Done()) {
        const data::Batch b = val_iter.Next();
        EventBatch batch{&dataset, b.begin, b.end,
                         DrawNegatives(dataset, b, sampler, &neg_rng),
                         {}};
        TemporalModel::LinkScores scores = model->ScoreLinks(batch);
        for (size_t i = 0; i < batch.size(); ++i) {
          val.scores.push_back(
              StableSigmoid(scores.pos_logits.item(static_cast<int64_t>(i))));
          val.labels.push_back(1);
          val.scores.push_back(
              StableSigmoid(scores.neg_logits.item(static_cast<int64_t>(i))));
          val.labels.push_back(0);
        }
        APAN_RETURN_NOT_OK(model->Consume(batch));
        for (size_t i = b.begin; i < b.end; ++i) {
          ObserveEvent(dataset, dataset.events[i], &sampler);
        }
      }
    }
    const double val_ap = AveragePrecision(val.scores, val.labels);
    if (config_.verbose) {
      APAN_LOG(Info) << model->name() << " epoch " << epoch
                     << " val AP=" << val_ap;
    }
    if (val_ap > best_val_ap) {
      best_val_ap = val_ap;
      best_params = SnapshotParams(model);
      bad_epochs = 0;
    } else {
      ++bad_epochs;
      if (bad_epochs > config_.patience) break;
    }
  }

  if (!best_params.empty()) RestoreParams(model, best_params);
  report.mean_train_seconds_per_epoch =
      Summarize(epoch_seconds).mean;
  report.arena_fresh_impls = train_arena.fresh_impls();
  report.arena_reused_impls = train_arena.reused_impls();
  report.arena_plan_misses = train_arena.plan_misses();
  report.arena_pool_slots = static_cast<int64_t>(train_arena.pool_slots());

  // ---- Final full evaluation pass with best weights ------------------------
  APAN_ASSIGN_OR_RETURN(auto eval, Evaluate(model, dataset));
  report.validation = eval.validation;
  report.test = eval.test;
  report.mean_inference_millis_per_batch =
      eval.mean_inference_millis_per_batch;
  report.inference_p50_millis = eval.inference_p50_millis;
  report.inference_p99_millis = eval.inference_p99_millis;
  report.sync_graph_queries = eval.sync_graph_queries;
  return report;
}

Result<LinkTrainer::EvalResult> LinkTrainer::Evaluate(
    TemporalModel* model, const data::Dataset& dataset) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  model->ResetState();
  model->SetTraining(false);
  tensor::NoGradGuard no_grad;

  data::NegativeSampler sampler(dataset.num_nodes);
  Rng neg_rng(config_.negative_seed);
  const int64_t queries_before = model->SyncPathGraphQueries();

  // Phase 1: warm the streaming state over the training range (no scoring).
  data::BatchIterator warm_iter(0, dataset.train_end, config_.batch_size);
  while (!warm_iter.Done()) {
    const data::Batch b = warm_iter.Next();
    EventBatch batch{&dataset, b.begin, b.end, {}, {}};
    APAN_RETURN_NOT_OK(model->Consume(batch));
    for (size_t i = b.begin; i < b.end; ++i) {
      ObserveEvent(dataset, dataset.events[i], &sampler);
    }
  }

  // Phase 2: score validation then test, carrying streaming state through.
  auto score_range = [&](size_t lo, size_t hi,
                         ScoredSplit* scored) -> Status {
    data::BatchIterator iter(lo, hi, config_.batch_size);
    while (!iter.Done()) {
      const data::Batch b = iter.Next();
      EventBatch batch{&dataset, b.begin, b.end,
                       DrawNegatives(dataset, b, sampler, &neg_rng),
                       {}};
      Stopwatch watch;
      TemporalModel::LinkScores scores = model->ScoreLinks(batch);
      const double millis = watch.ElapsedMillis();
      scored->total_score_millis += millis;
      scored->batch_millis.push_back(millis);
      ++scored->num_batches;
      for (size_t i = 0; i < batch.size(); ++i) {
        scored->scores.push_back(
            StableSigmoid(scores.pos_logits.item(static_cast<int64_t>(i))));
        scored->labels.push_back(1);
        scored->scores.push_back(
            StableSigmoid(scores.neg_logits.item(static_cast<int64_t>(i))));
        scored->labels.push_back(0);
      }
      APAN_RETURN_NOT_OK(model->Consume(batch));
      for (size_t i = b.begin; i < b.end; ++i) {
        ObserveEvent(dataset, dataset.events[i], &sampler);
      }
    }
    return Status::OK();
  };

  ScoredSplit val_scored, test_scored;
  APAN_RETURN_NOT_OK(
      score_range(dataset.train_end, dataset.val_end, &val_scored));
  APAN_RETURN_NOT_OK(
      score_range(dataset.val_end, dataset.events.size(), &test_scored));

  auto to_metrics = [](const ScoredSplit& s) {
    SplitMetrics m;
    m.ap = AveragePrecision(s.scores, s.labels);
    m.accuracy = AccuracyAtThreshold(s.scores, s.labels);
    m.auc = RocAuc(s.scores, s.labels);
    m.num_events = s.scores.size() / 2;
    return m;
  };

  EvalResult out;
  out.validation = to_metrics(val_scored);
  out.test = to_metrics(test_scored);
  const double total_millis =
      val_scored.total_score_millis + test_scored.total_score_millis;
  const size_t total_batches = val_scored.num_batches + test_scored.num_batches;
  out.mean_inference_millis_per_batch =
      total_batches > 0 ? total_millis / static_cast<double>(total_batches)
                        : 0.0;
  {
    obs::Histogram latency(1);
    for (double ms : val_scored.batch_millis) latency.Record(ms);
    for (double ms : test_scored.batch_millis) latency.Record(ms);
    out.inference_p50_millis = latency.P50();
    out.inference_p99_millis = latency.P99();
  }
  out.sync_graph_queries = model->SyncPathGraphQueries() - queries_before;
  return out;
}

}  // namespace train
}  // namespace apan
