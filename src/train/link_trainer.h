// Streaming link-prediction training and evaluation (paper §4.2, Eq. 7).
//
// Protocol (identical for every TemporalModel, matching TGN/TGAT's setup):
//   * chronological batches of `batch_size` events;
//   * per event one negative destination drawn from the pool of nodes
//     already seen in the stream (time-varying negative sampling);
//   * train on the first 70%, early-stop on validation AP, report AP /
//     accuracy / AUC on validation and test with the best weights;
//   * streaming state (memory, mailboxes, graph) is reset each epoch and
//     keeps advancing through validation and test (transductive protocol).

#ifndef APAN_TRAIN_LINK_TRAINER_H_
#define APAN_TRAIN_LINK_TRAINER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "train/temporal_model.h"
#include "util/status.h"

namespace apan {
namespace train {

struct LinkTrainConfig {
  size_t batch_size = 200;  ///< Paper §4.4.
  int max_epochs = 8;
  int patience = 2;         ///< Early stopping on validation AP.
  float lr = 3e-3f;         ///< See EXPERIMENTS.md on the deviation from
                            ///< the paper's 1e-4 (epoch budget).
  float grad_clip = 5.0f;
  uint64_t negative_seed = 99;
  bool verbose = false;
  /// Data-parallel training shards. 1 (the default) runs the classic
  /// single-stream step, bit for bit. With k > 1 each batch is split by
  /// the graph::NodePartition ownership index (owner of the source
  /// node), every shard runs its own forward/backward, and the
  /// per-shard gradient partials are reduced in fixed shard order
  /// before one optimizer step — the summed gradient equals the
  /// single-shard gradient up to float summation order.
  int data_parallel_shards = 1;
};

/// Metrics of one split.
struct SplitMetrics {
  double ap = 0.0;
  double accuracy = 0.0;
  double auc = 0.0;
  size_t num_events = 0;
};

/// Everything the Table-2 / Figure-6/7 benches need from one run.
struct LinkReport {
  std::string model_name;
  SplitMetrics validation;
  SplitMetrics test;
  int epochs_run = 0;
  double mean_train_seconds_per_epoch = 0.0;
  /// Mean milliseconds per evaluation batch spent in ScoreLinks — the
  /// synchronous-path inference latency of Figure 6.
  double mean_inference_millis_per_batch = 0.0;
  /// p50 / p99 over the same per-batch ScoreLinks times (what
  /// BENCH_fig6.json tracks across PRs).
  double inference_p50_millis = 0.0;
  double inference_p99_millis = 0.0;
  /// Graph queries issued on the synchronous path during evaluation.
  int64_t sync_graph_queries = 0;
  /// Training-arena counters over the whole run (BENCH_fig7.json tracks
  /// them): heap impls, replayed pool draws, plan misses (0 when every
  /// warm step replayed cleanly), and the sealed plan's slot count.
  int64_t arena_fresh_impls = 0;
  int64_t arena_reused_impls = 0;
  int64_t arena_plan_misses = 0;
  int64_t arena_pool_slots = 0;
};

/// \brief Drives training + evaluation of one model on one dataset.
class LinkTrainer {
 public:
  explicit LinkTrainer(LinkTrainConfig config) : config_(config) {}

  /// Trains `model` and fills a LinkReport. The model is left holding its
  /// best (early-stopped) weights and the streaming state of a full final
  /// pass over the dataset.
  Result<LinkReport> Run(TemporalModel* model, const data::Dataset& dataset);

  /// \brief Evaluation only: resets state, streams the whole dataset with
  /// frozen weights (train range consumed without scoring, then validation
  /// and test scored in sequence with state carried through — the TGN-style
  /// protocol). Negative samples are deterministic given
  /// `config.negative_seed`, so every model is scored against identical
  /// negatives.
  struct EvalResult {
    SplitMetrics validation;
    SplitMetrics test;
    double mean_inference_millis_per_batch = 0.0;
    double inference_p50_millis = 0.0;
    double inference_p99_millis = 0.0;
    int64_t sync_graph_queries = 0;
  };
  Result<EvalResult> Evaluate(TemporalModel* model,
                              const data::Dataset& dataset);

 private:
  LinkTrainConfig config_;
};

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_LINK_TRAINER_H_
