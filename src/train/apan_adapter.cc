#include "train/apan_adapter.h"

#include <cmath>

#include "tensor/arena.h"
#include "tensor/ops.h"

namespace apan {
namespace train {

using tensor::Tensor;

ApanLinkModel::ApanLinkModel(const core::ApanConfig& config,
                             const graph::EdgeFeatureStore* features,
                             uint64_t seed, std::string name)
    : name_(std::move(name)), model_(config, features, seed) {}

ApanLinkModel::Encoded ApanLinkModel::Encode(const EventBatch& batch,
                                             bool with_negatives) {
  APAN_CHECK(batch.dataset != nullptr && batch.size() > 0);
  Encoded enc;
  auto intern = [&](graph::NodeId v) {
    auto [it, inserted] = enc.row_of.try_emplace(
        v, static_cast<int64_t>(enc.unique_nodes.size()));
    if (inserted) enc.unique_nodes.push_back(v);
    return it->second;
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    intern(batch.event(i).src);
    intern(batch.event(i).dst);
  }
  if (with_negatives) {
    APAN_CHECK_MSG(batch.negatives.size() == batch.size(),
                   "batch negatives missing");
    for (graph::NodeId v : batch.negatives) intern(v);
  }

  const int64_t queries_before = model_.graph().query_count();
  enc.output = model_.EncodeNodes(enc.unique_nodes);
  sync_queries_ += model_.graph().query_count() - queries_before;

  // Cache detached values for Consume.
  has_cache_ = true;
  cache_begin_ = batch.begin;
  cache_end_ = batch.end;
  cache_nodes_ = enc.unique_nodes;
  const Tensor& emb = enc.output.embeddings;
  cache_values_.assign(emb.data(), emb.data() + emb.numel());
  return enc;
}

TemporalModel::LinkScores ApanLinkModel::ScoreLinks(const EventBatch& batch) {
  // Inference-mode scoring (the fig6 serve path) draws every op output
  // from the thread's arena; in training mode the scope is inert. The
  // returned logits stay valid after the scope closes — a pooled tensor
  // is only recycled once the caller drops it (use_count guard).
  tensor::ArenaScope arena_scope;
  Encoded enc = Encode(batch, /*with_negatives=*/true);
  std::vector<int64_t> src_rows, dst_rows, neg_rows;
  src_rows.reserve(batch.size());
  dst_rows.reserve(batch.size());
  neg_rows.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    src_rows.push_back(enc.row_of.at(batch.event(i).src));
    dst_rows.push_back(enc.row_of.at(batch.event(i).dst));
    neg_rows.push_back(enc.row_of.at(batch.negatives[i]));
  }
  Tensor z_src = tensor::GatherRows(enc.output.embeddings, src_rows);
  Tensor z_dst = tensor::GatherRows(enc.output.embeddings, dst_rows);
  Tensor z_neg = tensor::GatherRows(enc.output.embeddings, neg_rows);
  LinkScores scores;
  scores.pos_logits = model_.ScoreLinkLogits(z_src, z_dst);
  scores.neg_logits = model_.ScoreLinkLogits(z_src, z_neg);
  return scores;
}

TemporalModel::EndpointEmbeddings ApanLinkModel::EmbedEndpoints(
    const EventBatch& batch) {
  Encoded enc = Encode(batch, /*with_negatives=*/false);
  std::vector<int64_t> src_rows, dst_rows;
  for (size_t i = 0; i < batch.size(); ++i) {
    src_rows.push_back(enc.row_of.at(batch.event(i).src));
    dst_rows.push_back(enc.row_of.at(batch.event(i).dst));
  }
  EndpointEmbeddings out;
  out.z_src = tensor::GatherRows(enc.output.embeddings, src_rows);
  out.z_dst = tensor::GatherRows(enc.output.embeddings, dst_rows);
  return out;
}

Status ApanLinkModel::Consume(const EventBatch& batch) {
  if (batch.size() == 0) return Status::OK();
  tensor::ArenaScope arena_scope;
  // The embeddings written into state and mails are always recomputed in
  // eval mode: reusing the training-mode forward would bake dropout noise
  // into the mailbox and slow the bootstrap.
  if (!has_cache_ || cache_begin_ != batch.begin ||
      cache_end_ != batch.end || model_.training()) {
    tensor::NoGradGuard no_grad;
    const bool was_training = model_.training();
    if (was_training) model_.SetTraining(false);
    Encode(batch, /*with_negatives=*/false);
    if (was_training) model_.SetTraining(true);
  }
  std::unordered_map<graph::NodeId, int64_t> row_of;
  for (size_t i = 0; i < cache_nodes_.size(); ++i) {
    row_of[cache_nodes_[i]] = static_cast<int64_t>(i);
  }
  const int64_t d = model_.config().embedding_dim;
  std::vector<core::InteractionRecord> records;
  records.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    core::InteractionRecord rec;
    rec.event = batch.event(i);
    const float* zs = cache_values_.data() + row_of.at(rec.event.src) * d;
    const float* zd = cache_values_.data() + row_of.at(rec.event.dst) * d;
    rec.z_src.assign(zs, zs + d);
    rec.z_dst.assign(zd, zd + d);
    records.push_back(std::move(rec));
  }
  has_cache_ = false;
  return model_.ProcessBatchPostInference(records);
}

void ApanLinkModel::ResetState() {
  model_.ResetState();
  has_cache_ = false;
  sync_queries_ = 0;
}

}  // namespace train
}  // namespace apan
