#include "train/probe.h"

#include <algorithm>
#include <cmath>

#include "core/decoder.h"
#include "data/batching.h"
#include "data/negative_sampler.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "train/metrics.h"

namespace apan {
namespace train {

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

bool IsBipartite(const data::Dataset& ds) {
  return ds.num_users > 0 && ds.num_users < ds.num_nodes;
}

void ObserveEvent(const data::Dataset& ds, const graph::Event& e,
                  data::NegativeSampler* sampler) {
  if (IsBipartite(ds)) {
    sampler->Observe(e.dst);
  } else {
    sampler->Observe(e.src);
    sampler->Observe(e.dst);
  }
}

tensor::Tensor RowsToTensor(const std::vector<const EmbeddingRow*>& rows) {
  APAN_CHECK(!rows.empty());
  const int64_t d = static_cast<int64_t>(rows[0]->features.size());
  std::vector<float> flat;
  flat.reserve(rows.size() * static_cast<size_t>(d));
  for (const EmbeddingRow* r : rows) {
    APAN_CHECK(static_cast<int64_t>(r->features.size()) == d);
    flat.insert(flat.end(), r->features.begin(), r->features.end());
  }
  return tensor::Tensor::FromVector({static_cast<int64_t>(rows.size()), d},
                                    std::move(flat));
}

}  // namespace

Result<LinkTrainer::EvalResult> EvaluateStaticLink(
    const StaticEmbeddingModel& model, const data::Dataset& dataset,
    const ProbeConfig& config) {
  APAN_RETURN_NOT_OK(dataset.Validate());
  const int64_t d = model.dim();
  Rng rng(config.seed);
  core::LinkDecoder decoder(d, config.hidden, &rng);
  tensor::Adam optimizer(decoder.Parameters(), {.lr = config.lr});

  auto embed = [&](graph::NodeId v) { return model.Embedding(v); };
  auto gather = [&](const std::vector<graph::NodeId>& nodes) {
    std::vector<float> flat;
    flat.reserve(nodes.size() * static_cast<size_t>(d));
    for (graph::NodeId v : nodes) {
      const auto e = embed(v);
      flat.insert(flat.end(), e.begin(), e.end());
    }
    return tensor::Tensor::FromVector(
        {static_cast<int64_t>(nodes.size()), d}, std::move(flat));
  };

  // ---- Train the decoder probe on the training events. ----
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    data::NegativeSampler sampler(dataset.num_nodes);
    Rng neg_rng(config.negative_seed + static_cast<uint64_t>(epoch) + 1);
    data::BatchIterator iter(dataset, data::Split::kTrain,
                             config.batch_size);
    while (!iter.Done()) {
      const data::Batch b = iter.Next();
      std::vector<graph::NodeId> srcs, dsts, negs;
      for (size_t i = b.begin; i < b.end; ++i) {
        const auto& e = dataset.events[i];
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
        graph::NodeId neg = sampler.Sample(&neg_rng, e.dst);
        negs.push_back(neg >= 0 ? neg : e.dst);
      }
      tensor::Tensor z_src = gather(srcs);
      tensor::Tensor pos =
          decoder.Forward(z_src, gather(dsts), &rng);
      tensor::Tensor neg =
          decoder.Forward(z_src, gather(negs), &rng);
      tensor::Tensor loss = tensor::MulScalar(
          tensor::Add(
              tensor::BceWithLogits(pos,
                                    std::vector<float>(srcs.size(), 1.0f)),
              tensor::BceWithLogits(neg,
                                    std::vector<float>(srcs.size(), 0.0f))),
          0.5f);
      optimizer.ZeroGrad();
      APAN_RETURN_NOT_OK(loss.Backward());
      optimizer.Step();
      for (size_t i = b.begin; i < b.end; ++i) {
        ObserveEvent(dataset, dataset.events[i], &sampler);
      }
    }
  }

  // ---- Evaluate with LinkTrainer-identical negatives. ----
  decoder.SetTraining(false);
  tensor::NoGradGuard no_grad;
  data::NegativeSampler sampler(dataset.num_nodes);
  Rng neg_rng(config.negative_seed);
  for (size_t i = 0; i < dataset.train_end; ++i) {
    ObserveEvent(dataset, dataset.events[i], &sampler);
  }
  auto score_range = [&](size_t lo, size_t hi, SplitMetrics* out) {
    std::vector<float> scores;
    std::vector<int> labels;
    data::BatchIterator iter(lo, hi, config.batch_size);
    while (!iter.Done()) {
      const data::Batch b = iter.Next();
      std::vector<graph::NodeId> srcs, dsts, negs;
      for (size_t i = b.begin; i < b.end; ++i) {
        const auto& e = dataset.events[i];
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
        graph::NodeId neg = sampler.Sample(&neg_rng, e.dst);
        negs.push_back(neg >= 0 ? neg : e.dst);
      }
      tensor::Tensor z_src = gather(srcs);
      tensor::Tensor pos = decoder.Forward(z_src, gather(dsts));
      tensor::Tensor neg = decoder.Forward(z_src, gather(negs));
      for (size_t i = 0; i < srcs.size(); ++i) {
        scores.push_back(StableSigmoid(pos.item(static_cast<int64_t>(i))));
        labels.push_back(1);
        scores.push_back(StableSigmoid(neg.item(static_cast<int64_t>(i))));
        labels.push_back(0);
      }
      for (size_t i = b.begin; i < b.end; ++i) {
        ObserveEvent(dataset, dataset.events[i], &sampler);
      }
    }
    out->ap = AveragePrecision(scores, labels);
    out->accuracy = AccuracyAtThreshold(scores, labels);
    out->auc = RocAuc(scores, labels);
    out->num_events = scores.size() / 2;
  };

  LinkTrainer::EvalResult result;
  score_range(dataset.train_end, dataset.val_end, &result.validation);
  score_range(dataset.val_end, dataset.events.size(), &result.test);
  return result;
}

Result<std::vector<EmbeddingRow>> CollectTemporalRows(
    TemporalModel* model, const data::Dataset& dataset, size_t batch_size) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  model->ResetState();
  model->SetTraining(false);
  tensor::NoGradGuard no_grad;

  const bool edge_task = dataset.label_kind == data::LabelKind::kEdge;
  const int64_t d = model->embedding_dim();
  std::vector<EmbeddingRow> rows;

  data::BatchIterator iter(0, dataset.events.size(), batch_size);
  while (!iter.Done()) {
    const data::Batch b = iter.Next();
    // Skip embedding work for batches with no labeled events.
    bool has_labeled = false;
    for (size_t i = b.begin; i < b.end; ++i) {
      if (dataset.labels[i] >= 0) {
        has_labeled = true;
        break;
      }
    }
    EventBatch batch{&dataset, b.begin, b.end, {}};
    if (has_labeled) {
      TemporalModel::EndpointEmbeddings emb = model->EmbedEndpoints(batch);
      for (size_t i = b.begin; i < b.end; ++i) {
        if (dataset.labels[i] < 0) continue;
        const int64_t row = static_cast<int64_t>(i - b.begin);
        EmbeddingRow out;
        out.label = dataset.labels[i];
        out.split = dataset.SplitOf(i);
        const float* zs = emb.z_src.data() + row * d;
        out.features.assign(zs, zs + d);
        if (edge_task) {
          const float* ef =
              dataset.features.Row(dataset.events[i].edge_id);
          out.features.insert(out.features.end(), ef,
                              ef + dataset.feature_dim());
          const float* zd = emb.z_dst.data() + row * d;
          out.features.insert(out.features.end(), zd, zd + d);
        }
        rows.push_back(std::move(out));
      }
    }
    APAN_RETURN_NOT_OK(model->Consume(batch));
  }
  return rows;
}

std::vector<EmbeddingRow> CollectStaticRows(
    const StaticEmbeddingModel& model, const data::Dataset& dataset) {
  const bool edge_task = dataset.label_kind == data::LabelKind::kEdge;
  std::vector<EmbeddingRow> rows;
  for (size_t i = 0; i < dataset.events.size(); ++i) {
    if (dataset.labels[i] < 0) continue;
    const auto& e = dataset.events[i];
    EmbeddingRow out;
    out.label = dataset.labels[i];
    out.split = dataset.SplitOf(i);
    out.features = model.Embedding(e.src);
    if (edge_task) {
      const float* ef = dataset.features.Row(e.edge_id);
      out.features.insert(out.features.end(), ef,
                          ef + dataset.feature_dim());
      const auto zd = model.Embedding(e.dst);
      out.features.insert(out.features.end(), zd.begin(), zd.end());
    }
    rows.push_back(std::move(out));
  }
  return rows;
}

Result<ClassificationResult> TrainClassificationProbe(
    const std::vector<EmbeddingRow>& rows, const ProbeConfig& config) {
  std::vector<const EmbeddingRow*> train_rows, val_rows, test_rows;
  for (const auto& r : rows) {
    switch (r.split) {
      case data::Split::kTrain:
        train_rows.push_back(&r);
        break;
      case data::Split::kValidation:
        val_rows.push_back(&r);
        break;
      case data::Split::kTest:
        test_rows.push_back(&r);
        break;
    }
  }
  if (train_rows.empty() || (val_rows.empty() && test_rows.empty())) {
    return Status::InvalidArgument(
        "classification probe needs labeled rows in train and eval splits");
  }

  // Oversample positives to roughly 1:4 to tame the label skew.
  std::vector<const EmbeddingRow*> balanced = train_rows;
  {
    int64_t pos = 0;
    for (const auto* r : train_rows) pos += r->label;
    const int64_t neg = static_cast<int64_t>(train_rows.size()) - pos;
    if (pos > 0 && neg > 4 * pos) {
      const int64_t copies = neg / (4 * pos);
      for (int64_t c = 1; c < copies; ++c) {
        for (const auto* r : train_rows) {
          if (r->label == 1) balanced.push_back(r);
        }
      }
    }
  }

  const int64_t din = static_cast<int64_t>(train_rows[0]->features.size());
  Rng rng(config.seed);
  nn::Mlp head(din, config.hidden, 1, &rng, /*dropout=*/0.1f);
  tensor::Adam optimizer(head.Parameters(), {.lr = config.lr});

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&balanced);
    for (size_t start = 0; start < balanced.size();
         start += config.batch_size) {
      const size_t end =
          std::min(balanced.size(), start + config.batch_size);
      std::vector<const EmbeddingRow*> chunk(balanced.begin() + start,
                                             balanced.begin() + end);
      tensor::Tensor x = RowsToTensor(chunk);
      std::vector<float> targets;
      targets.reserve(chunk.size());
      for (const auto* r : chunk) {
        targets.push_back(static_cast<float>(r->label));
      }
      tensor::Tensor loss =
          tensor::BceWithLogits(head.Forward(x, &rng), targets);
      optimizer.ZeroGrad();
      APAN_RETURN_NOT_OK(loss.Backward());
      optimizer.Step();
    }
  }

  head.SetTraining(false);
  tensor::NoGradGuard no_grad;
  auto auc_of = [&](const std::vector<const EmbeddingRow*>& split) {
    if (split.empty()) return 0.5;
    tensor::Tensor logits = head.Forward(RowsToTensor(split));
    std::vector<float> scores;
    std::vector<int> labels;
    for (size_t i = 0; i < split.size(); ++i) {
      scores.push_back(logits.item(static_cast<int64_t>(i)));
      labels.push_back(split[i]->label);
    }
    return RocAuc(scores, labels);
  };

  ClassificationResult result;
  result.val_auc = auc_of(val_rows);
  result.test_auc = auc_of(test_rows);
  result.train_rows = static_cast<int64_t>(train_rows.size());
  result.eval_rows =
      static_cast<int64_t>(val_rows.size() + test_rows.size());
  return result;
}

}  // namespace train
}  // namespace apan
