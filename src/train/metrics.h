// Exact binary-classification metrics (AP, ROC-AUC, accuracy).
//
// Computed from rank statistics in O(n log n) — not trapezoid
// approximations — so the small-sample benches are stable across seeds.

#ifndef APAN_TRAIN_METRICS_H_
#define APAN_TRAIN_METRICS_H_

#include <cstdint>
#include <vector>

namespace apan {
namespace train {

/// \brief Area under the precision-recall curve, computed as the average
/// of precision at each positive hit (the "average precision" used by the
/// paper's link-prediction tables). Ties are broken pessimistically by
/// averaging over tied blocks. Returns 0 when there are no positives.
double AveragePrecision(const std::vector<float>& scores,
                        const std::vector<int>& labels);

/// \brief Area under the ROC curve via the Mann-Whitney U statistic with
/// midrank tie handling. Returns 0.5 when one class is absent.
double RocAuc(const std::vector<float>& scores,
              const std::vector<int>& labels);

/// \brief Fraction of correct predictions at `threshold` (paper's link
/// prediction "accuracy" with threshold 0.5 on probabilities).
double AccuracyAtThreshold(const std::vector<float>& scores,
                           const std::vector<int>& labels,
                           float threshold = 0.5f);

/// Mean and sample standard deviation of a series of metric values (used
/// for the "(StdDev over seeds)" columns of Tables 2-3).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_METRICS_H_
