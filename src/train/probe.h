// Frozen-embedding probes.
//
// Two uses, both matching the paper's protocols:
//  * Link probe — unsupervised static embeddings (GAE/VGAE/DeepWalk/
//    Node2Vec/CTDNE) are scored on link prediction by training an MLP
//    decoder on frozen embeddings over the training events, then
//    evaluating on validation/test with the same deterministic negatives
//    the temporal models face.
//  * Classification probe — every model (temporal or static) is scored on
//    dynamic node classification / edge classification by collecting
//    embeddings at labeled events and training an MLP head on the
//    training-range rows (the TGN "decoder on frozen embeddings" setup).

#ifndef APAN_TRAIN_PROBE_H_
#define APAN_TRAIN_PROBE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "train/link_trainer.h"
#include "train/static_model.h"
#include "train/temporal_model.h"

namespace apan {
namespace train {

struct ProbeConfig {
  size_t batch_size = 200;
  int epochs = 10;
  float lr = 3e-3f;
  int64_t hidden = 80;
  uint64_t seed = 7;
  uint64_t negative_seed = 99;  ///< Must match LinkTrainConfig for parity.
};

/// \brief Link-prediction metrics for a fitted static embedding model.
Result<LinkTrainer::EvalResult> EvaluateStaticLink(
    const StaticEmbeddingModel& model, const data::Dataset& dataset,
    const ProbeConfig& config);

/// One labeled example for a classification probe.
struct EmbeddingRow {
  std::vector<float> features;
  int label = 0;
  data::Split split = data::Split::kTrain;
};

/// \brief Streams the dataset through a *trained* temporal model (frozen
/// weights, eval mode) and collects one row per labeled event: the source
/// embedding for node tasks, [z_src ‖ e ‖ z_dst] for edge tasks.
Result<std::vector<EmbeddingRow>> CollectTemporalRows(
    TemporalModel* model, const data::Dataset& dataset, size_t batch_size);

/// \brief Same rows from a fitted static embedding model (embeddings are
/// time-invariant).
std::vector<EmbeddingRow> CollectStaticRows(const StaticEmbeddingModel& model,
                                            const data::Dataset& dataset);

/// Result of a classification probe.
struct ClassificationResult {
  double val_auc = 0.5;
  double test_auc = 0.5;
  int64_t train_rows = 0;
  int64_t eval_rows = 0;
};

/// \brief Trains an MLP head on the train-split rows (positives
/// oversampled to tame the skew) and reports val/test ROC-AUC.
Result<ClassificationResult> TrainClassificationProbe(
    const std::vector<EmbeddingRow>& rows, const ProbeConfig& config);

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_PROBE_H_
