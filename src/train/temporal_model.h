// Common streaming interface for CTDG models.
//
// The trainer drives every dynamic model (APAN, TGN, TGAT, JODIE, DyRep —
// and the static GNNs, which simply ignore streaming state) through the
// same protocol:
//
//   per chronological batch B:
//     ScoreLinks(B)  — embeddings + pos/neg logits (autograd when training)
//     [loss backward + optimizer step]
//     Consume(B)     — advance streaming state past B (no gradients)
//
// Consume must be callable without a prior ScoreLinks on the same batch
// (the classification probes stream without scoring).

#ifndef APAN_TRAIN_TEMPORAL_MODEL_H_
#define APAN_TRAIN_TEMPORAL_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace apan {
namespace train {

/// One chronological batch of a dataset plus per-event negative samples.
struct EventBatch {
  const data::Dataset* dataset = nullptr;
  size_t begin = 0;
  size_t end = 0;
  /// One negative destination per event; may be empty for calls that only
  /// need endpoint embeddings (EmbedEndpoints / Consume).
  std::vector<graph::NodeId> negatives;
  /// Optional non-contiguous view: when non-empty, the batch consists of
  /// dataset->events[indices[i]] with negatives[i] paired positionally
  /// (the data-parallel trainer's per-shard sub-batches — events grouped
  /// by NodePartition owner). begin/end still bound the parent range.
  std::vector<size_t> indices;

  size_t size() const { return indices.empty() ? end - begin : indices.size(); }
  const graph::Event& event(size_t i) const {
    return dataset->events[indices.empty() ? begin + i : indices[i]];
  }
};

/// \brief Interface every dynamic-graph model implements.
class TemporalModel {
 public:
  virtual ~TemporalModel() = default;

  virtual std::string name() const = 0;
  virtual int64_t embedding_dim() const = 0;

  /// Link-prediction logits for the batch.
  struct LinkScores {
    tensor::Tensor pos_logits;  ///< {batch, 1} for the true (src, dst).
    tensor::Tensor neg_logits;  ///< {batch, 1} for (src, negative).
  };
  /// Requires batch.negatives to be filled.
  virtual LinkScores ScoreLinks(const EventBatch& batch) = 0;

  /// Temporal embeddings of each event's endpoints, {batch, dim} each.
  struct EndpointEmbeddings {
    tensor::Tensor z_src;
    tensor::Tensor z_dst;
  };
  virtual EndpointEmbeddings EmbedEndpoints(const EventBatch& batch) = 0;

  /// Advances streaming state (memory/mailbox/graph) past the batch.
  virtual Status Consume(const EventBatch& batch) = 0;

  /// Clears streaming state (start of an epoch); weights persist.
  virtual void ResetState() = 0;

  /// Trainable parameters for the optimizer.
  virtual std::vector<tensor::Tensor> Parameters() = 0;
  virtual void SetTraining(bool training) = 0;

  /// Synchronous-path graph queries made so far (Figure 6's decomposition:
  /// APAN reports 0; synchronous CTDG models report their inference-time
  /// neighbor lookups).
  virtual int64_t SyncPathGraphQueries() const { return 0; }
};

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_TEMPORAL_MODEL_H_
