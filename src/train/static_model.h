// Interface for unsupervised static embedding baselines (GAE, VGAE,
// DeepWalk, Node2Vec, CTDNE). These models Fit on the training split and
// expose frozen per-node embeddings; downstream metrics come from probes
// (train/probe.h), mirroring the paper's observation that task-agnostic
// embeddings contribute only indirectly to downstream tasks.

#ifndef APAN_TRAIN_STATIC_MODEL_H_
#define APAN_TRAIN_STATIC_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace apan {
namespace train {

class StaticEmbeddingModel {
 public:
  virtual ~StaticEmbeddingModel() = default;

  virtual std::string name() const = 0;
  virtual int64_t dim() const = 0;

  /// Learns embeddings from the dataset's training range only.
  virtual Status Fit(const data::Dataset& dataset) = 0;

  /// Frozen embedding of `node` (must be called after Fit).
  virtual std::vector<float> Embedding(graph::NodeId node) const = 0;
};

}  // namespace train
}  // namespace apan

#endif  // APAN_TRAIN_STATIC_MODEL_H_
