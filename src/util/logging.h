// Lightweight leveled logging. Not a general-purpose logger: single
// process, stderr sink, used for progress reporting in trainers/benches.

#ifndef APAN_UTIL_LOGGING_H_
#define APAN_UTIL_LOGGING_H_

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

#include "util/thread_annotations.h"

namespace apan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide logging configuration.
class Logging {
 public:
  // threshold_ is read on every log call from any thread while tests /
  // benches may raise it concurrently — atomic, relaxed: the threshold is
  // advisory (a racing message may use the old level) but the access must
  // not be a data race.
  static LogLevel threshold() {
    return Instance().threshold_.load(std::memory_order_relaxed);
  }
  static void set_threshold(LogLevel level) {
    Instance().threshold_.store(level, std::memory_order_relaxed);
  }

  /// Serializes stderr writes from concurrent threads.
  static util::Mutex& mutex() { return Instance().mu_; }

 private:
  static Logging& Instance() {
    static Logging instance;
    return instance;
  }
  std::atomic<LogLevel> threshold_{LogLevel::kInfo};
  util::Mutex mu_;
};

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= Logging::threshold()) {
      util::MutexLock lock(Logging::mutex());
      std::cerr << stream_.str() << '\n';
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace apan

#define APAN_LOG(level)                                                \
  ::apan::internal::LogMessage(::apan::LogLevel::k##level, __FILE__,   \
                               __LINE__)                               \
      .stream()

#endif  // APAN_UTIL_LOGGING_H_
