// Wall-clock timing utilities used by the benchmark harnesses and the
// serving pipeline's latency instrumentation.
//
// Latency aggregation (mean / p50 / p99) lives in obs/metrics.h
// (obs::Histogram) — the former util::LatencyRecorder was folded into it.

#ifndef APAN_UTIL_STOPWATCH_H_
#define APAN_UTIL_STOPWATCH_H_

#include <chrono>

namespace apan {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace apan

#endif  // APAN_UTIL_STOPWATCH_H_
