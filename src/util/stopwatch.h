// Wall-clock timing utilities used by the benchmark harnesses and the
// serving pipeline's latency instrumentation.

#ifndef APAN_UTIL_STOPWATCH_H_
#define APAN_UTIL_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

namespace apan {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates latency samples and reports order statistics.
///
/// Used by bench/fig6_inference_latency and the serving engines to report
/// mean / p50 / p99 per-batch latencies. Thread-safe: the serving engines
/// record from worker threads while benches read concurrently.
class LatencyRecorder {
 public:
  void Record(double millis) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(millis);
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return MeanLocked();
  }

  double StdDev() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < 2) return 0.0;
    const double m = MeanLocked();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  /// \brief q-th quantile by linear interpolation. `q` is clamped to
  /// [0, 1]: below 0 it would wrap through the size_t index cast, above 1
  /// it would read past the sorted sample array. NaN maps to 1 (fmin/fmax
  /// eat NaN; std::clamp would pass it through into the index cast — UB).
  double Quantile(double q) const {
    std::vector<double> sorted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sorted = samples_;
    }
    if (sorted.empty()) return 0.0;
    std::sort(sorted.begin(), sorted.end());
    q = std::fmax(0.0, std::fmin(q, 1.0));
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

 private:
  double MeanLocked() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace apan

#endif  // APAN_UTIL_STOPWATCH_H_
