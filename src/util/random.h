// Deterministic, fast pseudo-random number generation.
//
// All stochastic components in the library (initializers, samplers, dataset
// generators, dropout) draw from Rng so that experiments are reproducible
// from a single seed. Rng is xoshiro256**, seeded via SplitMix64.

#ifndef APAN_UTIL_RANDOM_H_
#define APAN_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace apan {

/// \brief SplitMix64 — used to expand a single 64-bit seed into the
/// xoshiro256** state, and available stand-alone for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** generator with convenience distributions.
///
/// Not thread-safe; use one Rng per thread (see Fork()).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5EEDCAFEF00DULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a 64-bit value.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// \brief Creates an independent child generator; children with different
  /// `stream` values are decorrelated from each other and the parent.
  Rng Fork(uint64_t stream) {
    return Rng(Next() ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    APAN_CHECK(n > 0);
    // Lemire's unbiased bounded generation.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (~n + 1) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    APAN_CHECK(hi >= lo);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (cached second value).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda) {
    double u = 0.0;
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / lambda;
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// \brief Samples an index from an unnormalized non-negative weight
  /// vector. Returns weights.size() when the total mass is zero.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double u = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// \brief Zipf-like draw over [0, n): probability of rank r proportional
  /// to 1/(r+1)^alpha. Uses rejection sampling; O(1) expected.
  uint64_t Zipf(uint64_t n, double alpha) {
    APAN_CHECK(n > 0);
    if (alpha <= 0.0) return UniformInt(n);
    // Inverse-CDF approximation on the continuous envelope.
    const double amin = 1.0;
    const double amax = static_cast<double>(n) + 1.0;
    while (true) {
      double u = Uniform();
      double x;
      if (std::abs(alpha - 1.0) < 1e-9) {
        x = std::exp(u * std::log(amax / amin)) * amin;
      } else {
        const double one_minus = 1.0 - alpha;
        const double lo = std::pow(amin, one_minus);
        const double hi = std::pow(amax, one_minus);
        x = std::pow(lo + u * (hi - lo), 1.0 / one_minus);
      }
      const uint64_t k = static_cast<uint64_t>(x) - 1;
      if (k < n) return k;
    }
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      const size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Reservoir-samples k distinct indices from [0, n). Returns fewer
  /// when n < k. Order of the sample is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    std::vector<size_t> out;
    out.reserve(std::min(n, k));
    for (size_t i = 0; i < n; ++i) {
      if (out.size() < k) {
        out.push_back(i);
      } else {
        const size_t j = UniformInt(i + 1);
        if (j < k) out[j] = i;
      }
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace apan

#endif  // APAN_UTIL_RANDOM_H_
