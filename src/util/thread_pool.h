// Minimal fixed-size thread pool used for data-parallel sections (neighbor
// sampling fan-out, baseline walk generation).

#ifndef APAN_UTIL_THREAD_POOL_H_
#define APAN_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace apan {

/// \brief Fixed-size pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      util::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Schedules `fn` and returns a future for its completion.
  template <typename Fn>
  std::future<void> Submit(Fn&& fn) APAN_EXCLUDES(mu_) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<Fn>(fn));
    std::future<void> fut = task->get_future();
    {
      util::MutexLock lock(mu_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// \brief Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations complete. Falls back to inline execution for tiny n.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.size() == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const size_t shards = std::min(n, workers_.size());
    const size_t chunk = (n + shards - 1) / shards;
    std::vector<std::future<void>> futs;
    futs.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      const size_t lo = s * chunk;
      const size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) break;
      futs.push_back(Submit([lo, hi, &fn] {
        for (size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    for (auto& f : futs) f.get();
  }

 private:
  void WorkerLoop() APAN_EXCLUDES(mu_) {
    while (true) {
      std::function<void()> task;
      {
        util::MutexLock lock(mu_);
        while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_ APAN_GUARDED_BY(mu_);
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_ APAN_GUARDED_BY(mu_) = false;
};

}  // namespace apan

#endif  // APAN_UTIL_THREAD_POOL_H_
