// Clang thread-safety annotations + annotated mutex/condvar wrappers.
//
// The serve plane's correctness is lock-discipline-based (per-shard inbox
// locks, the state/encode split, the flush barrier). This header turns
// that discipline into a compile-time contract: state is declared
// APAN_GUARDED_BY its mutex, functions declare APAN_REQUIRES /
// APAN_EXCLUDES, and a clang build with -Werror=thread-safety (the `lint`
// CMake preset / CI job) fails on any unguarded access or missing lock.
// Under GCC (the default local toolchain) every macro expands to nothing
// and the wrappers cost exactly what std::mutex/std::condition_variable
// cost.
//
// Conventions (docs/static-analysis.md has the full guide):
//   * util::Mutex, never bare std::mutex, anywhere two threads meet;
//   * util::MutexLock for scopes; CondVar waits take the Mutex directly
//     and re-assert it to the analysis on wake;
//   * condition-variable predicates are written as explicit while-loops
//     around CondVar::Wait — a capturing lambda predicate reads guarded
//     state from a context the analysis cannot see into;
//   * APAN_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort
//     and every use carries a comment saying why the analysis is wrong.

#ifndef APAN_UTIL_THREAD_ANNOTATIONS_H_
#define APAN_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute spelling: active under clang (which implements the analysis),
// inert elsewhere. The __has_attribute probe keeps ancient clangs and
// clang-imitators from choking on unknown attributes.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define APAN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef APAN_THREAD_ANNOTATION_ATTRIBUTE__
#define APAN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define APAN_CAPABILITY(x) APAN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class that acquires in its ctor and releases in its dtor.
#define APAN_SCOPED_CAPABILITY \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define APAN_GUARDED_BY(x) APAN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely — the unique_ptr-to-shard-state pattern).
#define APAN_PT_GUARDED_BY(x) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Documented lock-order edges (checked by -Wthread-safety-beta).
#define APAN_ACQUIRED_BEFORE(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define APAN_ACQUIRED_AFTER(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability when calling (and still holds after).
#define APAN_REQUIRES(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define APAN_ACQUIRE(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it on entry).
#define APAN_RELEASE(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires iff it returns `b`.
#define APAN_TRY_ACQUIRE(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy contract).
#define APAN_EXCLUDES(...) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime-asserted "I know this is held" (e.g. after an external check).
#define APAN_ASSERT_CAPABILITY(x) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the named capability.
#define APAN_RETURN_CAPABILITY(x) \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the analysis is wrong here, and the adjacent comment
/// says why. Grep-able; reviewed like a cast.
#define APAN_NO_THREAD_SAFETY_ANALYSIS \
  APAN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace apan {
namespace util {

class CondVar;

/// \brief std::mutex with the capability annotations the analysis needs.
/// Same size, same cost; Lock/Unlock are the annotated verbs.
class APAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() APAN_ACQUIRE() { mu_.lock(); }
  void Unlock() APAN_RELEASE() { mu_.unlock(); }
  bool TryLock() APAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII scope over a util::Mutex (the std::lock_guard shape, but
/// the analysis tracks the acquire/release pair).
class APAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) APAN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() APAN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable bound to util::Mutex. Wait takes the Mutex
/// itself — the caller must hold it (APAN_REQUIRES), and still holds it
/// when Wait returns, so guarded state stays accessible across the wait.
///
/// Internally each wait adopts the already-held std::mutex into a
/// std::unique_lock for the libstdc++ wait call and releases the adoption
/// before returning — the lock is never actually dropped outside the wait
/// itself, which is exactly the invariant the REQUIRES annotation states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wakeup (spurious wakeups allowed, as ever) — call in a while
  /// loop re-checking the guarded predicate.
  void Wait(Mutex& mu) APAN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Waits up to `timeout`; std::cv_status::timeout when it elapsed.
  /// Same while-loop discipline as Wait.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      APAN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace apan

#endif  // APAN_UTIL_THREAD_ANNOTATIONS_H_
