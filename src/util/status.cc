#include "util/status.h"

namespace apan {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace apan
