// Bounded blocking MPMC queue.
//
// The asynchronous propagation link (serve::AsyncPipeline) pushes completed
// interactions into a BoundedQueue that a background worker drains. The
// queue supports a configurable overflow policy so the serving benches can
// exercise back-pressure behaviour.

#ifndef APAN_UTIL_BOUNDED_QUEUE_H_
#define APAN_UTIL_BOUNDED_QUEUE_H_

#include <deque>
#include <optional>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace apan {

/// What Push does when the queue is at capacity.
enum class OverflowPolicy {
  kBlock,       ///< Wait for space (back-pressure; default).
  kDropNewest,  ///< Reject the incoming item.
  kDropOldest,  ///< Evict the oldest queued item to make room.
};

/// \brief Thread-safe bounded FIFO. All operations are linearizable.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity,
                        OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  /// \brief Enqueues an item according to the overflow policy.
  ///
  /// When `evicted` is non-null and kDropOldest displaces a queued item,
  /// the displaced item is moved into `*evicted` instead of being silently
  /// destroyed — producers that must account for every lost item (e.g.
  /// serve::AsyncPipeline's mails_dropped counter) inspect it. On every
  /// non-evicting return path `*evicted` is left empty, including Push
  /// after Close.
  /// \return OK on success; ResourceExhausted when kDropNewest rejected the
  ///         item; Cancelled when the queue was closed.
  Status Push(T item, std::optional<T>* evicted = nullptr)
      APAN_EXCLUDES(mu_) {
    if (evicted != nullptr) evicted->reset();
    util::MutexLock lock(mu_);
    if (closed_) return Status::Cancelled("queue closed");
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock:
          while (items_.size() >= capacity_ && !closed_) not_full_.Wait(mu_);
          if (closed_) return Status::Cancelled("queue closed");
          break;
        case OverflowPolicy::kDropNewest:
          ++dropped_;
          return Status::ResourceExhausted("queue full; item dropped");
        case OverflowPolicy::kDropOldest:
          if (evicted != nullptr) *evicted = std::move(items_.front());
          items_.pop_front();
          ++dropped_;
          break;
      }
    }
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return Status::OK();
  }

  /// \brief Blocks until an item is available or the queue is closed and
  /// drained. Returns nullopt only in the latter case.
  std::optional<T> Pop() APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// \brief Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// \brief Closes the queue: future pushes fail, pops drain the backlog
  /// then return nullopt.
  void Close() APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Number of items lost to a drop policy since construction.
  size_t dropped() const APAN_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return dropped_;
  }

 private:
  const size_t capacity_;
  const OverflowPolicy policy_;
  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ APAN_GUARDED_BY(mu_);
  bool closed_ APAN_GUARDED_BY(mu_) = false;
  size_t dropped_ APAN_GUARDED_BY(mu_) = 0;
};

}  // namespace apan

#endif  // APAN_UTIL_BOUNDED_QUEUE_H_
