// Arrow/RocksDB-style Status and Result<T> error handling.
//
// Library code never throws for recoverable conditions; functions that can
// fail return Status (no payload) or Result<T> (payload or error). Fatal
// programming errors (violated preconditions inside the library) use
// APAN_CHECK, which aborts with a message.

#ifndef APAN_UTIL_STATUS_H_
#define APAN_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace apan {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kIoError = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kCancelled = 10,
};

/// \brief Returns a human-readable name for a status code, e.g.
/// "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that has no payload.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// \brief Renders the status as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Outcome of an operation that yields a T on success.
///
/// Holds either a value or an error status; never both, never neither.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// \brief Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T& ValueOrDie() & {
    CheckOk();
    return *value_;
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value or `fallback` when holding an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << '\n';
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
/// Builds an error message from streamable parts.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace internal

}  // namespace apan

/// Propagates a non-OK Status to the caller.
#define APAN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::apan::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#define APAN_INTERNAL_CONCAT_IMPL(a, b) a##b
#define APAN_INTERNAL_CONCAT(a, b) APAN_INTERNAL_CONCAT_IMPL(a, b)

/// Assigns the value of a Result<T> expression or propagates its error.
#define APAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto&& tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define APAN_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  APAN_ASSIGN_OR_RETURN_IMPL(APAN_INTERNAL_CONCAT(_apan_result_, __LINE__), \
                             lhs, rexpr)

/// Aborts with a message when `cond` is false. For programming errors only.
#define APAN_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "APAN_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << '\n';                                     \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define APAN_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "APAN_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << " — " << (msg) << '\n';                   \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // APAN_UTIL_STATUS_H_
