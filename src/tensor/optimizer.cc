#include "tensor/optimizer.h"

#include <cmath>

namespace apan {
namespace tensor {

double Optimizer::ClipGradNorm(double max_norm) {
  double sq = 0.0;
  for (auto& p : params_) {
    const float* g = p.grad_data();
    const int64_t n = p.numel();
    for (int64_t i = 0; i < n; ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      float* g = p.grad_data();
      const int64_t n = p.numel();
      for (int64_t i = 0; i < n; ++i) g[i] *= scale;
    }
  }
  return norm;
}

void Sgd::Step() {
  for (auto& p : params_) {
    float* w = p.data();
    float* g = p.grad_data();
    const int64_t n = p.numel();
    if (opts_.momentum != 0.0f) {
      auto& vel = velocity_[p.impl().get()];
      if (vel.size() != static_cast<size_t>(n)) vel.assign(n, 0.0f);
      for (int64_t i = 0; i < n; ++i) {
        float grad = g[i] + opts_.weight_decay * w[i];
        vel[i] = opts_.momentum * vel[i] + grad;
        w[i] -= opts_.lr * vel[i];
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        w[i] -= opts_.lr * (g[i] + opts_.weight_decay * w[i]);
      }
    }
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (auto& p : params_) {
    float* w = p.data();
    float* g = p.grad_data();
    const int64_t n = p.numel();
    auto& st = state_[p.impl().get()];
    if (st.m.size() != static_cast<size_t>(n)) {
      st.m.assign(n, 0.0f);
      st.v.assign(n, 0.0f);
    }
    for (int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + opts_.weight_decay * w[i];
      st.m[i] = opts_.beta1 * st.m[i] + (1.0f - opts_.beta1) * grad;
      st.v[i] = opts_.beta2 * st.v[i] + (1.0f - opts_.beta2) * grad * grad;
      const float mhat = st.m[i] / bc1;
      const float vhat = st.v[i] / bc2;
      w[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

}  // namespace tensor
}  // namespace apan
