#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace apan {
namespace tensor {

namespace {

using Impl = internal::TensorImpl;
using ImplPtr = std::shared_ptr<Impl>;

/// Output buffer for an op. `zero` = false when the op provably writes
/// every element (kernels overwrite; the arena then skips the redundant
/// clear pass on recycled buffers). Ops that ACCUMULATE into their
/// output (MeanDim1) must pass true.
ImplPtr NewImpl(Shape shape, bool zero = true) {
  // Inference mode with an active ArenaScope: recycle a pooled impl so a
  // warm serve batch performs zero per-op heap allocations.
  if (!NoGradGuard::GradEnabled()) {
    if (TensorArena* arena = TensorArena::Current()) {
      return arena->Allocate(std::move(shape), zero);
    }
  } else if (TrainingArena* arena = TrainingArena::Current()) {
    // Gradient recording with an active TrainingStepScope: draw from the
    // graph-planned training pool (refcount-guarded, so live autograd
    // graphs are never aliased — see arena.h).
    return arena->Allocate(std::move(shape), zero);
  }
  auto impl = std::make_shared<Impl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  // Fresh heap vectors zero-initialize either way; no skip possible.
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  return impl;
}

bool AnyRequiresGrad(const std::vector<ImplPtr>& parents) {
  if (!NoGradGuard::GradEnabled()) return false;
  for (const auto& p : parents) {
    if (p && p->requires_grad) return true;
  }
  return false;
}

/// True when an op over these parents must record a backward closure.
/// Checked at every call site BEFORE building the parent list and the
/// closure, so NoGradGuard regions skip autograd registration entirely
/// (no parent-vector or std::function allocation, not even a no-op one).
inline bool Rec(const ImplPtr& a) {
  return NoGradGuard::GradEnabled() && a->requires_grad;
}
inline bool Rec(const ImplPtr& a, const ImplPtr& b) {
  return NoGradGuard::GradEnabled() &&
         (a->requires_grad || b->requires_grad);
}

/// Attaches autograd metadata to `out`. Callers must have checked
/// Rec()/AnyRequiresGrad first.
void Register(const ImplPtr& out, std::vector<ImplPtr> parents,
              std::function<void()> backward) {
  out->requires_grad = true;
  out->parents = std::move(parents);
  out->backward_fn = std::move(backward);
}

int64_t LastDim(const Shape& s) { return s.back(); }

int64_t LeadingRows(const Shape& s) {
  int64_t rows = 1;
  for (size_t i = 0; i + 1 < s.size(); ++i) rows *= s[i];
  return rows;
}

enum class BroadcastKind { kSameShape, kLastDim };

BroadcastKind CheckBroadcast(const Tensor& a, const Tensor& b) {
  APAN_CHECK(a.defined() && b.defined());
  if (a.shape() == b.shape()) return BroadcastKind::kSameShape;
  APAN_CHECK_MSG(
      b.rank() == 1 && b.dim(0) == LastDim(a.shape()),
      "broadcast requires equal shapes or rank-1 rhs over the last dim");
  return BroadcastKind::kLastDim;
}

}  // namespace

// ---- Elementwise arithmetic ------------------------------------------------

namespace {

// Shared implementation of Add/Sub/Mul under the restricted broadcast rules.
template <typename Fwd, typename BwdA, typename BwdB>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, BwdA bwd_a,
                BwdB bwd_b) {
  const BroadcastKind kind = CheckBroadcast(a, b);
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  const size_t n = pa->data.size();
  const size_t d = static_cast<size_t>(LastDim(pa->shape));
  if (kind == BroadcastKind::kSameShape) {
    for (size_t i = 0; i < n; ++i) {
      out->data[i] = fwd(pa->data[i], pb->data[i]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      out->data[i] = fwd(pa->data[i], pb->data[i % d]);
    }
  }
  Impl* raw = out.get();
  if (Rec(pa, pb)) {
    Register(out, {pa, pb}, [pa, pb, raw, kind, n, d, bwd_a, bwd_b] {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          const float bv = (kind == BroadcastKind::kSameShape)
                               ? pb->data[i]
                               : pb->data[i % d];
          pa->grad[i] += bwd_a(raw->grad[i], pa->data[i], bv);
        }
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          const size_t j = (kind == BroadcastKind::kSameShape) ? i : i % d;
          pb->grad[j] += bwd_b(raw->grad[i], pa->data[i], pb->data[j]);
        }
      }
    });
  }
  return Tensor::WrapImpl(out);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  // The hottest elementwise op on the serve path (bias adds, residuals,
  // positional enrichment) — forward through the dispatched kernels; the
  // backward closure matches BinaryOp's.
  const BroadcastKind kind = CheckBroadcast(a, b);
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  const size_t n = pa->data.size();
  const size_t d = static_cast<size_t>(LastDim(pa->shape));
  if (kind == BroadcastKind::kSameShape) {
    kernels::AddSame(pa->data.data(), pb->data.data(), out->data.data(),
                     static_cast<int64_t>(n));
  } else {
    kernels::AddBias(pa->data.data(), pb->data.data(), out->data.data(),
                     static_cast<int64_t>(n / d), static_cast<int64_t>(d));
  }
  Impl* raw = out.get();
  if (Rec(pa, pb)) {
    Register(out, {pa, pb}, [pa, pb, raw, kind, n, d] {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        kernels::Accumulate(raw->grad.data(), pa->grad.data(),
                            static_cast<int64_t>(n));
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        if (kind == BroadcastKind::kSameShape) {
          kernels::Accumulate(raw->grad.data(), pb->grad.data(),
                              static_cast<int64_t>(n));
        } else {
          // Column sums of the {rows, d} gradient into the rank-1 bias.
          for (size_t r = 0; r < n / d; ++r) {
            kernels::Accumulate(raw->grad.data() + r * d, pb->grad.data(),
                                static_cast<int64_t>(d));
          }
        }
      }
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float g, float, float) { return g; },
      [](float g, float, float) { return -g; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = CheckBroadcast(a, b);
  if (kind != BroadcastKind::kSameShape) {
    // Broadcast multiply stays on the generic path (rare: gate scalars).
    return BinaryOp(
        a, b, [](float x, float y) { return x * y; },
        [](float g, float, float y) { return g * y; },
        [](float g, float x, float) { return g * x; });
  }
  // Same-shape multiply is the mask application in the attention stack —
  // hot enough in training that the backward fan-in (dA += G.B,
  // dB += G.A) goes through the dispatched AccumulateMul kernel.
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  const size_t n = pa->data.size();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa->data[i] * pb->data[i];
  Impl* raw = out.get();
  if (Rec(pa, pb)) {
    Register(out, {pa, pb}, [pa, pb, raw, n] {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        kernels::AccumulateMul(raw->grad.data(), pb->data.data(),
                               pa->grad.data(), static_cast<int64_t>(n));
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        kernels::AccumulateMul(raw->grad.data(), pa->data.data(),
                               pb->grad.data(), static_cast<int64_t>(n));
      }
    });
  }
  return Tensor::WrapImpl(out);
}

namespace {

// Unary op helper: fwd(x) and bwd(g, x, y) -> dx, where y is the output.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  APAN_CHECK(a.defined());
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const size_t n = pa->data.size();
  for (size_t i = 0; i < n; ++i) out->data[i] = fwd(pa->data[i]);
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, n, bwd] {
      pa->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        pa->grad[i] += bwd(raw->grad[i], pa->data[i], raw->data[i]);
      }
    });
  }
  return Tensor::WrapImpl(out);
}

}  // namespace

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float g, float, float) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  // Scaling sits on every loss head (mean reductions, shard weights);
  // the backward is a pure axpy, so route it through the kernel instead
  // of the per-element UnaryOp closure.
  APAN_CHECK(a.defined());
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const size_t n = pa->data.size();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa->data[i] * s;
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, n, s] {
      pa->EnsureGrad();
      kernels::Axpy(s, raw->grad.data(), pa->grad.data(),
                    static_cast<int64_t>(n));
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

// ---- Activations -----------------------------------------------------------

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float g, float x, float) { return x > 0.0f ? g : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float g, float x, float) { return x > 0.0f ? g : slope * g; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Stable sigmoid.
        if (x >= 0.0f) {
          const float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(x);
        return z / (1.0f + z);
      },
      [](float g, float, float y) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float g, float, float y) { return g * (1.0f - y * y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float g, float, float y) { return g * y; });
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float g, float x, float) { return g / std::max(x, eps); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float g, float x, float) { return -g * std::sin(x); });
}

Tensor AddBiasRelu(const Tensor& a, const Tensor& bias) {
  APAN_CHECK(a.defined() && bias.defined());
  APAN_CHECK_MSG(bias.rank() == 1 && bias.dim(0) == LastDim(a.shape()),
                 "AddBiasRelu bias must be rank-1 over the last dim");
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = bias.impl();
  const size_t n = pa->data.size();
  const int64_t d = LastDim(pa->shape);
  const int64_t rows = static_cast<int64_t>(n) / d;
  kernels::AddBiasRelu(pa->data.data(), pb->data.data(), out->data.data(),
                       rows, d);
  Impl* raw = out.get();
  if (Rec(pa, pb)) {
    Register(out, {pa, pb}, [pa, pb, raw, rows, d] {
      // relu'(y) in terms of the output: y > 0 <=> (x + bias) > 0.
      if (pa->requires_grad) pa->EnsureGrad();
      if (pb->requires_grad) pb->EnsureGrad();
      kernels::AddBiasReluBackward(
          raw->data.data(), raw->grad.data(),
          pa->requires_grad ? pa->grad.data() : nullptr,
          pb->requires_grad ? pb->grad.data() : nullptr, rows, d);
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor ForwardBuffer(Shape shape, bool zero) {
  return Tensor::WrapImpl(NewImpl(std::move(shape), zero));
}

// ---- Linear algebra --------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  APAN_CHECK(a.defined() && b.defined());
  APAN_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "MatMul expects rank-2");
  const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  APAN_CHECK_MSG(b.dim(0) == k, "MatMul inner dimension mismatch");
  auto out = NewImpl({n, m}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  // Serve calls (NoGrad) run the cross-ISA bitwise GEMM; a recorded
  // forward feeds the training graph, so the FMA tier is legal for it —
  // the same per-ISA contract the backward kernels live under.
  if (NoGradGuard::GradEnabled()) {
    kernels::MatMulTrain(pa->data.data(), pb->data.data(), out->data.data(),
                         n, k, m);
  } else {
    kernels::MatMul(pa->data.data(), pb->data.data(), out->data.data(), n, k,
                    m);
  }
  Impl* raw = out.get();
  if (!Rec(pa, pb)) return Tensor::WrapImpl(out);
  Register(out, {pa, pb}, [pa, pb, raw, n, k, m] {
    const float* G = raw->grad.data();
    if (pa->requires_grad) {
      pa->EnsureGrad();  // dA += G * B^T : {n,m} x {m,k}
      kernels::MatMulGradA(G, pb->data.data(), pa->grad.data(), n, k, m);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();  // dB += A^T * G : {k,n} x {n,m}
      kernels::MatMulGradB(pa->data.data(), G, pb->grad.data(), n, k, m);
    }
  });
  return Tensor::WrapImpl(out);
}

Tensor Bmm(const Tensor& a, const Tensor& b) {
  APAN_CHECK(a.defined() && b.defined());
  APAN_CHECK_MSG(a.rank() == 3 && b.rank() == 3, "Bmm expects rank-3");
  const int64_t bs = a.dim(0), n = a.dim(1), k = a.dim(2), m = b.dim(2);
  APAN_CHECK_MSG(b.dim(0) == bs && b.dim(1) == k,
                 "Bmm batch/inner dimension mismatch");
  auto out = NewImpl({bs, n, m}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  if (NoGradGuard::GradEnabled()) {
    kernels::BmmTrain(pa->data.data(), pb->data.data(), out->data.data(), bs,
                      n, k, m);
  } else {
    kernels::Bmm(pa->data.data(), pb->data.data(), out->data.data(), bs, n,
                 k, m);
  }
  Impl* raw = out.get();
  if (!Rec(pa, pb)) return Tensor::WrapImpl(out);
  Register(out, {pa, pb}, [pa, pb, raw, bs, n, k, m] {
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    for (int64_t t = 0; t < bs; ++t) {
      const float* G = raw->grad.data() + t * n * m;
      if (pa->requires_grad) {
        kernels::MatMulGradA(G, pb->data.data() + t * k * m,
                             pa->grad.data() + t * n * k, n, k, m);
      }
      if (pb->requires_grad) {
        kernels::MatMulGradB(pa->data.data() + t * n * k, G,
                             pb->grad.data() + t * k * m, n, k, m);
      }
    }
  });
  return Tensor::WrapImpl(out);
}

Tensor Transpose2D(const Tensor& a) {
  APAN_CHECK(a.defined() && a.rank() == 2);
  return Permute(a, {1, 0});
}

namespace {

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

}  // namespace

namespace {

/// Walk state for a permute: the input strides reordered to the output's
/// dimension order, plus the output extents. When the innermost output
/// dim is also the innermost input dim, whole rows of `run` elements are
/// contiguous on BOTH sides and the walk visits runs instead of
/// elements. Incremental odometer — no per-element div/mod, no
/// materialized index map (the old implementation heap-allocated an
/// n-entry src_index per call and divided rank times per element; this
/// showed up as ~half the training-epoch profile via attention's head
/// split/transpose).
struct PermuteWalk {
  std::vector<int64_t> step;    ///< input stride per output dim
  std::vector<int64_t> extent;  ///< output extents
  size_t odo_rank = 0;          ///< dims the odometer iterates
  int64_t run = 1;              ///< contiguous elements per visit
};

PermuteWalk MakePermuteWalk(const Shape& in_shape,
                            const std::vector<size_t>& perm) {
  const size_t rank = perm.size();
  const auto in_strides = RowMajorStrides(in_shape);
  PermuteWalk w;
  w.step.resize(rank);
  w.extent.resize(rank);
  for (size_t d = 0; d < rank; ++d) {
    w.step[d] = in_strides[perm[d]];
    w.extent[d] = in_shape[perm[d]];
  }
  const bool inner_contig = rank > 0 && perm[rank - 1] == rank - 1;
  w.run = inner_contig ? w.extent[rank - 1] : 1;
  w.odo_rank = inner_contig ? rank - 1 : rank;
  return w;
}

/// Calls body(out_flat, in_flat) once per contiguous run, in output
/// order. `n` is the total element count.
template <typename Body>
void ForEachPermuteRun(const PermuteWalk& w, size_t n, Body&& body) {
  if (n == 0 || w.run == 0) return;
  std::vector<int64_t> coord(w.odo_rank, 0);
  int64_t src = 0;
  size_t flat = 0;
  while (true) {
    body(flat, static_cast<size_t>(src));
    flat += static_cast<size_t>(w.run);
    if (flat >= n) break;
    size_t d = w.odo_rank;
    while (d-- > 0) {
      src += w.step[d];
      if (++coord[d] < w.extent[d]) break;
      src -= w.step[d] * w.extent[d];
      coord[d] = 0;
    }
  }
}

}  // namespace

Tensor Permute(const Tensor& a, const std::vector<size_t>& perm) {
  APAN_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  APAN_CHECK_MSG(perm.size() == in_shape.size(), "Permute rank mismatch");
  Shape out_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    APAN_CHECK(perm[i] < in_shape.size());
    out_shape[i] = in_shape[perm[i]];
  }
  auto out = NewImpl(out_shape, /*zero=*/false);
  const ImplPtr pa = a.impl();
  const size_t n = pa->data.size();
  const PermuteWalk walk = MakePermuteWalk(in_shape, perm);
  if (walk.run == 1) {
    ForEachPermuteRun(walk, n, [&](size_t flat, size_t src) {
      out->data[flat] = pa->data[src];
    });
  } else {
    const size_t run_bytes = static_cast<size_t>(walk.run) * sizeof(float);
    ForEachPermuteRun(walk, n, [&](size_t flat, size_t src) {
      std::memcpy(out->data.data() + flat, pa->data.data() + src, run_bytes);
    });
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, walk, n] {
      pa->EnsureGrad();
      if (walk.run == 1) {
        ForEachPermuteRun(walk, n, [&](size_t flat, size_t src) {
          pa->grad[src] += raw->grad[flat];
        });
      } else {
        ForEachPermuteRun(walk, n, [&](size_t flat, size_t src) {
          kernels::Accumulate(raw->grad.data() + flat, pa->grad.data() + src,
                              walk.run);
        });
      }
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor Reshape(const Tensor& a, Shape new_shape) {
  APAN_CHECK(a.defined());
  APAN_CHECK_MSG(NumElements(new_shape) == a.numel(),
                 "Reshape element count mismatch");
  auto out = NewImpl(std::move(new_shape), /*zero=*/false);
  const ImplPtr pa = a.impl();
  out->data = pa->data;
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw] {
      pa->EnsureGrad();
      kernels::Accumulate(raw->grad.data(), pa->grad.data(),
                          static_cast<int64_t>(raw->grad.size()));
    });
  }
  return Tensor::WrapImpl(out);
}

// ---- Structure -------------------------------------------------------------

Tensor ConcatLastDim(const std::vector<Tensor>& parts) {
  APAN_CHECK_MSG(!parts.empty(), "ConcatLastDim on empty list");
  const Shape& s0 = parts[0].shape();
  int64_t total_last = 0;
  for (const Tensor& p : parts) {
    APAN_CHECK(p.defined() && p.rank() == s0.size());
    for (size_t d = 0; d + 1 < s0.size(); ++d) {
      APAN_CHECK_MSG(p.dim(d) == s0[d], "ConcatLastDim leading dim mismatch");
    }
    total_last += LastDim(p.shape());
  }
  Shape out_shape = s0;
  out_shape.back() = total_last;
  auto out = NewImpl(out_shape, /*zero=*/false);
  const int64_t rows = LeadingRows(out_shape);
  std::vector<ImplPtr> parents;
  parents.reserve(parts.size());
  std::vector<int64_t> widths;
  for (const Tensor& p : parts) {
    parents.push_back(p.impl());
    widths.push_back(LastDim(p.shape()));
  }
  for (int64_t r = 0; r < rows; ++r) {
    int64_t offset = 0;
    for (size_t pi = 0; pi < parents.size(); ++pi) {
      const int64_t w = widths[pi];
      std::copy_n(parents[pi]->data.data() + r * w, w,
                  out->data.data() + r * total_last + offset);
      offset += w;
    }
  }
  Impl* raw = out.get();
  if (!AnyRequiresGrad(parents)) return Tensor::WrapImpl(out);
  Register(out, parents,
           [parents, raw, widths = std::move(widths), rows, total_last] {
             for (int64_t r = 0; r < rows; ++r) {
               int64_t offset = 0;
               for (size_t pi = 0; pi < parents.size(); ++pi) {
                 const int64_t w = widths[pi];
                 if (parents[pi]->requires_grad) {
                   parents[pi]->EnsureGrad();
                   kernels::Accumulate(
                       raw->grad.data() + r * total_last + offset,
                       parents[pi]->grad.data() + r * w, w);
                 }
                 offset += w;
               }
             }
           });
  return Tensor::WrapImpl(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  APAN_CHECK_MSG(!parts.empty(), "ConcatRows on empty list");
  const Shape& s0 = parts[0].shape();
  int64_t total_first = 0;
  for (const Tensor& p : parts) {
    APAN_CHECK(p.defined() && p.rank() == s0.size());
    for (size_t d = 1; d < s0.size(); ++d) {
      APAN_CHECK_MSG(p.dim(d) == s0[d], "ConcatRows trailing dim mismatch");
    }
    total_first += p.dim(0);
  }
  Shape out_shape = s0;
  out_shape[0] = total_first;
  auto out = NewImpl(out_shape, /*zero=*/false);
  std::vector<ImplPtr> parents;
  size_t offset = 0;
  for (const Tensor& p : parts) {
    parents.push_back(p.impl());
    std::copy(p.impl()->data.begin(), p.impl()->data.end(),
              out->data.begin() + offset);
    offset += p.impl()->data.size();
  }
  Impl* raw = out.get();
  if (!AnyRequiresGrad(parents)) return Tensor::WrapImpl(out);
  Register(out, parents, [parents, raw] {
    size_t offset = 0;
    for (const auto& p : parents) {
      if (p->requires_grad) {
        p->EnsureGrad();
        kernels::Accumulate(raw->grad.data() + offset, p->grad.data(),
                            static_cast<int64_t>(p->data.size()));
      }
      offset += p->data.size();
    }
  });
  return Tensor::WrapImpl(out);
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  APAN_CHECK(a.defined() && a.rank() == 2);
  const int64_t n = a.dim(0), d = a.dim(1);
  for (int64_t idx : indices) {
    APAN_CHECK_MSG(idx >= 0 && idx < n, "GatherRows index out of range");
  }
  auto out = NewImpl({static_cast<int64_t>(indices.size()), d}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  for (size_t r = 0; r < indices.size(); ++r) {
    std::copy_n(pa->data.data() + indices[r] * d, d,
                out->data.data() + static_cast<int64_t>(r) * d);
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, indices, d] {
      pa->EnsureGrad();
      for (size_t r = 0; r < indices.size(); ++r) {
        kernels::Accumulate(raw->grad.data() + static_cast<int64_t>(r) * d,
                            pa->grad.data() + indices[r] * d, d);
      }
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceCols(const Tensor& a, int64_t col_begin, int64_t col_end) {
  APAN_CHECK(a.defined() && a.rank() == 2);
  const int64_t n = a.dim(0), m = a.dim(1);
  APAN_CHECK_MSG(0 <= col_begin && col_begin < col_end && col_end <= m,
                 "SliceCols range invalid");
  const int64_t w = col_end - col_begin;
  auto out = NewImpl({n, w}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  for (int64_t i = 0; i < n; ++i) {
    std::copy_n(pa->data.data() + i * m + col_begin, w,
                out->data.data() + i * w);
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, n, m, w, col_begin] {
      pa->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        kernels::Accumulate(raw->grad.data() + i * w,
                            pa->grad.data() + i * m + col_begin, w);
      }
    });
  }
  return Tensor::WrapImpl(out);
}

// ---- Normalization / attention helpers --------------------------------------

Tensor SoftmaxLastDim(const Tensor& a) {
  APAN_CHECK(a.defined());
  const int64_t d = LastDim(a.shape());
  const int64_t rows = LeadingRows(a.shape());
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  kernels::SoftmaxLastDim(pa->data.data(), out->data.data(), rows, d);
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, rows, d] {
      pa->EnsureGrad();
      kernels::SoftmaxBackward(raw->data.data(), raw->grad.data(),
                               pa->grad.data(), rows, d);
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor LogSoftmaxLastDim(const Tensor& a) {
  APAN_CHECK(a.defined());
  const int64_t d = LastDim(a.shape());
  const int64_t rows = LeadingRows(a.shape());
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa->data.data() + r * d;
    float* y = out->data.data() + r * d;
    float mx = x[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) sum += std::exp(x[j] - mx);
    const float lse = mx + std::log(sum);
    for (int64_t j = 0; j < d; ++j) y[j] = x[j] - lse;
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, rows, d] {
      pa->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = raw->data.data() + r * d;
        const float* g = raw->grad.data() + r * d;
        float gsum = 0.0f;
        for (int64_t j = 0; j < d; ++j) gsum += g[j];
        float* dx = pa->grad.data() + r * d;
        for (int64_t j = 0; j < d; ++j) {
          dx[j] += g[j] - std::exp(y[j]) * gsum;
        }
      }
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor RowNormalize(const Tensor& a, float eps) {
  APAN_CHECK(a.defined());
  const int64_t d = LastDim(a.shape());
  const int64_t rows = LeadingRows(a.shape());
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const bool recording = Rec(pa);
  // The backward pass needs 1/sigma per row; skip materializing it in
  // inference mode.
  std::vector<float> inv_sigma(recording ? static_cast<size_t>(rows) : 0);
  kernels::RowNormalize(pa->data.data(), out->data.data(), rows, d, eps,
                        recording ? inv_sigma.data() : nullptr);
  Impl* raw = out.get();
  if (recording) {
    Register(out, {pa},
             [pa, raw, rows, d, inv_sigma = std::move(inv_sigma)] {
               pa->EnsureGrad();
               kernels::RowNormalizeBackward(raw->data.data(),
                                             raw->grad.data(),
                                             inv_sigma.data(),
                                             pa->grad.data(), rows, d);
             });
  }
  return Tensor::WrapImpl(out);
}

Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng) {
  APAN_CHECK(a.defined());
  APAN_CHECK_MSG(p >= 0.0f && p < 1.0f, "dropout probability out of range");
  if (!training || p == 0.0f) return a;
  APAN_CHECK(rng != nullptr);
  auto out = NewImpl(a.shape(), /*zero=*/false);
  const ImplPtr pa = a.impl();
  const size_t n = pa->data.size();
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(n);
  for (size_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : scale;
    out->data[i] = pa->data[i] * mask[i];
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, mask = std::move(mask), n] {
      pa->EnsureGrad();
      kernels::AccumulateMul(raw->grad.data(), mask.data(), pa->grad.data(),
                             static_cast<int64_t>(n));
    });
  }
  return Tensor::WrapImpl(out);
}

// ---- Reductions ------------------------------------------------------------

Tensor SumAll(const Tensor& a) {
  APAN_CHECK(a.defined());
  auto out = NewImpl({1}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  float s = 0.0f;
  for (float v : pa->data) s += v;
  out->data[0] = s;
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw] {
      pa->EnsureGrad();
      const float g = raw->grad[0];
      for (auto& dv : pa->grad) dv += g;
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor MeanAll(const Tensor& a) {
  APAN_CHECK(a.defined());
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(SumAll(a), inv);
}

Tensor MeanDim1(const Tensor& a) {
  APAN_CHECK(a.defined() && a.rank() == 3);
  const int64_t b = a.dim(0), m = a.dim(1), d = a.dim(2);
  auto out = NewImpl({b, d});
  const ImplPtr pa = a.impl();
  const float inv = 1.0f / static_cast<float>(m);
  for (int64_t t = 0; t < b; ++t) {
    float* y = out->data.data() + t * d;
    for (int64_t i = 0; i < m; ++i) {
      const float* x = pa->data.data() + (t * m + i) * d;
      for (int64_t j = 0; j < d; ++j) y[j] += x[j];
    }
    for (int64_t j = 0; j < d; ++j) y[j] *= inv;
  }
  Impl* raw = out.get();
  if (Rec(pa)) {
    Register(out, {pa}, [pa, raw, b, m, d, inv] {
      pa->EnsureGrad();
      for (int64_t t = 0; t < b; ++t) {
        const float* g = raw->grad.data() + t * d;
        for (int64_t i = 0; i < m; ++i) {
          kernels::Axpy(inv, g, pa->grad.data() + (t * m + i) * d, d);
        }
      }
    });
  }
  return Tensor::WrapImpl(out);
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  APAN_CHECK(a.defined() && b.defined());
  APAN_CHECK_MSG(a.rank() == 2 && a.shape() == b.shape(),
                 "RowwiseDot expects equal rank-2 shapes");
  const int64_t n = a.dim(0), d = a.dim(1);
  auto out = NewImpl({n, 1}, /*zero=*/false);
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  for (int64_t i = 0; i < n; ++i) {
    out->data[static_cast<size_t>(i)] = kernels::Dot(
        pa->data.data() + i * d, pb->data.data() + i * d, d);
  }
  Impl* raw = out.get();
  if (!Rec(pa, pb)) return Tensor::WrapImpl(out);
  Register(out, {pa, pb}, [pa, pb, raw, n, d] {
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) {
      const float g = raw->grad[static_cast<size_t>(i)];
      if (g == 0.0f) continue;
      if (pa->requires_grad) {
        kernels::Axpy(g, pb->data.data() + i * d, pa->grad.data() + i * d, d);
      }
      if (pb->requires_grad) {
        kernels::Axpy(g, pa->data.data() + i * d, pb->grad.data() + i * d, d);
      }
    }
  });
  return Tensor::WrapImpl(out);
}

// ---- Losses ----------------------------------------------------------------

Tensor BceWithLogits(const Tensor& logits,
                     const std::vector<float>& targets) {
  APAN_CHECK(logits.defined());
  const size_t n = static_cast<size_t>(logits.numel());
  APAN_CHECK_MSG(targets.size() == n, "BceWithLogits target size mismatch");
  auto out = NewImpl({1}, /*zero=*/false);
  const ImplPtr pl = logits.impl();
  float loss = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float x = pl->data[i];
    const float t = targets[i];
    // max(x,0) - x*t + log(1 + exp(-|x|)) — the stable form.
    loss += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::abs(x)));
  }
  out->data[0] = loss / static_cast<float>(n);
  Impl* raw = out.get();
  if (!Rec(pl)) return Tensor::WrapImpl(out);
  Register(out, {pl}, [pl, raw, targets, n] {
    if (!pl->requires_grad) return;
    pl->EnsureGrad();
    const float g = raw->grad[0] / static_cast<float>(n);
    for (size_t i = 0; i < n; ++i) {
      const float x = pl->data[i];
      float sig;
      if (x >= 0.0f) {
        const float z = std::exp(-x);
        sig = 1.0f / (1.0f + z);
      } else {
        const float z = std::exp(x);
        sig = z / (1.0f + z);
      }
      pl->grad[i] += g * (sig - targets[i]);
    }
  });
  return Tensor::WrapImpl(out);
}

Tensor GaussianKl(const Tensor& mu, const Tensor& logvar) {
  APAN_CHECK(mu.defined() && logvar.defined());
  APAN_CHECK_MSG(mu.shape() == logvar.shape(), "GaussianKl shape mismatch");
  const int64_t n = mu.dim(0);
  auto out = NewImpl({1}, /*zero=*/false);
  const ImplPtr pm = mu.impl();
  const ImplPtr pv = logvar.impl();
  float kl = 0.0f;
  for (size_t i = 0; i < pm->data.size(); ++i) {
    const float m = pm->data[i];
    const float lv = pv->data[i];
    kl += -0.5f * (1.0f + lv - m * m - std::exp(lv));
  }
  out->data[0] = kl / static_cast<float>(n);
  Impl* raw = out.get();
  if (!Rec(pm, pv)) return Tensor::WrapImpl(out);
  Register(out, {pm, pv}, [pm, pv, raw, n] {
    const float g = raw->grad[0] / static_cast<float>(n);
    if (pm->requires_grad) {
      pm->EnsureGrad();
      for (size_t i = 0; i < pm->data.size(); ++i) {
        pm->grad[i] += g * pm->data[i];
      }
    }
    if (pv->requires_grad) {
      pv->EnsureGrad();
      for (size_t i = 0; i < pv->data.size(); ++i) {
        pv->grad[i] += g * 0.5f * (std::exp(pv->data[i]) - 1.0f);
      }
    }
  });
  return Tensor::WrapImpl(out);
}

}  // namespace tensor
}  // namespace apan
