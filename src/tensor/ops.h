// Differentiable operator library over tensor::Tensor.
//
// Every op returns a new Tensor; when gradient recording is enabled
// (NoGradGuard::GradEnabled()) and any input requires grad, the result
// carries a backward closure. Shape errors abort via APAN_CHECK — they are
// programming errors at call sites, and models validate user-facing shapes
// before reaching the ops layer.
//
// Broadcasting is intentionally restricted to the patterns the models use:
//   * elementwise ops on identical shapes;
//   * Add/Mul of a rank-N tensor with a rank-1 tensor over the last dim
//     (bias / gain application);
//   * scalar variants (AddScalar, MulScalar).

#ifndef APAN_TENSOR_OPS_H_
#define APAN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace apan {
namespace tensor {

// ---- Elementwise arithmetic ------------------------------------------------

/// Elementwise a + b. Shapes must match, or b must be rank-1 matching the
/// last dimension of a (broadcast over leading dims).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b (same broadcast rules as Add).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b (same broadcast rules as Add).
Tensor Mul(const Tensor& a, const Tensor& b);
/// a + s.
Tensor AddScalar(const Tensor& a, float s);
/// a * s.
Tensor MulScalar(const Tensor& a, float s);
/// -a.
Tensor Neg(const Tensor& a);

// ---- Activations -----------------------------------------------------------

Tensor Relu(const Tensor& a);
/// \brief Fused y = max(a + bias, 0): the Linear-plus-ReLU epilogue in one
/// pass (one of the serve hot-path kernels). `bias` must be rank-1 over
/// the last dimension of `a`. Bitwise-identical to Relu(Add(a, bias)).
Tensor AddBiasRelu(const Tensor& a, const Tensor& bias);
/// max(x, slope*x) with slope in (0, 1); GAT's attention nonlinearity.
Tensor LeakyRelu(const Tensor& a, float slope = 0.2f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped to >= eps for stability.
Tensor Log(const Tensor& a, float eps = 1e-12f);
/// Elementwise cosine (used by the Bochner time-encoding kernel).
Tensor Cos(const Tensor& a);

// ---- Linear algebra --------------------------------------------------------

/// 2-D matrix product: {n, k} x {k, m} -> {n, m}.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched 3-D matmul: {b, n, k} x {b, k, m} -> {b, n, m}.
Tensor Bmm(const Tensor& a, const Tensor& b);
/// 2-D transpose {n, m} -> {m, n}.
Tensor Transpose2D(const Tensor& a);
/// Arbitrary-rank axis permutation (inverse permutation on backward).
Tensor Permute(const Tensor& a, const std::vector<size_t>& perm);
/// Reinterprets the buffer with a new shape of equal element count.
Tensor Reshape(const Tensor& a, Shape new_shape);

/// \brief Raw output buffer for fused inference paths: zeroed (or, with
/// zero=false, content-unspecified — the caller overwrites every element)
/// and drawn from the active TensorArena when inference mode is on.
/// Never carries autograd state.
Tensor ForwardBuffer(Shape shape, bool zero = true);

// ---- Structure -------------------------------------------------------------

/// Concatenates along the last dimension; all leading dims must match.
Tensor ConcatLastDim(const std::vector<Tensor>& parts);
/// Concatenates along the first dimension; all trailing dims must match.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Selects rows of a 2-D tensor: {n, d} gathered by indices -> {k, d}.
/// Backward scatter-adds into the source rows (embedding-table gradient).
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);
/// Contiguous column slice [col_begin, col_end) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t col_begin, int64_t col_end);

// ---- Normalization / attention helpers --------------------------------------

/// Softmax over the last dimension.
Tensor SoftmaxLastDim(const Tensor& a);
/// log(softmax(a)) over the last dimension, numerically stable.
Tensor LogSoftmaxLastDim(const Tensor& a);
/// \brief Per-last-dim standardization: y = (x - mean) / sqrt(var + eps).
/// The learnable gain/bias of a LayerNorm live in nn::LayerNorm.
Tensor RowNormalize(const Tensor& a, float eps = 1e-5f);
/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng);

// ---- Reductions ------------------------------------------------------------

/// Sum of all elements -> scalar {1}.
Tensor SumAll(const Tensor& a);
/// Mean of all elements -> scalar {1}.
Tensor MeanAll(const Tensor& a);
/// Mean over the second dimension of a 3-D tensor: {b, m, d} -> {b, d}.
Tensor MeanDim1(const Tensor& a);
/// Row-wise dot product of two {n, d} tensors -> {n, 1}.
Tensor RowwiseDot(const Tensor& a, const Tensor& b);

// ---- Losses ----------------------------------------------------------------

/// \brief Mean binary-cross-entropy over logits.
/// logits: {n} or {n, 1}; targets: same element count, values in [0, 1].
/// Numerically stable (log-sum-exp form).
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

/// \brief Mean KL(N(mu, sigma^2) || N(0, 1)) used by the VGAE baseline.
/// mu, logvar: {n, d}. Returns scalar.
Tensor GaussianKl(const Tensor& mu, const Tensor& logvar);

}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_OPS_H_
