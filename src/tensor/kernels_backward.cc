// Training-side gradient kernels — the per-ISA half of the kernel
// substrate (see the contract comment in kernels.h).
//
// Unlike kernels.cc, this translation unit is NOT built with
// -ffp-contract=off and its AVX2 tier uses _mm256_fmadd_ps explicitly:
// the backward pass only needs within-process determinism (one tier is
// selected per process, keyed off the same ActiveIsa() the serve
// kernels picked), so FMA contraction and vector-friendly reduction
// orders are legal here. tools/apan_lint's FMA disassembly check is
// scoped to kernels.cc.o and deliberately exempts this object.
//
// Every kernel ACCUMULATES into its output gradient buffer (dst += ...)
// — autograd sums gradients over uses, and the ops layer calls
// EnsureGrad() (zero-fill on first touch) before invoking them.
//
// The `reference` implementations at the bottom preserve the pre-kernel
// backward-closure loop orders from ops.cc (strided column walks,
// zero-skips) as the before side of micro_substrate's before/after
// pairs.

#include <cmath>

#include "tensor/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#define APAN_KERNELS_BWD_X86 1
#include <immintrin.h>
#endif

namespace apan {
namespace tensor {
namespace kernels {

// ---- Portable blocked-scalar tier -------------------------------------------

namespace scalar {

void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m) {
  // dA[i,kk] += dot(G[i,:], B[kk,:]) — both operands stream row-major
  // (the pre-kernel closure walked B's columns at stride m instead).
  for (int64_t i = 0; i < n; ++i) {
    const float* grow = g + i * m;
    float* darow = da + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * m;
      float acc = 0.0f;
      for (int64_t j = 0; j < m; ++j) acc += grow[j] * brow[j];
      darow[kk] += acc;
    }
  }
}

void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m) {
  // dB[kk,:] += sum_i A[i,kk] * G[i,:] — streams G rows; the zero-skip
  // pays off because A is frequently a ReLU output.
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * m;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* dbrow = db + kk * m;
      for (int64_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
    }
  }
}

void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float* dxr = dx + r * d;
    float dot = 0.0f;
    for (int64_t j = 0; j < d; ++j) dot += gr[j] * yr[j];
    for (int64_t j = 0; j < d; ++j) dxr[j] += (gr[j] - dot) * yr[j];
  }
}

void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d) {
  const float inv_d = 1.0f / static_cast<float>(d);
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float* dxr = dx + r * d;
    float g_sum = 0.0f, gy_sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      g_sum += gr[j];
      gy_sum += gr[j] * yr[j];
    }
    const float g_mean = g_sum * inv_d;
    const float gy_mean = gy_sum * inv_d;
    const float inv = inv_sigma[r];
    for (int64_t j = 0; j < d; ++j) {
      dxr[j] += inv * (gr[j] - g_mean - yr[j] * gy_mean);
    }
  }
}

void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    if (dx != nullptr) {
      float* dxr = dx + r * d;
      for (int64_t j = 0; j < d; ++j) {
        if (yr[j] > 0.0f) dxr[j] += gr[j];
      }
    }
    if (dbias != nullptr) {
      for (int64_t j = 0; j < d; ++j) {
        if (yr[j] > 0.0f) dbias[j] += gr[j];
      }
    }
  }
}

void Accumulate(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void AccumulateMul(const float* g, const float* m, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += g[i] * m[i];
}

void Axpy(float a, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

}  // namespace scalar

// ---- AVX2 + FMA tier --------------------------------------------------------

#if defined(APAN_KERNELS_BWD_X86)

namespace avx2 {

namespace {

/// Horizontal sum of one 256-bit lane group (order differs from the
/// serve kernels' Tree8 — legal under the per-ISA contract).
__attribute__((target("avx2,fma"))) inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

}  // namespace

__attribute__((target("avx2,fma"))) void MatMulGradA(const float* g,
                                                     const float* b, float* da,
                                                     int64_t n, int64_t k,
                                                     int64_t m) {
  // dA[i,kk] += dot(G[i,:], B[kk,:]), four B rows per pass so the G row
  // loads amortize across output columns.
  const int64_t m8 = m & ~int64_t{7};
  const int64_t k4 = k & ~int64_t{3};
  for (int64_t i = 0; i < n; ++i) {
    const float* grow = g + i * m;
    float* darow = da + i * k;
    int64_t kk = 0;
    for (; kk < k4; kk += 4) {
      const float* b0 = b + (kk + 0) * m;
      const float* b1 = b + (kk + 1) * m;
      const float* b2 = b + (kk + 2) * m;
      const float* b3 = b + (kk + 3) * m;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      int64_t j = 0;
      for (; j < m8; j += 8) {
        const __m256 gv = _mm256_loadu_ps(grow + j);
        a0 = _mm256_fmadd_ps(gv, _mm256_loadu_ps(b0 + j), a0);
        a1 = _mm256_fmadd_ps(gv, _mm256_loadu_ps(b1 + j), a1);
        a2 = _mm256_fmadd_ps(gv, _mm256_loadu_ps(b2 + j), a2);
        a3 = _mm256_fmadd_ps(gv, _mm256_loadu_ps(b3 + j), a3);
      }
      float s0 = HSum256(a0), s1 = HSum256(a1);
      float s2 = HSum256(a2), s3 = HSum256(a3);
      for (; j < m; ++j) {
        const float gv = grow[j];
        s0 += gv * b0[j];
        s1 += gv * b1[j];
        s2 += gv * b2[j];
        s3 += gv * b3[j];
      }
      darow[kk + 0] += s0;
      darow[kk + 1] += s1;
      darow[kk + 2] += s2;
      darow[kk + 3] += s3;
    }
    for (; kk < k; ++kk) {
      const float* brow = b + kk * m;
      __m256 accv = _mm256_setzero_ps();
      int64_t j = 0;
      for (; j < m8; j += 8) {
        accv = _mm256_fmadd_ps(_mm256_loadu_ps(grow + j),
                               _mm256_loadu_ps(brow + j), accv);
      }
      float acc = HSum256(accv);
      for (; j < m; ++j) acc += grow[j] * brow[j];
      darow[kk] += acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void MatMulGradB(const float* a,
                                                     const float* g, float* db,
                                                     int64_t n, int64_t k,
                                                     int64_t m) {
  const int64_t m8 = m & ~int64_t{7};
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * m;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* dbrow = db + kk * m;
      const __m256 av = _mm256_set1_ps(aik);
      int64_t j = 0;
      for (; j < m8; j += 8) {
        const __m256 acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(grow + j),
                                           _mm256_loadu_ps(dbrow + j));
        _mm256_storeu_ps(dbrow + j, acc);
      }
      for (; j < m; ++j) dbrow[j] += aik * grow[j];
    }
  }
}

__attribute__((target("avx2,fma"))) void MatMulTrain(const float* a,
                                                     const float* b, float* c,
                                                     int64_t n, int64_t k,
                                                     int64_t m) {
  // Same register-blocked jk scheme as the serve avx2::MatMul, with the
  // mul+add pairs contracted to FMA — the whole point of this tier.
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    int64_t j = 0;
    for (; j + 32 <= m; j += 32) {
      __m256 c0 = _mm256_setzero_ps();
      __m256 c1 = _mm256_setzero_ps();
      __m256 c2 = _mm256_setzero_ps();
      __m256 c3 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_set1_ps(arow[kk]);
        const float* brow = b + kk * m + j;
        c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), c0);
        c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), c1);
        c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), c2);
        c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), c3);
      }
      _mm256_storeu_ps(crow + j, c0);
      _mm256_storeu_ps(crow + j + 8, c1);
      _mm256_storeu_ps(crow + j + 16, c2);
      _mm256_storeu_ps(crow + j + 24, c3);
    }
    for (; j + 8 <= m; j += 8) {
      __m256 c0 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                             _mm256_loadu_ps(b + kk * m + j), c0);
      }
      _mm256_storeu_ps(crow + j, c0);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * m + j];
      crow[j] = acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void BmmTrain(const float* a,
                                                  const float* b, float* c,
                                                  int64_t bs, int64_t n,
                                                  int64_t k, int64_t m) {
  for (int64_t t = 0; t < bs; ++t) {
    MatMulTrain(a + t * n * k, b + t * k * m, c + t * n * m, n, k, m);
  }
}

__attribute__((target("avx2,fma"))) void SoftmaxBackward(const float* y,
                                                         const float* g,
                                                         float* dx,
                                                         int64_t rows,
                                                         int64_t d) {
  const int64_t d8 = d & ~int64_t{7};
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float* dxr = dx + r * d;
    __m256 accv = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j < d8; j += 8) {
      accv = _mm256_fmadd_ps(_mm256_loadu_ps(gr + j), _mm256_loadu_ps(yr + j),
                             accv);
    }
    float dot = HSum256(accv);
    for (; j < d; ++j) dot += gr[j] * yr[j];
    const __m256 dotv = _mm256_set1_ps(dot);
    j = 0;
    for (; j < d8; j += 8) {
      const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(gr + j), dotv);
      const __m256 acc = _mm256_fmadd_ps(diff, _mm256_loadu_ps(yr + j),
                                         _mm256_loadu_ps(dxr + j));
      _mm256_storeu_ps(dxr + j, acc);
    }
    for (; j < d; ++j) dxr[j] += (gr[j] - dot) * yr[j];
  }
}

__attribute__((target("avx2,fma"))) void RowNormalizeBackward(
    const float* y, const float* g, const float* inv_sigma, float* dx,
    int64_t rows, int64_t d) {
  const int64_t d8 = d & ~int64_t{7};
  const float inv_d = 1.0f / static_cast<float>(d);
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float* dxr = dx + r * d;
    __m256 gv = _mm256_setzero_ps();
    __m256 gyv = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j < d8; j += 8) {
      const __m256 grv = _mm256_loadu_ps(gr + j);
      gv = _mm256_add_ps(gv, grv);
      gyv = _mm256_fmadd_ps(grv, _mm256_loadu_ps(yr + j), gyv);
    }
    float g_sum = HSum256(gv);
    float gy_sum = HSum256(gyv);
    for (; j < d; ++j) {
      g_sum += gr[j];
      gy_sum += gr[j] * yr[j];
    }
    const float g_mean = g_sum * inv_d;
    const float gy_mean = gy_sum * inv_d;
    const float inv = inv_sigma[r];
    const __m256 g_mean_v = _mm256_set1_ps(g_mean);
    const __m256 neg_gy_mean_v = _mm256_set1_ps(-gy_mean);
    const __m256 inv_v = _mm256_set1_ps(inv);
    j = 0;
    for (; j < d8; j += 8) {
      // g - g_mean - y * gy_mean, then dx += inv * (...)
      const __m256 t =
          _mm256_fmadd_ps(_mm256_loadu_ps(yr + j), neg_gy_mean_v,
                          _mm256_sub_ps(_mm256_loadu_ps(gr + j), g_mean_v));
      const __m256 acc = _mm256_fmadd_ps(inv_v, t, _mm256_loadu_ps(dxr + j));
      _mm256_storeu_ps(dxr + j, acc);
    }
    for (; j < d; ++j) {
      dxr[j] += inv * (gr[j] - g_mean - yr[j] * gy_mean);
    }
  }
}

__attribute__((target("avx2,fma"))) void AddBiasReluBackward(
    const float* y, const float* g, float* dx, float* dbias, int64_t rows,
    int64_t d) {
  const int64_t d8 = d & ~int64_t{7};
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float* dxr = dx != nullptr ? dx + r * d : nullptr;
    int64_t j = 0;
    for (; j < d8; j += 8) {
      const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(yr + j), zero,
                                        _CMP_GT_OQ);
      const __m256 gm = _mm256_and_ps(_mm256_loadu_ps(gr + j), mask);
      if (dxr != nullptr) {
        _mm256_storeu_ps(dxr + j,
                         _mm256_add_ps(_mm256_loadu_ps(dxr + j), gm));
      }
      if (dbias != nullptr) {
        _mm256_storeu_ps(dbias + j,
                         _mm256_add_ps(_mm256_loadu_ps(dbias + j), gm));
      }
    }
    for (; j < d; ++j) {
      const float gm = yr[j] > 0.0f ? gr[j] : 0.0f;
      if (dxr != nullptr) dxr[j] += gm;
      if (dbias != nullptr) dbias[j] += gm;
    }
  }
}

__attribute__((target("avx2,fma"))) void Accumulate(const float* x, float* y,
                                                    int64_t n) {
  const int64_t n8 = n & ~int64_t{7};
  int64_t i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2,fma"))) void AccumulateMul(const float* g,
                                                       const float* m,
                                                       float* y, int64_t n) {
  const int64_t n8 = n & ~int64_t{7};
  int64_t i = 0;
  for (; i < n8; i += 8) {
    const __m256 acc = _mm256_fmadd_ps(
        _mm256_loadu_ps(g + i), _mm256_loadu_ps(m + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += g[i] * m[i];
}

__attribute__((target("avx2,fma"))) void Axpy(float a, const float* x,
                                              float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  const int64_t n8 = n & ~int64_t{7};
  int64_t i = 0;
  for (; i < n8; i += 8) {
    const __m256 acc =
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, acc);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

}  // namespace avx2

#endif  // APAN_KERNELS_BWD_X86

// ---- Dispatch ---------------------------------------------------------------
// Keyed off the serve dispatcher's ActiveIsa() so the whole process —
// forward and backward — runs one consistent tier. NEON hosts fall back
// to the blocked-scalar tier for the backward kernels (still
// deterministic within the process).

namespace {

struct BackwardTable {
  void (*matmul_grad_a)(const float*, const float*, float*, int64_t, int64_t,
                        int64_t) = scalar::MatMulGradA;
  void (*matmul_grad_b)(const float*, const float*, float*, int64_t, int64_t,
                        int64_t) = scalar::MatMulGradB;
  void (*softmax_backward)(const float*, const float*, float*, int64_t,
                           int64_t) = scalar::SoftmaxBackward;
  void (*row_normalize_backward)(const float*, const float*, const float*,
                                 float*, int64_t, int64_t) =
      scalar::RowNormalizeBackward;
  void (*add_bias_relu_backward)(const float*, const float*, float*, float*,
                                 int64_t, int64_t) =
      scalar::AddBiasReluBackward;
  void (*accumulate)(const float*, float*, int64_t) = scalar::Accumulate;
  void (*accumulate_mul)(const float*, const float*, float*, int64_t) =
      scalar::AccumulateMul;
  void (*axpy)(float, const float*, float*, int64_t) = scalar::Axpy;
  // Training-path forwards fall back to the serve blocked-scalar GEMM
  // (kernels.cc) when no FMA tier is available.
  void (*matmul_train)(const float*, const float*, float*, int64_t, int64_t,
                       int64_t) = scalar::MatMul;
  void (*bmm_train)(const float*, const float*, float*, int64_t, int64_t,
                    int64_t, int64_t) = scalar::Bmm;
};

BackwardTable BuildBackwardTable() {
  BackwardTable t;  // scalar defaults
#if defined(APAN_KERNELS_BWD_X86)
  if (ActiveIsa() == Isa::kAvx2) {
    t.matmul_grad_a = avx2::MatMulGradA;
    t.matmul_grad_b = avx2::MatMulGradB;
    t.softmax_backward = avx2::SoftmaxBackward;
    t.row_normalize_backward = avx2::RowNormalizeBackward;
    t.add_bias_relu_backward = avx2::AddBiasReluBackward;
    t.accumulate = avx2::Accumulate;
    t.accumulate_mul = avx2::AccumulateMul;
    t.axpy = avx2::Axpy;
    t.matmul_train = avx2::MatMulTrain;
    t.bmm_train = avx2::BmmTrain;
  }
#endif
  return t;
}

const BackwardTable& Backward() {
  static const BackwardTable t = BuildBackwardTable();
  return t;
}

}  // namespace

void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m) {
  Backward().matmul_grad_a(g, b, da, n, k, m);
}
void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m) {
  Backward().matmul_grad_b(a, g, db, n, k, m);
}
void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d) {
  Backward().softmax_backward(y, g, dx, rows, d);
}
void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d) {
  Backward().row_normalize_backward(y, g, inv_sigma, dx, rows, d);
}
void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d) {
  Backward().add_bias_relu_backward(y, g, dx, dbias, rows, d);
}
void Accumulate(const float* x, float* y, int64_t n) {
  Backward().accumulate(x, y, n);
}
void AccumulateMul(const float* g, const float* m, float* y, int64_t n) {
  Backward().accumulate_mul(g, m, y, n);
}
void Axpy(float a, const float* x, float* y, int64_t n) {
  Backward().axpy(a, x, y, n);
}
void MatMulTrain(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m) {
  Backward().matmul_train(a, b, c, n, k, m);
}
void BmmTrain(const float* a, const float* b, float* c, int64_t bs, int64_t n,
              int64_t k, int64_t m) {
  Backward().bmm_train(a, b, c, bs, n, k, m);
}

// ---- Pre-kernel reference loops ---------------------------------------------
// Byte-for-byte the loop orders the ops.cc backward closures ran before
// the kernel port (micro_substrate's "before" side; also the agreement
// oracle in tests/tensor_kernels_test.cc).

namespace reference {

void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      const float gv = g[i * m + j];
      if (gv == 0.0f) continue;
      const float* bcol = b + j;  // column j of B, stride m
      float* darow = da + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        darow[kk] += gv * bcol[kk * m];
      }
    }
  }
}

void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* grow = g + i * m;
      float* dbrow = db + kk * m;
      for (int64_t j = 0; j < m; ++j) dbrow[j] += aik * grow[j];
    }
  }
}

void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float dot = 0.0f;
    for (int64_t j = 0; j < d; ++j) dot += gr[j] * yr[j];
    float* dxr = dx + r * d;
    for (int64_t j = 0; j < d; ++j) dxr[j] += (gr[j] - dot) * yr[j];
  }
}

void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * d;
    const float* gr = g + r * d;
    float g_mean = 0.0f, gy_mean = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      g_mean += gr[j];
      gy_mean += gr[j] * yr[j];
    }
    g_mean /= static_cast<float>(d);
    gy_mean /= static_cast<float>(d);
    const float inv = inv_sigma[r];
    float* dxr = dx + r * d;
    for (int64_t j = 0; j < d; ++j) {
      dxr[j] += inv * (gr[j] - g_mean - yr[j] * gy_mean);
    }
  }
}

void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d) {
  if (dx != nullptr) {
    for (int64_t i = 0; i < rows * d; ++i) {
      if (y[i] > 0.0f) dx[i] += g[i];
    }
  }
  if (dbias != nullptr) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * d;
      const float* yr = y + r * d;
      for (int64_t j = 0; j < d; ++j) {
        if (yr[j] > 0.0f) dbias[j] += gr[j];
      }
    }
  }
}

void Accumulate(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

}  // namespace reference

}  // namespace kernels
}  // namespace tensor
}  // namespace apan
