// First-order optimizers over tensor parameters.

#ifndef APAN_TENSOR_OPTIMIZER_H_
#define APAN_TENSOR_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace apan {
namespace tensor {

/// \brief Base interface: owns references to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated on the
  /// parameters, then leaves gradients untouched (call ZeroGrad next).
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// \brief Rescales all gradients so their global L2 norm is at most
  /// `max_norm`. Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 1e-2f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<Tensor> params, Options opts)
      : Optimizer(std::move(params)), opts_(opts) {}

  void Step() override;

 private:
  Options opts_;
  std::unordered_map<const void*, std::vector<float>> velocity_;
};

/// \brief Adam (Kingma & Ba, 2015) with bias correction.
///
/// Paper configuration (§4.4): lr = 1e-4, default betas.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Tensor> params, Options opts)
      : Optimizer(std::move(params)), opts_(opts) {}

  void Step() override;

 private:
  struct State {
    std::vector<float> m;
    std::vector<float> v;
  };
  Options opts_;
  int64_t t_ = 0;
  std::unordered_map<const void*, State> state_;
};

}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_OPTIMIZER_H_
