// Kernel implementations. Three tiers share one numeric contract:
//
//   * reductions accumulate in fixed 8-lane blocked order (lane l takes
//     elements l, l+8, ...; a trailing partial block fills lanes 0..r-1)
//     and the lanes combine in one fixed binary tree;
//   * multiplies and adds stay separate operations (this file is built
//     with -ffp-contract=off so neither the compiler nor an FMA-capable
//     ISA can fuse them);
//   * per-row outputs read only that row's inputs.
//
// Under that contract the scalar, AVX2 and NEON tiers are bitwise
// interchangeable, which is what lets the dispatcher pick freely at
// startup without perturbing the serving tier's determinism tests.

#include "tensor/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define APAN_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define APAN_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace apan {
namespace tensor {
namespace kernels {

namespace {

/// Fixed combine tree for 8 blocked lanes (shared by every tier).
inline float Tree8(const float* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

}  // namespace

// ---- Naive serial reference -------------------------------------------------

namespace reference {

void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    float* crow = c + i * m;
    for (int64_t j = 0; j < m; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = b + kk * m;
      for (int64_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
}

void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m) {
  for (int64_t t = 0; t < bs; ++t) {
    MatMul(a + t * n * k, b + t * k * m, c + t * n * m, n, k, m);
  }
}

void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    float mx = xr[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      yr[j] = std::exp(xr[j] - mx);
      sum += yr[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < d; ++j) yr[j] *= inv;
  }
}

void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    float mu = 0.0f;
    for (int64_t j = 0; j < d; ++j) mu += xr[j];
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t j = 0; j < d; ++j) var += (xr[j] - mu) * (xr[j] - mu);
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (inv_sigma != nullptr) inv_sigma[r] = inv;
    for (int64_t j = 0; j < d; ++j) yr[j] = (xr[j] - mu) * inv;
  }
}

void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    for (int64_t j = 0; j < d; ++j) {
      const float v = xr[j] + bias[j];
      yr[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace reference

// ---- Portable blocked-scalar tier -------------------------------------------

namespace scalar {

namespace {

inline float BlockedDot(const float* a, const float* b, int64_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) acc[l] += a[i + l] * b[i + l];
  }
  for (int l = 0; i < n; ++i, ++l) acc[l] += a[i] * b[i];
  return Tree8(acc);
}

inline float BlockedSum(const float* a, int64_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) acc[l] += a[i + l];
  }
  for (int l = 0; i < n; ++i, ++l) acc[l] += a[i];
  return Tree8(acc);
}

inline float BlockedSqDiffSum(const float* a, float mu, int64_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      const float t = a[i + l] - mu;
      acc[l] += t * t;
    }
  }
  for (int l = 0; i < n; ++i, ++l) {
    const float t = a[i] - mu;
    acc[l] += t * t;
  }
  return Tree8(acc);
}

/// Softmax of one row into yr; xr may equal yr. `add` (nullable) is an
/// additive pre-softmax term (the attention mask).
inline void SoftmaxRow(const float* xr, const float* add, float* yr,
                       int64_t d) {
  if (add != nullptr) {
    for (int64_t j = 0; j < d; ++j) yr[j] = xr[j] + add[j];
    xr = yr;
  }
  float mx = xr[0];
  for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
  for (int64_t j = 0; j < d; ++j) yr[j] = std::exp(xr[j] - mx);
  const float inv = 1.0f / BlockedSum(yr, d);
  for (int64_t j = 0; j < d; ++j) yr[j] *= inv;
}

}  // namespace

void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m) {
  // Serial-over-k accumulation per element == the reference ikj order.
  reference::MatMul(a, b, c, n, k, m);
}

void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m) {
  for (int64_t t = 0; t < bs; ++t) {
    MatMul(a + t * n * k, b + t * k * m, c + t * n * m, n, k, m);
  }
}

void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(x + r * d, nullptr, y + r * d, d);
  }
}

void MaskedSoftmax(const float* scores, const float* mask, float* y,
                   int64_t b, int64_t h, int64_t m) {
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* mrow = mask != nullptr ? mask + bi * m : nullptr;
    for (int64_t hi = 0; hi < h; ++hi) {
      const int64_t off = (bi * h + hi) * m;
      SoftmaxRow(scores + off, mrow, y + off, m);
    }
  }
}

void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    const float mu = BlockedSum(xr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(xr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (inv_sigma != nullptr) inv_sigma[r] = inv;
    for (int64_t j = 0; j < d; ++j) yr[j] = (xr[j] - mu) * inv;
  }
}

void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d) {
  reference::AddBiasRelu(x, bias, y, rows, d);
}

void AddBias(const float* x, const float* bias, float* y, int64_t rows,
             int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    for (int64_t j = 0; j < d; ++j) yr[j] = xr[j] + bias[j];
  }
}

void AddSame(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

float Dot(const float* a, const float* b, int64_t n) {
  return BlockedDot(a, b, n);
}

void AttentionScores(const float* q, const float* k, float* scores,
                     int64_t b, int64_t h, int64_t m, int64_t dh,
                     float scale) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* qrow = q + bi * d + hi * dh;
      float* srow = scores + (bi * h + hi) * m;
      for (int64_t s = 0; s < m; ++s) {
        const float* krow = k + (bi * m + s) * d + hi * dh;
        srow[s] = scale * BlockedDot(qrow, krow, dh);
      }
    }
  }
}

void AttentionContext(const float* attn, const float* v, float* ctx,
                      int64_t b, int64_t h, int64_t m, int64_t dh) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* arow = attn + (bi * h + hi) * m;
      float* out = ctx + bi * d + hi * dh;
      for (int64_t j = 0; j < dh; ++j) out[j] = 0.0f;
      for (int64_t s = 0; s < m; ++s) {
        const float w = arow[s];
        const float* vrow = v + (bi * m + s) * d + hi * dh;
        for (int64_t j = 0; j < dh; ++j) out[j] += w * vrow[j];
      }
    }
  }
}

void ResidualLayerNorm(const float* x, const float* residual,
                       const float* gain, const float* bias, float* y,
                       int64_t rows, int64_t d, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    const float* rr = residual + r * d;
    float* yr = y + r * d;
    for (int64_t j = 0; j < d; ++j) yr[j] = xr[j] + rr[j];
    const float mu = BlockedSum(yr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(yr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (int64_t j = 0; j < d; ++j) {
      yr[j] = ((yr[j] - mu) * inv) * gain[j] + bias[j];
    }
  }
}

}  // namespace scalar

// ---- AVX2 tier --------------------------------------------------------------

#if defined(APAN_KERNELS_X86)

namespace avx2 {

namespace {

/// Lanes of `acc` plus a trailing partial block folded into lanes
/// 0..tail_n-1, combined by the shared tree. `tail(t)` yields term t.
template <typename TailFn>
__attribute__((target("avx2"))) inline float ReduceBlocked(__m256 acc,
                                                           int64_t tail_n,
                                                           TailFn tail) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int64_t t = 0; t < tail_n; ++t) lanes[t] += tail(t);
  return Tree8(lanes);
}

__attribute__((target("avx2"))) inline float BlockedDot(const float* a,
                                                        const float* b,
                                                        int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  const int64_t base = i;
  return ReduceBlocked(acc, n - base,
                       [&](int64_t t) { return a[base + t] * b[base + t]; });
}

__attribute__((target("avx2"))) inline float BlockedSum(const float* a,
                                                        int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + i));
  const int64_t base = i;
  return ReduceBlocked(acc, n - base, [&](int64_t t) { return a[base + t]; });
}

__attribute__((target("avx2"))) inline float BlockedSqDiffSum(const float* a,
                                                              float mu,
                                                              int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  const __m256 vmu = _mm256_set1_ps(mu);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_sub_ps(_mm256_loadu_ps(a + i), vmu);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(t, t));
  }
  const int64_t base = i;
  return ReduceBlocked(acc, n - base, [&](int64_t t) {
    const float v = a[base + t] - mu;
    return v * v;
  });
}

__attribute__((target("avx2"))) inline void SoftmaxRow(const float* xr,
                                                       const float* add,
                                                       float* yr, int64_t d) {
  if (add != nullptr) {
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(yr + j, _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                             _mm256_loadu_ps(add + j)));
    }
    for (; j < d; ++j) yr[j] = xr[j] + add[j];
    xr = yr;
  }
  float mx = xr[0];
  for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
  for (int64_t j = 0; j < d; ++j) yr[j] = std::exp(xr[j] - mx);
  const float inv = 1.0f / BlockedSum(yr, d);
  const __m256 vinv = _mm256_set1_ps(inv);
  int64_t j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(yr + j, _mm256_mul_ps(_mm256_loadu_ps(yr + j), vinv));
  }
  for (; j < d; ++j) yr[j] *= inv;
}

}  // namespace

__attribute__((target("avx2"))) void MatMul(const float* a, const float* b,
                                            float* c, int64_t n, int64_t k,
                                            int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    int64_t j = 0;
    // Four-register tiles over the output row; each C element still
    // accumulates serially over k, so this is bitwise the ikj order.
    for (; j + 32 <= m; j += 32) {
      __m256 c0 = _mm256_setzero_ps();
      __m256 c1 = _mm256_setzero_ps();
      __m256 c2 = _mm256_setzero_ps();
      __m256 c3 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_set1_ps(arow[kk]);
        const float* brow = b + kk * m + j;
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
      }
      _mm256_storeu_ps(crow + j, c0);
      _mm256_storeu_ps(crow + j + 8, c1);
      _mm256_storeu_ps(crow + j + 16, c2);
      _mm256_storeu_ps(crow + j + 24, c3);
    }
    for (; j + 8 <= m; j += 8) {
      __m256 c0 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(arow[kk]),
                                             _mm256_loadu_ps(b + kk * m + j)));
      }
      _mm256_storeu_ps(crow + j, c0);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * m + j];
      crow[j] = acc;
    }
  }
}

__attribute__((target("avx2"))) void Bmm(const float* a, const float* b,
                                         float* c, int64_t bs, int64_t n,
                                         int64_t k, int64_t m) {
  for (int64_t t = 0; t < bs; ++t) {
    MatMul(a + t * n * k, b + t * k * m, c + t * n * m, n, k, m);
  }
}

__attribute__((target("avx2"))) void SoftmaxLastDim(const float* x, float* y,
                                                    int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(x + r * d, nullptr, y + r * d, d);
  }
}

__attribute__((target("avx2"))) void MaskedSoftmax(const float* scores,
                                                   const float* mask,
                                                   float* y, int64_t b,
                                                   int64_t h, int64_t m) {
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* mrow = mask != nullptr ? mask + bi * m : nullptr;
    for (int64_t hi = 0; hi < h; ++hi) {
      const int64_t off = (bi * h + hi) * m;
      SoftmaxRow(scores + off, mrow, y + off, m);
    }
  }
}

__attribute__((target("avx2"))) void RowNormalize(const float* x, float* y,
                                                  int64_t rows, int64_t d,
                                                  float eps,
                                                  float* inv_sigma) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    const float mu = BlockedSum(xr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(xr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (inv_sigma != nullptr) inv_sigma[r] = inv;
    const __m256 vmu = _mm256_set1_ps(mu);
    const __m256 vinv = _mm256_set1_ps(inv);
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(
          yr + j,
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xr + j), vmu), vinv));
    }
    for (; j < d; ++j) yr[j] = (xr[j] - mu) * inv;
  }
}

__attribute__((target("avx2"))) void AddBiasRelu(const float* x,
                                                 const float* bias, float* y,
                                                 int64_t rows, int64_t d) {
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                     _mm256_loadu_ps(bias + j));
      _mm256_storeu_ps(yr + j, _mm256_max_ps(v, zero));
    }
    for (; j < d; ++j) {
      const float v = xr[j] + bias[j];
      yr[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

__attribute__((target("avx2"))) void AddBias(const float* x,
                                             const float* bias, float* y,
                                             int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(yr + j, _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                             _mm256_loadu_ps(bias + j)));
    }
    for (; j < d; ++j) yr[j] = xr[j] + bias[j];
  }
}

__attribute__((target("avx2"))) void AddSame(const float* a, const float* b,
                                             float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) float Dot(const float* a, const float* b,
                                          int64_t n) {
  return BlockedDot(a, b, n);
}

__attribute__((target("avx2"))) void AttentionScores(const float* q,
                                                     const float* k,
                                                     float* scores, int64_t b,
                                                     int64_t h, int64_t m,
                                                     int64_t dh, float scale) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* qrow = q + bi * d + hi * dh;
      float* srow = scores + (bi * h + hi) * m;
      for (int64_t s = 0; s < m; ++s) {
        const float* krow = k + (bi * m + s) * d + hi * dh;
        srow[s] = scale * BlockedDot(qrow, krow, dh);
      }
    }
  }
}

__attribute__((target("avx2"))) void AttentionContext(const float* attn,
                                                      const float* v,
                                                      float* ctx, int64_t b,
                                                      int64_t h, int64_t m,
                                                      int64_t dh) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* arow = attn + (bi * h + hi) * m;
      float* out = ctx + bi * d + hi * dh;
      const float* vbase = v + bi * m * d + hi * dh;
      int64_t j = 0;
      for (; j + 8 <= dh; j += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (int64_t s = 0; s < m; ++s) {
          acc = _mm256_add_ps(
              acc, _mm256_mul_ps(_mm256_set1_ps(arow[s]),
                                 _mm256_loadu_ps(vbase + s * d + j)));
        }
        _mm256_storeu_ps(out + j, acc);
      }
      for (; j < dh; ++j) {
        float acc = 0.0f;
        for (int64_t s = 0; s < m; ++s) acc += arow[s] * vbase[s * d + j];
        out[j] = acc;
      }
    }
  }
}

__attribute__((target("avx2"))) void ResidualLayerNorm(
    const float* x, const float* residual, const float* gain,
    const float* bias, float* y, int64_t rows, int64_t d, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    const float* rr = residual + r * d;
    float* yr = y + r * d;
    int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(yr + j, _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                             _mm256_loadu_ps(rr + j)));
    }
    for (; j < d; ++j) yr[j] = xr[j] + rr[j];
    const float mu = BlockedSum(yr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(yr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    const __m256 vmu = _mm256_set1_ps(mu);
    const __m256 vinv = _mm256_set1_ps(inv);
    j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 norm = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(yr + j), vmu), vinv);
      _mm256_storeu_ps(
          yr + j, _mm256_add_ps(_mm256_mul_ps(norm, _mm256_loadu_ps(gain + j)),
                                _mm256_loadu_ps(bias + j)));
    }
    for (; j < d; ++j) {
      yr[j] = ((yr[j] - mu) * inv) * gain[j] + bias[j];
    }
  }
}

}  // namespace avx2

#endif  // APAN_KERNELS_X86

// ---- NEON tier --------------------------------------------------------------

#if defined(APAN_KERNELS_NEON)

namespace neon {

namespace {

// Two q-registers emulate the 8 blocked lanes (lo = lanes 0-3, hi = 4-7).
// vmulq+vaddq stay separate (vmlaq would fuse on aarch64).

struct Acc8 {
  float32x4_t lo = vdupq_n_f32(0.0f);
  float32x4_t hi = vdupq_n_f32(0.0f);
};

template <typename TailFn>
inline float ReduceBlocked(const Acc8& acc, int64_t tail_n, TailFn tail) {
  float lanes[8];
  vst1q_f32(lanes, acc.lo);
  vst1q_f32(lanes + 4, acc.hi);
  for (int64_t t = 0; t < tail_n; ++t) lanes[t] += tail(t);
  return Tree8(lanes);
}

inline float BlockedDot(const float* a, const float* b, int64_t n) {
  Acc8 acc;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc.lo = vaddq_f32(acc.lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc.hi = vaddq_f32(acc.hi,
                       vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  const int64_t base = i;
  return ReduceBlocked(acc, n - base,
                       [&](int64_t t) { return a[base + t] * b[base + t]; });
}

inline float BlockedSum(const float* a, int64_t n) {
  Acc8 acc;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc.lo = vaddq_f32(acc.lo, vld1q_f32(a + i));
    acc.hi = vaddq_f32(acc.hi, vld1q_f32(a + i + 4));
  }
  const int64_t base = i;
  return ReduceBlocked(acc, n - base, [&](int64_t t) { return a[base + t]; });
}

inline float BlockedSqDiffSum(const float* a, float mu, int64_t n) {
  Acc8 acc;
  const float32x4_t vmu = vdupq_n_f32(mu);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t lo = vsubq_f32(vld1q_f32(a + i), vmu);
    const float32x4_t hi = vsubq_f32(vld1q_f32(a + i + 4), vmu);
    acc.lo = vaddq_f32(acc.lo, vmulq_f32(lo, lo));
    acc.hi = vaddq_f32(acc.hi, vmulq_f32(hi, hi));
  }
  const int64_t base = i;
  return ReduceBlocked(acc, n - base, [&](int64_t t) {
    const float v = a[base + t] - mu;
    return v * v;
  });
}

inline void SoftmaxRow(const float* xr, const float* add, float* yr,
                       int64_t d) {
  if (add != nullptr) {
    int64_t j = 0;
    for (; j + 4 <= d; j += 4) {
      vst1q_f32(yr + j, vaddq_f32(vld1q_f32(xr + j), vld1q_f32(add + j)));
    }
    for (; j < d; ++j) yr[j] = xr[j] + add[j];
    xr = yr;
  }
  float mx = xr[0];
  for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
  for (int64_t j = 0; j < d; ++j) yr[j] = std::exp(xr[j] - mx);
  const float inv = 1.0f / BlockedSum(yr, d);
  const float32x4_t vinv = vdupq_n_f32(inv);
  int64_t j = 0;
  for (; j + 4 <= d; j += 4) {
    vst1q_f32(yr + j, vmulq_f32(vld1q_f32(yr + j), vinv));
  }
  for (; j < d; ++j) yr[j] *= inv;
}

}  // namespace

void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    int64_t j = 0;
    for (; j + 16 <= m; j += 16) {
      float32x4_t c0 = vdupq_n_f32(0.0f);
      float32x4_t c1 = vdupq_n_f32(0.0f);
      float32x4_t c2 = vdupq_n_f32(0.0f);
      float32x4_t c3 = vdupq_n_f32(0.0f);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float32x4_t av = vdupq_n_f32(arow[kk]);
        const float* brow = b + kk * m + j;
        c0 = vaddq_f32(c0, vmulq_f32(av, vld1q_f32(brow)));
        c1 = vaddq_f32(c1, vmulq_f32(av, vld1q_f32(brow + 4)));
        c2 = vaddq_f32(c2, vmulq_f32(av, vld1q_f32(brow + 8)));
        c3 = vaddq_f32(c3, vmulq_f32(av, vld1q_f32(brow + 12)));
      }
      vst1q_f32(crow + j, c0);
      vst1q_f32(crow + j + 4, c1);
      vst1q_f32(crow + j + 8, c2);
      vst1q_f32(crow + j + 12, c3);
    }
    for (; j + 4 <= m; j += 4) {
      float32x4_t c0 = vdupq_n_f32(0.0f);
      for (int64_t kk = 0; kk < k; ++kk) {
        c0 = vaddq_f32(c0, vmulq_f32(vdupq_n_f32(arow[kk]),
                                     vld1q_f32(b + kk * m + j)));
      }
      vst1q_f32(crow + j, c0);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * m + j];
      crow[j] = acc;
    }
  }
}

void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m) {
  for (int64_t t = 0; t < bs; ++t) {
    MatMul(a + t * n * k, b + t * k * m, c + t * n * m, n, k, m);
  }
}

void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(x + r * d, nullptr, y + r * d, d);
  }
}

void MaskedSoftmax(const float* scores, const float* mask, float* y,
                   int64_t b, int64_t h, int64_t m) {
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* mrow = mask != nullptr ? mask + bi * m : nullptr;
    for (int64_t hi = 0; hi < h; ++hi) {
      const int64_t off = (bi * h + hi) * m;
      SoftmaxRow(scores + off, mrow, y + off, m);
    }
  }
}

void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    const float mu = BlockedSum(xr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(xr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (inv_sigma != nullptr) inv_sigma[r] = inv;
    for (int64_t j = 0; j < d; ++j) yr[j] = (xr[j] - mu) * inv;
  }
}

void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    int64_t j = 0;
    for (; j + 4 <= d; j += 4) {
      const float32x4_t v = vaddq_f32(vld1q_f32(xr + j), vld1q_f32(bias + j));
      // Compare+select, not vmaxq: ARM FMAX would propagate NaN where
      // the scalar tier's (v > 0 ? v : 0) — and x86 maxps — yield 0.
      vst1q_f32(yr + j, vbslq_f32(vcgtq_f32(v, zero), v, zero));
    }
    for (; j < d; ++j) {
      const float v = xr[j] + bias[j];
      yr[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

void AddBias(const float* x, const float* bias, float* y, int64_t rows,
             int64_t d) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    int64_t j = 0;
    for (; j + 4 <= d; j += 4) {
      vst1q_f32(yr + j, vaddq_f32(vld1q_f32(xr + j), vld1q_f32(bias + j)));
    }
    for (; j < d; ++j) yr[j] = xr[j] + bias[j];
  }
}

void AddSame(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

float Dot(const float* a, const float* b, int64_t n) {
  return BlockedDot(a, b, n);
}

void AttentionScores(const float* q, const float* k, float* scores,
                     int64_t b, int64_t h, int64_t m, int64_t dh,
                     float scale) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* qrow = q + bi * d + hi * dh;
      float* srow = scores + (bi * h + hi) * m;
      for (int64_t s = 0; s < m; ++s) {
        const float* krow = k + (bi * m + s) * d + hi * dh;
        srow[s] = scale * BlockedDot(qrow, krow, dh);
      }
    }
  }
}

void AttentionContext(const float* attn, const float* v, float* ctx,
                      int64_t b, int64_t h, int64_t m, int64_t dh) {
  const int64_t d = h * dh;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* arow = attn + (bi * h + hi) * m;
      float* out = ctx + bi * d + hi * dh;
      const float* vbase = v + bi * m * d + hi * dh;
      int64_t j = 0;
      for (; j + 4 <= dh; j += 4) {
        float32x4_t acc = vdupq_n_f32(0.0f);
        for (int64_t s = 0; s < m; ++s) {
          acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(arow[s]),
                                         vld1q_f32(vbase + s * d + j)));
        }
        vst1q_f32(out + j, acc);
      }
      for (; j < dh; ++j) {
        float acc = 0.0f;
        for (int64_t s = 0; s < m; ++s) acc += arow[s] * vbase[s * d + j];
        out[j] = acc;
      }
    }
  }
}

void ResidualLayerNorm(const float* x, const float* residual,
                       const float* gain, const float* bias, float* y,
                       int64_t rows, int64_t d, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    const float* rr = residual + r * d;
    float* yr = y + r * d;
    for (int64_t j = 0; j < d; ++j) yr[j] = xr[j] + rr[j];
    const float mu = BlockedSum(yr, d) / static_cast<float>(d);
    const float var = BlockedSqDiffSum(yr, mu, d) / static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (int64_t j = 0; j < d; ++j) {
      yr[j] = ((yr[j] - mu) * inv) * gain[j] + bias[j];
    }
  }
}

}  // namespace neon

#endif  // APAN_KERNELS_NEON

// ---- Dispatch ---------------------------------------------------------------

namespace {

struct DispatchTable {
  Isa isa = Isa::kScalar;
  void (*matmul)(const float*, const float*, float*, int64_t, int64_t,
                 int64_t) = scalar::MatMul;
  void (*bmm)(const float*, const float*, float*, int64_t, int64_t, int64_t,
              int64_t) = scalar::Bmm;
  void (*softmax)(const float*, float*, int64_t, int64_t) =
      scalar::SoftmaxLastDim;
  void (*masked_softmax)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t) = scalar::MaskedSoftmax;
  void (*row_normalize)(const float*, float*, int64_t, int64_t, float,
                        float*) = scalar::RowNormalize;
  void (*add_bias_relu)(const float*, const float*, float*, int64_t,
                        int64_t) = scalar::AddBiasRelu;
  void (*add_bias)(const float*, const float*, float*, int64_t, int64_t) =
      scalar::AddBias;
  void (*add_same)(const float*, const float*, float*, int64_t) =
      scalar::AddSame;
  float (*dot)(const float*, const float*, int64_t) = scalar::Dot;
  void (*attention_scores)(const float*, const float*, float*, int64_t,
                           int64_t, int64_t, int64_t, float) =
      scalar::AttentionScores;
  void (*attention_context)(const float*, const float*, float*, int64_t,
                            int64_t, int64_t, int64_t) =
      scalar::AttentionContext;
  void (*residual_layer_norm)(const float*, const float*, const float*,
                              const float*, float*, int64_t, int64_t, float) =
      scalar::ResidualLayerNorm;
};

DispatchTable BuildTable() {
  DispatchTable t;  // scalar defaults
  bool want_avx2 = false;
  bool want_neon = false;
#if defined(APAN_KERNELS_X86)
  want_avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(APAN_KERNELS_NEON)
  want_neon = true;
#endif
  if (const char* force = std::getenv("APAN_KERNEL_ISA")) {
    want_avx2 = want_avx2 && std::strcmp(force, "avx2") == 0;
    want_neon = want_neon && std::strcmp(force, "neon") == 0;
  }
#if defined(APAN_KERNELS_X86)
  if (want_avx2) {
    t.isa = Isa::kAvx2;
    t.matmul = avx2::MatMul;
    t.bmm = avx2::Bmm;
    t.softmax = avx2::SoftmaxLastDim;
    t.masked_softmax = avx2::MaskedSoftmax;
    t.row_normalize = avx2::RowNormalize;
    t.add_bias_relu = avx2::AddBiasRelu;
    t.add_bias = avx2::AddBias;
    t.add_same = avx2::AddSame;
    t.dot = avx2::Dot;
    t.attention_scores = avx2::AttentionScores;
    t.attention_context = avx2::AttentionContext;
    t.residual_layer_norm = avx2::ResidualLayerNorm;
    return t;
  }
#endif
#if defined(APAN_KERNELS_NEON)
  if (want_neon) {
    t.isa = Isa::kNeon;
    t.matmul = neon::MatMul;
    t.bmm = neon::Bmm;
    t.softmax = neon::SoftmaxLastDim;
    t.masked_softmax = neon::MaskedSoftmax;
    t.row_normalize = neon::RowNormalize;
    t.add_bias_relu = neon::AddBiasRelu;
    t.add_bias = neon::AddBias;
    t.add_same = neon::AddSame;
    t.dot = neon::Dot;
    t.attention_scores = neon::AttentionScores;
    t.attention_context = neon::AttentionContext;
    t.residual_layer_norm = neon::ResidualLayerNorm;
    return t;
  }
#endif
  (void)want_neon;
  return t;
}

const DispatchTable& Table() {
  static const DispatchTable t = BuildTable();
  return t;
}

}  // namespace

Isa ActiveIsa() { return Table().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m) {
  Table().matmul(a, b, c, n, k, m);
}
void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m) {
  Table().bmm(a, b, c, bs, n, k, m);
}
void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d) {
  Table().softmax(x, y, rows, d);
}
void MaskedSoftmax(const float* scores, const float* mask, float* y,
                   int64_t b, int64_t h, int64_t m) {
  Table().masked_softmax(scores, mask, y, b, h, m);
}
void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma) {
  Table().row_normalize(x, y, rows, d, eps, inv_sigma);
}
void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d) {
  Table().add_bias_relu(x, bias, y, rows, d);
}
void AddBias(const float* x, const float* bias, float* y, int64_t rows,
             int64_t d) {
  Table().add_bias(x, bias, y, rows, d);
}
void AddSame(const float* a, const float* b, float* y, int64_t n) {
  Table().add_same(a, b, y, n);
}
float Dot(const float* a, const float* b, int64_t n) {
  return Table().dot(a, b, n);
}
void AttentionScores(const float* q, const float* k, float* scores,
                     int64_t b, int64_t h, int64_t m, int64_t dh,
                     float scale) {
  Table().attention_scores(q, k, scores, b, h, m, dh, scale);
}
void AttentionContext(const float* attn, const float* v, float* ctx,
                      int64_t b, int64_t h, int64_t m, int64_t dh) {
  Table().attention_context(attn, v, ctx, b, h, m, dh);
}
void ResidualLayerNorm(const float* x, const float* residual,
                       const float* gain, const float* bias, float* y,
                       int64_t rows, int64_t d, float eps) {
  Table().residual_layer_norm(x, residual, gain, bias, y, rows, d, eps);
}

}  // namespace kernels
}  // namespace tensor
}  // namespace apan
