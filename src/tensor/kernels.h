// Serve-hot-path tensor kernels with runtime SIMD dispatch.
//
// The five hot primitives behind the encoder forward (MatMul, Bmm,
// SoftmaxLastDim, RowNormalize, AddBiasRelu) plus the fused attention
// helpers (AttentionScores / MaskedSoftmax / AttentionContext /
// ResidualLayerNorm) operate on raw float buffers. One implementation is
// selected per process at first use — AVX2 on x86-64 CPUs that support
// it, NEON on aarch64, a portable blocked-scalar fallback otherwise — so
// every engine in the process (AsyncPipeline, ShardedEngine, trainer
// eval) computes through the same code path and stays bitwise
// reproducible run-to-run and engine-to-engine.
//
// Determinism contract — per kernel subset:
//
//   * SERVE kernels (everything above the "Training-side kernels"
//     section, implemented in kernels.cc): cross-ISA bitwise parity.
//     Every reduction runs in fixed-width 8-lane blocked order (lane l
//     accumulates elements l, l+8, l+16, ..., lanes combined in a fixed
//     binary tree), and SIMD lanes use separate multiply and add (no FMA
//     contraction; kernels.cc is built with -ffp-contract=off and
//     tools/apan_lint disassembles its object to prove it), so the
//     scalar fallback and the SIMD implementations produce
//     bitwise-identical results — the kernel parity suite
//     (tests/tensor_kernels_test.cc) asserts it. Per-row outputs depend
//     only on that row's inputs, which is what keeps a sharded encode
//     (per-shard sub-batches) bitwise equal to the monolithic encode of
//     the same rows.
//
//   * TRAINING kernels (the gradient primitives below, implemented in
//     kernels_backward.cc): per-ISA determinism only. One tier is
//     selected per process (the same ActiveIsa() the serve kernels
//     picked), so training is bitwise reproducible run-to-run on one
//     host, but the AVX2 tier uses FMA contraction and vector-friendly
//     reduction orders, so scalar and AVX2 results differ in the last
//     ULPs. Nothing downstream needs more: the serve plane's cross-ISA
//     guarantees only cover inference, and the training determinism
//     test (tests/train_fastpath_test.cc) asserts same-ISA bitwise
//     equality. docs/performance.md ("Training fast path") states the
//     split contract.
//
// `reference` holds the naive serial implementations (the pre-kernel
// semantics) for parity tests and before/after benchmarks; `scalar` is
// the portable blocked fallback, callable directly regardless of what
// the dispatcher selected.

#ifndef APAN_TENSOR_KERNELS_H_
#define APAN_TENSOR_KERNELS_H_

#include <cstdint>

namespace apan {
namespace tensor {
namespace kernels {

/// Instruction set selected for this process (once, at first kernel use;
/// override with APAN_KERNEL_ISA=scalar|avx2|neon for debugging — an
/// unavailable request falls back to scalar).
enum class Isa { kScalar, kAvx2, kNeon };
Isa ActiveIsa();
const char* IsaName(Isa isa);

// ---- Dispatched entry points ------------------------------------------------
// All output buffers are overwritten (no accumulate); aliasing an output
// with an input is allowed only for the elementwise kernels (AddSame,
// AddBias, AddBiasRelu, MaskedSoftmax in-place).

/// c[n,m] = a[n,k] * b[k,m]. Per-element accumulation is serial over k
/// (the classic ikj order), so results match the naive loop bitwise.
void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m);

/// c[bs,n,m] = a[bs,n,k] * b[bs,k,m], batch by batch.
void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m);

/// y[r,:] = softmax(x[r,:]) over the last dimension (max-subtracted,
/// blocked-order sum).
void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d);

/// Attention softmax over {b, h, m} scores with an optional additive
/// {b, m} mask shared across heads (the encoder's padding mask — no
/// b*h*m expansion copy). `mask` may be null. In-place (y == scores) ok.
void MaskedSoftmax(const float* scores, const float* mask, float* y,
                   int64_t b, int64_t h, int64_t m);

/// y[r,:] = (x[r,:] - mean) / sqrt(var + eps). When `inv_sigma` is
/// non-null it receives the per-row 1/sigma (the backward pass needs it).
void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma);

/// y[r,j] = max(x[r,j] + bias[j], 0) — the fused Linear+ReLU epilogue.
void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d);

/// y[r,j] = x[r,j] + bias[j] (rank-1 broadcast over the last dim).
void AddBias(const float* x, const float* bias, float* y, int64_t rows,
             int64_t d);

/// y[i] = a[i] + b[i].
void AddSame(const float* a, const float* b, float* y, int64_t n);

/// Blocked dot product (8-lane accumulation, fixed-tree combine).
float Dot(const float* a, const float* b, int64_t n);

/// Fused attention scores without head-split materialization:
///   scores[(bi*h + hi)*m + s] =
///       scale * dot(q[bi, hi*dh : (hi+1)*dh], k[bi, s, hi*dh : (hi+1)*dh])
/// with q laid out {b, h*dh} and k laid out {b, m, h*dh} — the strided
/// Bmm that replaces Permute+Reshape head splitting.
void AttentionScores(const float* q, const float* k, float* scores,
                     int64_t b, int64_t h, int64_t m, int64_t dh,
                     float scale);

/// Fused attention context (the strided attn @ V):
///   ctx[bi, hi*dh + j] = sum_s attn[(bi*h + hi)*m + s] * v[bi, s, hi*dh + j]
/// accumulated serially over s, with v laid out {b, m, h*dh}.
void AttentionContext(const float* attn, const float* v, float* ctx,
                      int64_t b, int64_t h, int64_t m, int64_t dh);

/// Fused residual-add + LayerNorm with learnable gain/bias:
///   t = x[r,:] + residual[r,:];  y = ((t - mean) / sqrt(var+eps)) * gain + bias
void ResidualLayerNorm(const float* x, const float* residual,
                       const float* gain, const float* bias, float* y,
                       int64_t rows, int64_t d, float eps);

// ---- Training-side kernels (gradient primitives) ----------------------------
// Implemented in kernels_backward.cc under the per-ISA contract (FMA
// legal; see the header comment). All of them ACCUMULATE into their
// output gradient buffers (dst += ...), matching autograd's sum-over-
// uses semantics — callers zero (or EnsureGrad) the buffers. Dispatch is
// keyed off the same ActiveIsa() as the serve kernels, so one process
// runs one tier everywhere; on NEON hosts the training kernels run the
// blocked-scalar tier (still within-process deterministic).

/// dA[n,k] += G[n,m] * B[k,m]^T (the MatMul input gradient).
void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m);

/// dB[k,m] += A[n,k]^T * G[n,m] (the MatMul weight gradient).
void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m);

/// Softmax backward from the forward output y:
///   dx[r,j] += (g[r,j] - dot(g[r,:], y[r,:])) * y[r,j]
void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d);

/// LayerNorm-standardization backward (RowNormalize's gradient) from the
/// forward output y and the per-row 1/sigma the forward stashed:
///   dx[r,j] += inv_sigma[r] * (g[r,j] - mean(g[r,:]) - y[r,j] * mean(g.y))
void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d);

/// Fused Linear+ReLU epilogue backward, masked by the forward output
/// (y > 0 <=> pre-activation > 0). Either output may be null to skip it:
///   dx[r,j]  += y[r,j] > 0 ? g[r,j] : 0
///   dbias[j] += sum_r (y[r,j] > 0 ? g[r,j] : 0)
void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d);

/// y[i] += x[i] (gradient fan-in for copy-shaped ops).
void Accumulate(const float* x, float* y, int64_t n);

/// y[i] += g[i] * m[i] (masked gradient fan-in, e.g. dropout backward).
void AccumulateMul(const float* g, const float* m, float* y, int64_t n);

/// y[i] += a * x[i].
void Axpy(float a, const float* x, float* y, int64_t n);

/// Training-path forward GEMM: C[n,m] = A[n,k] * B[k,m] (overwrite).
/// Same math as the serve MatMul but implemented under the per-ISA
/// contract (FMA legal), so a *recorded* forward — one that feeds the
/// training graph rather than a served score — does not pay the serve
/// plane's cross-ISA bitwise tax. Off-AVX2 hosts run the blocked-scalar
/// serve loop (still within-process deterministic).
void MatMulTrain(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m);

/// Batched MatMulTrain over bs independent [n,k] x [k,m] products.
void BmmTrain(const float* a, const float* b, float* c, int64_t bs,
              int64_t n, int64_t k, int64_t m);

// ---- Portable blocked-scalar implementations --------------------------------
// Bitwise-identical to the SIMD implementations; exposed for the parity
// suite and for forcing the fallback in tests.
namespace scalar {
void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m);
void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m);
void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d);
void MaskedSoftmax(const float* scores, const float* mask, float* y,
                   int64_t b, int64_t h, int64_t m);
void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma);
void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d);
void AddBias(const float* x, const float* bias, float* y, int64_t rows,
             int64_t d);
void AddSame(const float* a, const float* b, float* y, int64_t n);
float Dot(const float* a, const float* b, int64_t n);
void AttentionScores(const float* q, const float* k, float* scores,
                     int64_t b, int64_t h, int64_t m, int64_t dh,
                     float scale);
void AttentionContext(const float* attn, const float* v, float* ctx,
                      int64_t b, int64_t h, int64_t m, int64_t dh);
void ResidualLayerNorm(const float* x, const float* residual,
                       const float* gain, const float* bias, float* y,
                       int64_t rows, int64_t d, float eps);
// Training-side gradient primitives (blocked-scalar tier; defined in
// kernels_backward.cc).
void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m);
void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m);
void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d);
void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d);
void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d);
void Accumulate(const float* x, float* y, int64_t n);
void AccumulateMul(const float* g, const float* m, float* y, int64_t n);
void Axpy(float a, const float* x, float* y, int64_t n);
}  // namespace scalar

// ---- Naive serial reference -------------------------------------------------
// The pre-kernel semantics (serial reductions). Agreement vs the blocked
// kernels: exact for elementwise ops and matmuls (same per-element
// order), within a few ULP for blocked reductions (softmax sums, dots,
// layer-norm moments).
namespace reference {
void MatMul(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m);
void Bmm(const float* a, const float* b, float* c, int64_t bs, int64_t n,
         int64_t k, int64_t m);
void SoftmaxLastDim(const float* x, float* y, int64_t rows, int64_t d);
void RowNormalize(const float* x, float* y, int64_t rows, int64_t d,
                  float eps, float* inv_sigma);
void AddBiasRelu(const float* x, const float* bias, float* y, int64_t rows,
                 int64_t d);
float Dot(const float* a, const float* b, int64_t n);
// Pre-kernel backward-closure loop orders from ops.cc (the strided
// column walks with zero-skips), kept as the before side of the
// micro_substrate before/after pairs. Defined in kernels_backward.cc.
void MatMulGradA(const float* g, const float* b, float* da, int64_t n,
                 int64_t k, int64_t m);
void MatMulGradB(const float* a, const float* g, float* db, int64_t n,
                 int64_t k, int64_t m);
void SoftmaxBackward(const float* y, const float* g, float* dx, int64_t rows,
                     int64_t d);
void RowNormalizeBackward(const float* y, const float* g,
                          const float* inv_sigma, float* dx, int64_t rows,
                          int64_t d);
void AddBiasReluBackward(const float* y, const float* g, float* dx,
                         float* dbias, int64_t rows, int64_t d);
void Accumulate(const float* x, float* y, int64_t n);
}  // namespace reference

}  // namespace kernels
}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_KERNELS_H_
