#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace apan {
namespace tensor {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    // Zero-sized dimensions are legal (a zero-row batch is a well-formed
    // tensor with numel 0); negative ones never are.
    APAN_CHECK_MSG(d >= 0, "shape dimensions must be non-negative");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) {
  g_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

// ---- Factories -------------------------------------------------------------

namespace {
std::shared_ptr<internal::TensorImpl> MakeImpl(Shape shape,
                                               bool requires_grad) {
  APAN_CHECK_MSG(!shape.empty(), "rank-0 tensors are not supported");
  auto impl = std::make_shared<internal::TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  impl->requires_grad = requires_grad && NoGradGuard::GradEnabled();
  return impl;
}
}  // namespace

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Tensor(MakeImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev,
                     bool requires_grad) {
  APAN_CHECK(rng != nullptr);
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng->Normal()) * stddev;
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::Uniform(Shape shape, Rng* rng, float lo, float hi,
                       bool requires_grad) {
  APAN_CHECK(rng != nullptr);
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values,
                          bool requires_grad) {
  const int64_t n = NumElements(shape);
  APAN_CHECK_MSG(static_cast<size_t>(n) == values.size(),
                 "FromVector: value count does not match shape");
  auto impl = MakeImpl(std::move(shape), requires_grad);
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng,
                             bool requires_grad) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform({fan_in, fan_out}, rng, -bound, bound, requires_grad);
}

// ---- Structure -------------------------------------------------------------

const Shape& Tensor::shape() const {
  APAN_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::dim(size_t i) const {
  APAN_CHECK(impl_ != nullptr && i < impl_->shape.size());
  return impl_->shape[i];
}

size_t Tensor::rank() const {
  APAN_CHECK(impl_ != nullptr);
  return impl_->shape.size();
}

int64_t Tensor::numel() const {
  APAN_CHECK(impl_ != nullptr);
  return static_cast<int64_t>(impl_->data.size());
}

bool Tensor::requires_grad() const {
  return impl_ != nullptr && impl_->requires_grad;
}

// ---- Data access -----------------------------------------------------------

float* Tensor::data() {
  APAN_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

const float* Tensor::data() const {
  APAN_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

float* Tensor::grad_data() {
  APAN_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad.data();
}

const std::vector<float>& Tensor::values() const {
  APAN_CHECK(impl_ != nullptr);
  return impl_->data;
}

float Tensor::item(int64_t flat_index) const {
  APAN_CHECK(impl_ != nullptr);
  APAN_CHECK_MSG(flat_index >= 0 &&
                     static_cast<size_t>(flat_index) < impl_->data.size(),
                 "item index out of range");
  return impl_->data[static_cast<size_t>(flat_index)];
}

void Tensor::set_item(int64_t flat_index, float v) {
  APAN_CHECK(impl_ != nullptr);
  APAN_CHECK_MSG(flat_index >= 0 &&
                     static_cast<size_t>(flat_index) < impl_->data.size(),
                 "item index out of range");
  impl_->data[static_cast<size_t>(flat_index)] = v;
}

float Tensor::at(int64_t row, int64_t col) const {
  APAN_CHECK(impl_ != nullptr && impl_->shape.size() == 2);
  APAN_CHECK(row >= 0 && row < impl_->shape[0] && col >= 0 &&
             col < impl_->shape[1]);
  return impl_->data[static_cast<size_t>(row * impl_->shape[1] + col)];
}

std::vector<float> Tensor::GradToVector() const {
  APAN_CHECK(impl_ != nullptr);
  return impl_->grad;
}

// ---- Autograd --------------------------------------------------------------

namespace {

// Post-order DFS producing reverse-topological execution order.
void TopoSort(const std::shared_ptr<internal::TensorImpl>& root,
              std::vector<internal::TensorImpl*>* order) {
  std::unordered_set<internal::TensorImpl*> visited;
  // Iterative DFS to avoid stack overflow on long chains (e.g. RNN-style
  // graphs built over many events).
  struct Frame {
    internal::TensorImpl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child < top.node->parents.size()) {
      internal::TensorImpl* child =
          top.node->parents[top.next_child++].get();
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

Status Tensor::Backward() {
  if (impl_ == nullptr) return Status::InvalidArgument("null tensor");
  if (numel() != 1) {
    return Status::InvalidArgument(
        "Backward() without grad_output requires a scalar; got shape " +
        ShapeToString(shape()));
  }
  return Backward({1.0f});
}

Status Tensor::Backward(const std::vector<float>& grad_output) {
  if (impl_ == nullptr) return Status::InvalidArgument("null tensor");
  if (grad_output.size() != impl_->data.size()) {
    std::ostringstream oss;
    oss << "grad_output size " << grad_output.size()
        << " does not match tensor numel " << impl_->data.size();
    return Status::InvalidArgument(oss.str());
  }
  impl_->EnsureGrad();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    impl_->grad[i] += grad_output[i];
  }
  std::vector<internal::TensorImpl*> order;
  TopoSort(impl_, &order);
  // order is post-order (leaves first); walk backwards so each node runs
  // its backward after all of its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn();
    }
  }
  return Status::OK();
}

void Tensor::ZeroGrad() {
  APAN_CHECK(impl_ != nullptr);
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  APAN_CHECK(impl_ != nullptr);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // value snapshot
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const {
  APAN_CHECK(impl_ != nullptr);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Status Tensor::CopyDataFrom(const Tensor& src) {
  if (impl_ == nullptr || !src.defined()) {
    return Status::InvalidArgument("CopyDataFrom: null tensor");
  }
  if (src.shape() != shape()) {
    return Status::InvalidArgument(
        "CopyDataFrom: shape mismatch " + ShapeToString(src.shape()) +
        " vs " + ShapeToString(shape()));
  }
  impl_->data = src.impl_->data;
  return Status::OK();
}

void Tensor::set_requires_grad(bool requires_grad) {
  APAN_CHECK(impl_ != nullptr);
  impl_->requires_grad = requires_grad;
}

Tensor Tensor::WrapImpl(std::shared_ptr<Impl> impl) {
  return Tensor(std::move(impl));
}

std::string Tensor::ToString() const {
  if (impl_ == nullptr) return "Tensor(null)";
  std::ostringstream oss;
  oss << "Tensor" << ShapeToString(impl_->shape);
  if (impl_->data.size() <= 16) {
    oss << " {";
    for (size_t i = 0; i < impl_->data.size(); ++i) {
      if (i) oss << ", ";
      oss << impl_->data[i];
    }
    oss << "}";
  }
  return oss.str();
}

}  // namespace tensor
}  // namespace apan
