// Per-thread tensor arena for the serving hot path.
//
// A serve batch builds the same op sequence every time, so the tensors it
// allocates have the same shapes batch after batch. TensorArena exploits
// that: it pools the TensorImpl nodes (control block + shape + data
// buffer) a batch creates, and an ArenaScope entered at the top of the
// next batch rewinds the pool cursor so the ops layer re-uses them in
// creation order — after one warm-up batch, NewImpl performs zero heap
// allocations on the serve path (asserted in tests/tensor_kernels_test.cc
// via the fresh_impls() counter).
//
// Safety model:
//   * an arena is strictly thread-confined (Current() is thread-local);
//     tensors allocated from it must not be handed to another thread —
//     the serve engines copy rows out instead of sharing tensors;
//   * recycling is refcount-guarded: a pooled impl still referenced by a
//     live Tensor (use_count > 1) is skipped, never reused, so a tensor
//     that outlives its batch scope stays valid (it just costs its pool
//     slot until released);
//   * the ops layer only draws from a TensorArena when gradient
//     recording is off (NoGradGuard), so autograd graphs never alias
//     serve-pooled storage. Training-side pooling is TrainingArena's
//     job (below), which is refcount-safe against live graphs.
//
// TrainingArena extends the same idea to the training step, where the
// op sequence (one forward + backward per batch) is also structurally
// constant but every intermediate is captured by backward closures
// until the loss tensor dies. Following ggml-alloc's graph-planned
// allocation: the FIRST step under a TrainingStepScope runs in planning
// mode — every NewImpl is heap-allocated and its lifetime (first/last
// use ordinal, observed via use_count) is recorded; EndStep() seals a
// plan that greedily assigns allocation ordinals to pool slots (two
// ordinals share a slot when their live ranges don't overlap) and
// pre-sizes each slot's buffer to the largest tensor it will hold.
// Every subsequent step replays by ordinal: allocation #i of the step
// draws slot plan[i] — zero heap allocations once shapes have hit
// their high-water mark (asserted in tests/train_fastpath_test.cc the
// same way the serve test does). A replay allocation whose planned slot
// is still referenced (an impl unexpectedly outliving its planned
// range) falls back to the heap and bumps plan_misses() — correctness
// never depends on the plan being right.

#ifndef APAN_TENSOR_ARENA_H_
#define APAN_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace apan {
namespace tensor {

/// \brief Pool of recyclable TensorImpl nodes with a rewindable cursor.
class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// \brief Returns a zeroed (or, with zero=false, content-unspecified)
  /// impl of `shape`, recycling a pooled node when one is free. The
  /// caller owns a reference; the arena keeps one for recycling.
  std::shared_ptr<internal::TensorImpl> Allocate(Shape shape,
                                                 bool zero = true);

  /// Rewinds the cursor so the whole pool is offered for reuse again
  /// (per-batch reset; referenced impls are skipped at Allocate time).
  void Reset() { cursor_ = 0; }

  /// Pool misses: impls that had to be heap-allocated. Flat across
  /// batches once the arena is warm — the zero-allocation assertion.
  int64_t fresh_impls() const { return fresh_; }
  /// Pool hits.
  int64_t reused_impls() const { return reused_; }
  size_t pool_size() const { return pool_.size(); }

  /// Process-wide totals across every thread's arena (relaxed atomics).
  /// Arenas are thread-local and unenumerable from outside, so the
  /// observability snapshot exports these instead: a warm serve plane
  /// shows fresh flat and reused growing.
  static int64_t TotalFreshImpls();
  static int64_t TotalReusedImpls();

  /// The arena the innermost ArenaScope on this thread activated, or
  /// null when no scope is open (ops fall back to plain heap impls).
  static TensorArena* Current();

 private:
  friend class ArenaScope;
  static TensorArena*& CurrentSlot();

  std::vector<std::shared_ptr<internal::TensorImpl>> pool_;
  size_t cursor_ = 0;
  int64_t fresh_ = 0;
  int64_t reused_ = 0;
};

/// \brief Graph-planned TensorImpl pool for the training step loop.
/// Plan once (first step), replay by allocation ordinal afterwards; see
/// the file comment for the lifecycle. Thread-confined like TensorArena.
class TrainingArena {
 public:
  TrainingArena() = default;
  TrainingArena(const TrainingArena&) = delete;
  TrainingArena& operator=(const TrainingArena&) = delete;

  /// Allocation entry point, called by ops::NewImpl when gradient
  /// recording is ON and a TrainingStepScope is active on this thread.
  std::shared_ptr<internal::TensorImpl> Allocate(Shape shape, bool zero);

  /// Starts a step: the first call enters planning mode, later calls
  /// rewind the replay ordinal.
  void BeginStep();
  /// Ends a step; the first EndStep seals the plan.
  void EndStep();

  /// Heap allocations (flat once warm — the zero-allocation assertion).
  int64_t fresh_impls() const { return fresh_; }
  /// Replayed pool draws.
  int64_t reused_impls() const { return reused_; }
  /// Replay allocations whose planned slot was still referenced or past
  /// the plan's end (each fell back to a heap impl). Structurally
  /// constant step graphs keep this at zero.
  int64_t plan_misses() const { return plan_misses_; }
  bool planned() const { return planned_; }
  size_t pool_slots() const { return pool_.size(); }

  /// The arena the innermost TrainingStepScope on this thread
  /// activated, or null (ops then fall back to plain heap impls).
  static TrainingArena* Current();

 private:
  friend class TrainingStepScope;
  static TrainingArena*& CurrentSlot();

  /// Sweeps planning-mode impls whose only reference is the recorder
  /// (use_count == 1), closing their live ranges at `ordinal`.
  void ObserveDeaths(int64_t ordinal);

  /// Strips backward closures / parent edges from pool cells nothing
  /// outside the arena references anymore. Without this the step's
  /// autograd graph pins the pool to itself (consumer impls hold
  /// shared_ptrs to producer impls), and a replay would miss on every
  /// slot but the chain's tail. Runs at each EndStep, after the step's
  /// external tensors have died.
  void ReleaseGraphRefs();

  // Planning state: one entry per allocation ordinal of the first step.
  struct PlanEntry {
    std::shared_ptr<internal::TensorImpl> impl;  ///< null once sealed
    int64_t numel = 0;
    int64_t last_use = -1;  ///< ordinal after which the impl was dead
    int64_t slot = -1;
  };
  std::vector<PlanEntry> plan_;
  std::vector<size_t> live_;  ///< plan_ indices not yet observed dead

  // Replay state: one recyclable impl per plan slot.
  std::vector<std::shared_ptr<internal::TensorImpl>> pool_;
  int64_t ordinal_ = 0;
  bool planned_ = false;
  int64_t fresh_ = 0;
  int64_t reused_ = 0;
  int64_t plan_misses_ = 0;
};

/// \brief RAII: activates `arena` on this thread for one training step
/// (BeginStep on entry, EndStep + previous-arena restore on exit). The
/// trainer wraps each batch's forward/backward/optimizer leg in one.
class TrainingStepScope {
 public:
  explicit TrainingStepScope(TrainingArena* arena);
  ~TrainingStepScope();
  TrainingStepScope(const TrainingStepScope&) = delete;
  TrainingStepScope& operator=(const TrainingStepScope&) = delete;

 private:
  TrainingArena* arena_;
  TrainingArena* prev_;
};

/// \brief RAII activation of an arena on the calling thread. Entering a
/// scope for an arena that was not already active resets it (the
/// per-batch rewind); nesting the same arena is a no-op. The default
/// constructor uses the calling thread's lazily-created arena — what the
/// serve engines wrap around each batch's encode/propagate leg.
class ArenaScope {
 public:
  ArenaScope();
  explicit ArenaScope(TensorArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The calling thread's own arena (created on first use).
  static TensorArena* ThreadLocalArena();

 private:
  TensorArena* prev_;
};

}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_ARENA_H_
