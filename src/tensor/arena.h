// Per-thread tensor arena for the serving hot path.
//
// A serve batch builds the same op sequence every time, so the tensors it
// allocates have the same shapes batch after batch. TensorArena exploits
// that: it pools the TensorImpl nodes (control block + shape + data
// buffer) a batch creates, and an ArenaScope entered at the top of the
// next batch rewinds the pool cursor so the ops layer re-uses them in
// creation order — after one warm-up batch, NewImpl performs zero heap
// allocations on the serve path (asserted in tests/tensor_kernels_test.cc
// via the fresh_impls() counter).
//
// Safety model:
//   * an arena is strictly thread-confined (Current() is thread-local);
//     tensors allocated from it must not be handed to another thread —
//     the serve engines copy rows out instead of sharing tensors;
//   * recycling is refcount-guarded: a pooled impl still referenced by a
//     live Tensor (use_count > 1) is skipped, never reused, so a tensor
//     that outlives its batch scope stays valid (it just costs its pool
//     slot until released);
//   * the ops layer only draws from an arena when gradient recording is
//     off (NoGradGuard), so autograd graphs never alias pooled storage.

#ifndef APAN_TENSOR_ARENA_H_
#define APAN_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace apan {
namespace tensor {

/// \brief Pool of recyclable TensorImpl nodes with a rewindable cursor.
class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// \brief Returns a zeroed (or, with zero=false, content-unspecified)
  /// impl of `shape`, recycling a pooled node when one is free. The
  /// caller owns a reference; the arena keeps one for recycling.
  std::shared_ptr<internal::TensorImpl> Allocate(Shape shape,
                                                 bool zero = true);

  /// Rewinds the cursor so the whole pool is offered for reuse again
  /// (per-batch reset; referenced impls are skipped at Allocate time).
  void Reset() { cursor_ = 0; }

  /// Pool misses: impls that had to be heap-allocated. Flat across
  /// batches once the arena is warm — the zero-allocation assertion.
  int64_t fresh_impls() const { return fresh_; }
  /// Pool hits.
  int64_t reused_impls() const { return reused_; }
  size_t pool_size() const { return pool_.size(); }

  /// Process-wide totals across every thread's arena (relaxed atomics).
  /// Arenas are thread-local and unenumerable from outside, so the
  /// observability snapshot exports these instead: a warm serve plane
  /// shows fresh flat and reused growing.
  static int64_t TotalFreshImpls();
  static int64_t TotalReusedImpls();

  /// The arena the innermost ArenaScope on this thread activated, or
  /// null when no scope is open (ops fall back to plain heap impls).
  static TensorArena* Current();

 private:
  friend class ArenaScope;
  static TensorArena*& CurrentSlot();

  std::vector<std::shared_ptr<internal::TensorImpl>> pool_;
  size_t cursor_ = 0;
  int64_t fresh_ = 0;
  int64_t reused_ = 0;
};

/// \brief RAII activation of an arena on the calling thread. Entering a
/// scope for an arena that was not already active resets it (the
/// per-batch rewind); nesting the same arena is a no-op. The default
/// constructor uses the calling thread's lazily-created arena — what the
/// serve engines wrap around each batch's encode/propagate leg.
class ArenaScope {
 public:
  ArenaScope();
  explicit ArenaScope(TensorArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The calling thread's own arena (created on first use).
  static TensorArena* ThreadLocalArena();

 private:
  TensorArena* prev_;
};

}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_ARENA_H_
