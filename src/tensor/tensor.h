// Dense float32 tensor with dynamic reverse-mode automatic differentiation.
//
// This is the numerical substrate for every model in the repository. It is
// deliberately small: row-major contiguous float32 storage, a define-by-run
// autograd tape, and the operator set required by temporal-graph models
// (see ops.h). Tensors are cheap shared handles to reference-counted
// storage; ops build a DAG of parent links and backward closures that
// Tensor::Backward() traverses in reverse topological order.
//
// Thread-model: a Tensor graph must be built and differentiated on one
// thread. Distinct graphs on distinct threads are safe (GradMode is
// thread-local).

#ifndef APAN_TENSOR_TENSOR_H_
#define APAN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace apan {
namespace tensor {

/// Dimension sizes, outermost first. Rank 0 is not supported; scalars are
/// shape {1}.
using Shape = std::vector<int64_t>;

/// \brief Returns the element count of a shape.
int64_t NumElements(const Shape& shape);

/// \brief Renders "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// \brief Thread-local switch that disables graph construction. Used for
/// inference paths and for mailbox/memory updates that must be detached.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when gradients are currently being recorded.
  static bool GradEnabled();

 private:
  bool prev_;
};

namespace internal {

/// Reference-counted tensor node: storage plus autograd metadata.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily, same size as data
  bool requires_grad = false;
  // Backward closure: reads this->grad, accumulates into parents' grads.
  std::function<void()> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// \brief Shared handle to a tensor node. Copying a Tensor aliases storage.
class Tensor {
 public:
  /// Null handle; most APIs treat it as an error to pass one.
  Tensor() = default;

  // ---- Factory functions -------------------------------------------------

  /// Uninitialized-to-zero tensor of the given shape.
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Ones(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// U(lo, hi) entries.
  static Tensor Uniform(Shape shape, Rng* rng, float lo, float hi,
                        bool requires_grad = false);
  /// Copies `values` (size must equal NumElements(shape)).
  static Tensor FromVector(Shape shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Shape {1} scalar.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Xavier/Glorot-uniform initialized {fan_in, fan_out} matrix.
  static Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng,
                              bool requires_grad = true);

  // ---- Structure ---------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim(size_t i) const;
  size_t rank() const;
  int64_t numel() const;
  bool requires_grad() const;

  // ---- Data access -------------------------------------------------------

  float* data();
  const float* data() const;
  float* grad_data();
  const std::vector<float>& values() const;

  /// Element access for tests and glue code (row-major flattened index).
  float item(int64_t flat_index = 0) const;
  void set_item(int64_t flat_index, float v);
  /// 2-D convenience accessor.
  float at(int64_t row, int64_t col) const;

  /// Gradient copy (empty when no gradient has been accumulated).
  std::vector<float> GradToVector() const;

  // ---- Autograd ----------------------------------------------------------

  /// \brief Runs reverse-mode differentiation from this node. The tensor
  /// must be a scalar (numel == 1) unless `grad_output` is supplied.
  /// \return InvalidArgument for non-scalar roots without grad_output.
  Status Backward();
  Status Backward(const std::vector<float>& grad_output);

  /// Zeroes the gradient buffer (keeps allocation).
  void ZeroGrad();

  /// \brief Returns a detached view sharing storage but outside the graph.
  /// Mutating either alias mutates both; the detached alias never requires
  /// grad and has no parents.
  Tensor Detach() const;

  /// Deep copy of values (never shares storage, never in a graph).
  Tensor Clone() const;

  /// Copies values from `src` (shapes must match) without touching graph
  /// structure. Used for in-place state updates under NoGradGuard.
  Status CopyDataFrom(const Tensor& src);

  /// Marks this tensor as a trainable parameter.
  void set_requires_grad(bool requires_grad);

  // ---- Internal (used by ops.cc) -----------------------------------------

  using Impl = internal::TensorImpl;
  const std::shared_ptr<Impl>& impl() const { return impl_; }
  static Tensor WrapImpl(std::shared_ptr<Impl> impl);

  /// Renders shape and (for small tensors) values; for debugging.
  std::string ToString() const;

 private:
  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace tensor
}  // namespace apan

#endif  // APAN_TENSOR_TENSOR_H_
