#include "tensor/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>

namespace apan {
namespace tensor {

namespace {
// Arena instances are thread-local; these totals are the only cross-
// thread view (exported by the serve snapshot dumps). One relaxed add
// per impl allocation — noise next to the tensor op it serves.
std::atomic<int64_t> g_total_fresh{0};
std::atomic<int64_t> g_total_reused{0};
}  // namespace

int64_t TensorArena::TotalFreshImpls() {
  return g_total_fresh.load(std::memory_order_relaxed);
}

int64_t TensorArena::TotalReusedImpls() {
  return g_total_reused.load(std::memory_order_relaxed);
}

std::shared_ptr<internal::TensorImpl> TensorArena::Allocate(Shape shape,
                                                            bool zero) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  while (cursor_ < pool_.size()) {
    std::shared_ptr<internal::TensorImpl>& slot = pool_[cursor_++];
    if (slot.use_count() != 1) continue;  // still referenced by a Tensor
    internal::TensorImpl* impl = slot.get();
    // assign() reuses the vectors' capacity; once shapes have stabilized
    // (after the warm-up batch) none of this touches the heap.
    impl->shape.assign(shape.begin(), shape.end());
    if (zero) {
      impl->data.assign(n, 0.0f);
    } else if (impl->data.size() != n) {
      impl->data.resize(n);
    }
    impl->grad.clear();
    impl->requires_grad = false;
    impl->backward_fn = nullptr;
    impl->parents.clear();
    ++reused_;
    g_total_reused.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(n, 0.0f);
  pool_.push_back(impl);
  cursor_ = pool_.size();
  ++fresh_;
  g_total_fresh.fetch_add(1, std::memory_order_relaxed);
  return impl;
}

TensorArena*& TensorArena::CurrentSlot() {
  thread_local TensorArena* current = nullptr;
  return current;
}

TensorArena* TensorArena::Current() { return CurrentSlot(); }

TensorArena* ArenaScope::ThreadLocalArena() {
  thread_local TensorArena arena;
  return &arena;
}

ArenaScope::ArenaScope() : ArenaScope(ThreadLocalArena()) {}

ArenaScope::ArenaScope(TensorArena* arena) {
  TensorArena*& slot = TensorArena::CurrentSlot();
  prev_ = slot;
  if (arena != prev_ && arena != nullptr) arena->Reset();
  slot = arena;
}

ArenaScope::~ArenaScope() { TensorArena::CurrentSlot() = prev_; }

// ---- TrainingArena ----------------------------------------------------------

void TrainingArena::ObserveDeaths(int64_t ordinal) {
  for (size_t i = 0; i < live_.size();) {
    PlanEntry& e = plan_[live_[i]];
    if (e.impl.use_count() == 1) {
      // Only the recorder holds it: the graph dropped this impl before
      // the current allocation, so its slot is free from here on.
      e.last_use = ordinal;
      live_[i] = live_.back();
      live_.pop_back();
    } else {
      ++i;
    }
  }
}

std::shared_ptr<internal::TensorImpl> TrainingArena::Allocate(Shape shape,
                                                              bool zero) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  if (!planned_) {
    // Planning step: heap-allocate and record the lifetime interval.
    ObserveDeaths(ordinal_);
    auto impl = std::make_shared<internal::TensorImpl>();
    impl->shape = std::move(shape);
    impl->data.assign(n, 0.0f);
    plan_.push_back(PlanEntry{impl, static_cast<int64_t>(n), -1, -1});
    live_.push_back(plan_.size() - 1);
    ++ordinal_;
    ++fresh_;
    return impl;
  }
  const int64_t ord = ordinal_++;
  if (ord < static_cast<int64_t>(plan_.size())) {
    std::shared_ptr<internal::TensorImpl>& slot = pool_[static_cast<size_t>(
        plan_[static_cast<size_t>(ord)].slot)];
    if (slot.use_count() == 1) {
      internal::TensorImpl* impl = slot.get();
      // assign() reuses capacity; the seal pass reserved each slot's
      // high-water numel, so a warm replay never touches the heap.
      impl->shape.assign(shape.begin(), shape.end());
      if (zero) {
        impl->data.assign(n, 0.0f);
      } else if (impl->data.size() != n) {
        impl->data.resize(n);
      }
      impl->grad.clear();
      impl->requires_grad = false;
      impl->backward_fn = nullptr;
      impl->parents.clear();
      ++reused_;
      return slot;
    }
  }
  // Planned slot still referenced, or the step outgrew the plan: fall
  // back to a plain heap impl (correct, just unpooled) and say so.
  ++plan_misses_;
  ++fresh_;
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(n, 0.0f);
  return impl;
}

void TrainingArena::BeginStep() { ordinal_ = 0; }

void TrainingArena::ReleaseGraphRefs() {
  // Each strip can drop the last external reference to another cell, so
  // iterate to a fixed point (chains are short: one step's graph depth).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& cell : pool_) {
      if (cell != nullptr && cell.use_count() == 1 &&
          (cell->backward_fn != nullptr || !cell->parents.empty())) {
        cell->backward_fn = nullptr;
        cell->parents.clear();
        changed = true;
      }
    }
  }
}

void TrainingArena::EndStep() {
  if (planned_) {
    ReleaseGraphRefs();
    return;
  }

  // Seal the plan. Close the live ranges that reach the end of the step
  // (they recycle across steps, not within one).
  constexpr int64_t kNever = std::numeric_limits<int64_t>::max();
  ObserveDeaths(ordinal_);
  for (size_t idx : live_) plan_[idx].last_use = kNever;
  live_.clear();

  // Greedy interval-to-slot assignment (ggml-alloc style): walk the
  // ordinals in order, releasing slots whose occupant died, and give
  // each allocation the lowest free slot (or a new one).
  using Release = std::pair<int64_t, int64_t>;  // (free_at, slot)
  std::priority_queue<Release, std::vector<Release>, std::greater<Release>>
      releases;
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      free_slots;
  int64_t slot_count = 0;
  std::vector<int64_t> slot_numel;
  for (size_t i = 0; i < plan_.size(); ++i) {
    const int64_t ord = static_cast<int64_t>(i);
    while (!releases.empty() && releases.top().first <= ord) {
      free_slots.push(releases.top().second);
      releases.pop();
    }
    int64_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.top();
      free_slots.pop();
    } else {
      slot = slot_count++;
      slot_numel.push_back(0);
    }
    plan_[i].slot = slot;
    slot_numel[static_cast<size_t>(slot)] =
        std::max(slot_numel[static_cast<size_t>(slot)], plan_[i].numel);
    if (plan_[i].last_use != kNever) {
      releases.push({plan_[i].last_use, slot});
    }
  }

  // One pooled impl per slot, seeded from a planning impl assigned to
  // it (buffer reuse) and reserved to the slot's high-water numel so
  // replay-time assign()/EnsureGrad() stay off the heap.
  pool_.assign(static_cast<size_t>(slot_count), nullptr);
  for (size_t i = 0; i < plan_.size(); ++i) {
    auto& cell = pool_[static_cast<size_t>(plan_[i].slot)];
    if (cell == nullptr || plan_[i].numel > static_cast<int64_t>(
                                                cell->data.capacity())) {
      cell = std::move(plan_[i].impl);
    }
    plan_[i].impl.reset();
  }
  for (size_t s = 0; s < pool_.size(); ++s) {
    const size_t cap = static_cast<size_t>(slot_numel[s]);
    pool_[s]->data.reserve(cap);
    pool_[s]->grad.reserve(cap);
  }
  planned_ = true;
  ReleaseGraphRefs();
}

TrainingArena*& TrainingArena::CurrentSlot() {
  thread_local TrainingArena* current = nullptr;
  return current;
}

TrainingArena* TrainingArena::Current() { return CurrentSlot(); }

TrainingStepScope::TrainingStepScope(TrainingArena* arena) : arena_(arena) {
  TrainingArena*& slot = TrainingArena::CurrentSlot();
  prev_ = slot;
  slot = arena_;
  if (arena_ != nullptr) arena_->BeginStep();
}

TrainingStepScope::~TrainingStepScope() {
  if (arena_ != nullptr) arena_->EndStep();
  TrainingArena::CurrentSlot() = prev_;
}

}  // namespace tensor
}  // namespace apan
