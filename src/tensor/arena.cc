#include "tensor/arena.h"

#include <algorithm>
#include <atomic>

namespace apan {
namespace tensor {

namespace {
// Arena instances are thread-local; these totals are the only cross-
// thread view (exported by the serve snapshot dumps). One relaxed add
// per impl allocation — noise next to the tensor op it serves.
std::atomic<int64_t> g_total_fresh{0};
std::atomic<int64_t> g_total_reused{0};
}  // namespace

int64_t TensorArena::TotalFreshImpls() {
  return g_total_fresh.load(std::memory_order_relaxed);
}

int64_t TensorArena::TotalReusedImpls() {
  return g_total_reused.load(std::memory_order_relaxed);
}

std::shared_ptr<internal::TensorImpl> TensorArena::Allocate(Shape shape,
                                                            bool zero) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  while (cursor_ < pool_.size()) {
    std::shared_ptr<internal::TensorImpl>& slot = pool_[cursor_++];
    if (slot.use_count() != 1) continue;  // still referenced by a Tensor
    internal::TensorImpl* impl = slot.get();
    // assign() reuses the vectors' capacity; once shapes have stabilized
    // (after the warm-up batch) none of this touches the heap.
    impl->shape.assign(shape.begin(), shape.end());
    if (zero) {
      impl->data.assign(n, 0.0f);
    } else if (impl->data.size() != n) {
      impl->data.resize(n);
    }
    impl->grad.clear();
    impl->requires_grad = false;
    impl->backward_fn = nullptr;
    impl->parents.clear();
    ++reused_;
    g_total_reused.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(n, 0.0f);
  pool_.push_back(impl);
  cursor_ = pool_.size();
  ++fresh_;
  g_total_fresh.fetch_add(1, std::memory_order_relaxed);
  return impl;
}

TensorArena*& TensorArena::CurrentSlot() {
  thread_local TensorArena* current = nullptr;
  return current;
}

TensorArena* TensorArena::Current() { return CurrentSlot(); }

TensorArena* ArenaScope::ThreadLocalArena() {
  thread_local TensorArena arena;
  return &arena;
}

ArenaScope::ArenaScope() : ArenaScope(ThreadLocalArena()) {}

ArenaScope::ArenaScope(TensorArena* arena) {
  TensorArena*& slot = TensorArena::CurrentSlot();
  prev_ = slot;
  if (arena != prev_ && arena != nullptr) arena->Reset();
  slot = arena;
}

ArenaScope::~ArenaScope() { TensorArena::CurrentSlot() = prev_; }

}  // namespace tensor
}  // namespace apan
