// Dense edge-feature storage, indexed by EdgeId in event order.

#ifndef APAN_GRAPH_EDGE_FEATURES_H_
#define APAN_GRAPH_EDGE_FEATURES_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace apan {
namespace graph {

/// \brief Row-major feature matrix for temporal edges.
///
/// The feature of event e_ij (paper notation) is the row at that event's
/// edge_id. Rows are appended in event order by the dataset builder.
class EdgeFeatureStore {
 public:
  explicit EdgeFeatureStore(int64_t dim) : dim_(dim) {
    APAN_CHECK_MSG(dim > 0, "edge feature dim must be positive");
  }

  int64_t dim() const { return dim_; }
  int64_t num_edges() const {
    return static_cast<int64_t>(flat_.size()) / dim_;
  }

  /// Appends one feature row; returns its EdgeId.
  EdgeId Append(const std::vector<float>& features) {
    APAN_CHECK_MSG(static_cast<int64_t>(features.size()) == dim_,
                   "edge feature dimension mismatch");
    flat_.insert(flat_.end(), features.begin(), features.end());
    return num_edges() - 1;
  }

  /// Pointer to the row for `edge_id` (dim() floats).
  const float* Row(EdgeId edge_id) const {
    APAN_CHECK_MSG(edge_id >= 0 && edge_id < num_edges(),
                   "edge id out of range");
    return flat_.data() + static_cast<size_t>(edge_id * dim_);
  }

  /// Copies rows for `edge_ids` into a {n, dim} tensor (constants — not
  /// part of any autograd graph). Negative ids produce zero rows, which
  /// models use for "no such edge" padding.
  tensor::Tensor Gather(const std::vector<EdgeId>& edge_ids) const {
    const int64_t n = static_cast<int64_t>(edge_ids.size());
    std::vector<float> out(static_cast<size_t>(n * dim_), 0.0f);
    for (int64_t r = 0; r < n; ++r) {
      const EdgeId id = edge_ids[static_cast<size_t>(r)];
      if (id < 0) continue;
      const float* row = Row(id);
      std::copy_n(row, dim_, out.data() + r * dim_);
    }
    return tensor::Tensor::FromVector({n, dim_}, std::move(out));
  }

 private:
  int64_t dim_;
  std::vector<float> flat_;
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_EDGE_FEATURES_H_
