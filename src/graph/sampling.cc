#include "graph/sampling.h"

namespace apan {
namespace graph {

namespace {

template <typename SampleFn>
std::vector<HopEntry> KHopExpand(const std::vector<NodeId>& seeds,
                                 int32_t num_hops, const SampleFn& sample) {
  std::vector<HopEntry> out;
  std::vector<NodeId> frontier = seeds;
  for (int32_t hop = 1; hop <= num_hops; ++hop) {
    std::vector<NodeId> next;
    for (NodeId node : frontier) {
      for (const TemporalNeighbor& n : sample(node)) {
        out.push_back({n.node, n.edge_id, n.timestamp, hop});
        next.push_back(n.node);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

}  // namespace

std::vector<HopEntry> KHopMostRecent(const TemporalGraph& graph,
                                     const std::vector<NodeId>& seeds,
                                     double before_time, int32_t num_hops,
                                     int64_t fanout) {
  return KHopExpand(seeds, num_hops, [&](NodeId node) {
    return graph.MostRecentNeighbors(node, before_time, fanout);
  });
}

std::vector<HopEntry> KHopUniform(const TemporalGraph& graph,
                                  const std::vector<NodeId>& seeds,
                                  double before_time, int32_t num_hops,
                                  int64_t fanout, Rng* rng) {
  return KHopExpand(seeds, num_hops, [&](NodeId node) {
    return graph.UniformNeighbors(node, before_time, fanout, rng);
  });
}

}  // namespace graph
}  // namespace apan
