// The shared node-ownership index of an N-way node partition.
//
// Both partitioned planes — core::NodeStateStore (mailbox slice + z(t−)
// rows) and graph::ShardedTemporalGraph (adjacency slices) — need the
// same two dense maps: node -> owning shard and node -> local row within
// that shard. NodePartition stores the pair once; every store and every
// slice of one engine references the same immutable instance through a
// shared_ptr, so the index costs ~8 bytes/node per ENGINE instead of per
// plane (previously the graph kept a private element-identical copy).
// Rows are assigned in ascending node-id order within each shard, which
// is the layout both planes already assumed.
//
// Two builders ship: the canonical hash (BuildDefault — stateless, any
// tier can recompute it) and a locality-aware greedy assignment over a
// temporal event stream (BuildLocality — LDG-style co-location under a
// balance cap, built from a warmup prefix or a prior epoch's events).
// Either way the result is the same immutable index type, so every
// consumer — router, graph slices, state stores — is partition-agnostic.

#ifndef APAN_GRAPH_NODE_PARTITION_H_
#define APAN_GRAPH_NODE_PARTITION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/temporal_graph.h"

namespace apan {
namespace graph {

/// \brief Immutable dense index over a disjoint N-way node partition.
struct NodePartition {
  int num_shards = 0;
  std::vector<int32_t> owner_of;     ///< node -> owning shard
  std::vector<int32_t> local_row;    ///< node -> dense row in its shard
  std::vector<int64_t> owned_count;  ///< shard -> number of rows

  int64_t num_nodes() const {
    return static_cast<int64_t>(owner_of.size());
  }

  /// Builds from an arbitrary ownership function (must return a shard in
  /// [0, num_shards) for every node; CHECK-fails otherwise).
  static std::shared_ptr<const NodePartition> Build(
      int64_t num_nodes, int num_shards,
      const std::function<int(NodeId)>& owner_fn);

  /// Builds from the canonical ownership hash (graph::NodeShardOf) — the
  /// stateless mapping any tier can recompute without coordination. The
  /// fallback when no interaction history is available yet.
  static std::shared_ptr<const NodePartition> BuildDefault(int64_t num_nodes,
                                                           int num_shards);

  /// Tuning for BuildLocality.
  struct LocalityOptions {
    /// Per-shard node cap as a multiple of the perfectly balanced share:
    /// cap = max(ceil(n/shards), floor(balance_factor * n / shards)).
    /// 1.0 forces perfect balance (degenerates toward round-robin on
    /// skewed streams); larger values trade balance for locality.
    double balance_factor = 1.2;
  };

  /// \brief Greedy locality-aware assignment over a temporal edge stream
  /// (LDG-style): endpoints of observed interactions are co-located on
  /// one shard when its balance cap allows, so k-hop propagation stays
  /// shard-local instead of ~(N-1)/N cross-shard under the hash.
  ///
  /// Single deterministic pass in stream order: an event whose endpoints
  /// are both unassigned pins them to the least-loaded shard (lowest id
  /// on ties); one assigned endpoint pulls the other onto its shard
  /// unless that shard is at cap (then least-loaded); two assigned
  /// endpoints are left alone (first interaction wins). Nodes never seen
  /// in `events` — built from a warmup prefix or a prior epoch, so most
  /// nodes ARE seen — are filled onto least-loaded shards in ascending
  /// node-id order. A pure function of (num_nodes, num_shards, events,
  /// options): every tier handed the same warmup stream computes the
  /// same index.
  static std::shared_ptr<const NodePartition> BuildLocality(
      int64_t num_nodes, int num_shards, std::span<const Event> events,
      const LocalityOptions& options);
  /// Same with default LocalityOptions (a nested-class NSDMI cannot serve
  /// as a default argument inside the enclosing class).
  static std::shared_ptr<const NodePartition> BuildLocality(
      int64_t num_nodes, int num_shards, std::span<const Event> events);
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_NODE_PARTITION_H_
