// The shared node-ownership index of an N-way hash partition.
//
// Both partitioned planes — core::NodeStateStore (mailbox slice + z(t−)
// rows) and graph::ShardedTemporalGraph (adjacency slices) — need the
// same two dense maps: node -> owning shard and node -> local row within
// that shard. NodePartition stores the pair once; every store and every
// slice of one engine references the same immutable instance through a
// shared_ptr, so the index costs ~8 bytes/node per ENGINE instead of per
// plane (previously the graph kept a private element-identical copy).
// Rows are assigned in ascending node-id order within each shard, which
// is the layout both planes already assumed.

#ifndef APAN_GRAPH_NODE_PARTITION_H_
#define APAN_GRAPH_NODE_PARTITION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/temporal_graph.h"

namespace apan {
namespace graph {

/// \brief Immutable dense index over a disjoint N-way node partition.
struct NodePartition {
  int num_shards = 0;
  std::vector<int32_t> owner_of;     ///< node -> owning shard
  std::vector<int32_t> local_row;    ///< node -> dense row in its shard
  std::vector<int64_t> owned_count;  ///< shard -> number of rows

  int64_t num_nodes() const {
    return static_cast<int64_t>(owner_of.size());
  }

  /// Builds from an arbitrary ownership function (must return a shard in
  /// [0, num_shards) for every node; CHECK-fails otherwise).
  static std::shared_ptr<const NodePartition> Build(
      int64_t num_nodes, int num_shards,
      const std::function<int(NodeId)>& owner_fn);

  /// Builds from the canonical ownership hash (graph::NodeShardOf) — the
  /// mapping serve::ShardRouter and the graph slices agree on.
  static std::shared_ptr<const NodePartition> BuildDefault(int64_t num_nodes,
                                                           int num_shards);
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_NODE_PARTITION_H_
