// Continuous-time dynamic graph (CTDG) storage.
//
// A TemporalGraph is an append-only log of timestamped interaction events
// (v_i, v_j, e_ij, t) plus a per-node adjacency index sorted by time. It is
// the "graph database" of the paper's architecture: synchronous baselines
// (TGAT/TGN) must query it on the inference path, while APAN only touches
// it from the asynchronous propagation link.
//
// Instrumentation: every neighbor query increments a counter, which the
// test suite uses to prove APAN's synchronous path never queries the graph
// (DESIGN.md §6, "inference-path purity").
//
// Thread contract (docs/static-analysis.md): this class carries no lock on
// purpose — appends and reads are externally synchronized by the owner
// (AsyncPipeline's worker under model_mu_; trainers single-threaded). The
// only member shared across unsynchronized threads is query_count_, a
// relaxed atomic (a diagnostic counter, not a synchronization point).
// Anything needing a concurrently-written graph goes through
// graph::ShardedTemporalGraph's slice-ownership contract instead.

#ifndef APAN_GRAPH_TEMPORAL_GRAPH_H_
#define APAN_GRAPH_TEMPORAL_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace apan {
namespace graph {

using NodeId = int64_t;
using EdgeId = int64_t;

/// A single timestamped interaction (v_src, v_dst, edge features, t).
struct Event {
  NodeId src = -1;
  NodeId dst = -1;
  double timestamp = 0.0;
  EdgeId edge_id = -1;  ///< Index into the edge feature store / label array.
};

/// One directed temporal neighbor occurrence.
struct TemporalNeighbor {
  NodeId node = -1;
  EdgeId edge_id = -1;
  double timestamp = 0.0;
};

/// \brief Append-only CTDG with time-sorted per-node adjacency.
///
/// Events must be appended in non-decreasing timestamp order (the natural
/// order of a stream); AddEvent rejects out-of-order appends so that the
/// per-node indices stay sorted by construction.
class TemporalGraph {
 public:
  explicit TemporalGraph(int64_t num_nodes);

  // Movable (the atomic query counter's value is carried over); not
  // copyable — copies of a graph store are almost always a bug. The
  // moved-from graph is left with zero nodes: a stale num_nodes_ would
  // let AddEvent pass validation and index the emptied adjacency (UB).
  TemporalGraph(TemporalGraph&& other) noexcept
      : num_nodes_(other.num_nodes_),
        events_(std::move(other.events_)),
        adjacency_(std::move(other.adjacency_)),
        latest_timestamp_(other.latest_timestamp_),
        query_count_(other.query_count_.load()) {
    other.ResetMovedFrom();
  }
  TemporalGraph& operator=(TemporalGraph&& other) noexcept {
    if (this != &other) {
      num_nodes_ = other.num_nodes_;
      events_ = std::move(other.events_);
      adjacency_ = std::move(other.adjacency_);
      latest_timestamp_ = other.latest_timestamp_;
      query_count_.store(other.query_count_.load());
      other.ResetMovedFrom();
    }
    return *this;
  }
  TemporalGraph(const TemporalGraph&) = delete;
  TemporalGraph& operator=(const TemporalGraph&) = delete;

  /// \brief Appends an interaction. Both endpoints gain the other as a
  /// temporal neighbor (interactions are undirected for propagation, as in
  /// the paper's bipartite datasets).
  /// \return InvalidArgument for bad node ids; FailedPrecondition when the
  ///         timestamp is older than the newest event already stored.
  Status AddEvent(const Event& event);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }
  const std::vector<Event>& events() const { return events_; }
  const Event& event(EdgeId idx) const;

  /// Timestamp of the newest stored event (0 when empty).
  double latest_timestamp() const { return latest_timestamp_; }

  /// \brief All neighbors of `node` that interacted strictly before
  /// `before_time`, most recent last. Counts as one graph query.
  /// The returned span indexes into an internal per-node vector; it is
  /// invalidated by AddEvent.
  /// \return empty vector for isolated/unknown nodes.
  std::vector<TemporalNeighbor> NeighborsBefore(NodeId node,
                                                double before_time) const;

  /// \brief The `k` most recent neighbors before `before_time` (paper's
  /// most-recent sampling strategy, §3.5). Counts as one graph query.
  std::vector<TemporalNeighbor> MostRecentNeighbors(NodeId node,
                                                    double before_time,
                                                    int64_t k) const;

  /// \brief `k` uniformly sampled historical neighbors before
  /// `before_time` (the GraphSAGE-style alternative). Counts as one query.
  std::vector<TemporalNeighbor> UniformNeighbors(NodeId node,
                                                 double before_time,
                                                 int64_t k, Rng* rng) const;

  /// Degree (number of stored occurrences) of a node.
  int64_t Degree(NodeId node) const;

  /// Total number of neighbor queries served since construction; used to
  /// verify which code paths touch the graph store.
  int64_t query_count() const { return query_count_.load(); }
  void ResetQueryCount() { query_count_.store(0); }

  /// Drops all events and adjacency, keeping the node count. (TemporalGraph
  /// is not assignable — the query counter is atomic — so epoch resets go
  /// through this.)
  void Reset();

  /// Bytes of event-log + adjacency payload storage (the monolithic
  /// counterpart of ShardedTemporalGraph::MemoryBytes).
  int64_t MemoryBytes() const;

 private:
  bool ValidNode(NodeId node) const {
    return node >= 0 && node < num_nodes_;
  }

  /// Leaves a moved-from graph inert: no nodes, so every AddEvent /
  /// neighbor query fails validation instead of indexing freed storage.
  void ResetMovedFrom() {
    num_nodes_ = 0;
    events_.clear();
    adjacency_.clear();
    latest_timestamp_ = 0.0;
  }

  int64_t num_nodes_;
  std::vector<Event> events_;
  // adjacency_[v] = occurrences sorted by timestamp ascending.
  std::vector<std::vector<TemporalNeighbor>> adjacency_;
  double latest_timestamp_ = 0.0;
  mutable std::atomic<int64_t> query_count_{0};
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_TEMPORAL_GRAPH_H_
