#include "graph/temporal_graph.h"

#include <algorithm>

namespace apan {
namespace graph {

TemporalGraph::TemporalGraph(int64_t num_nodes) : num_nodes_(num_nodes) {
  APAN_CHECK_MSG(num_nodes > 0, "TemporalGraph needs at least one node");
  adjacency_.resize(static_cast<size_t>(num_nodes));
}

Status TemporalGraph::AddEvent(const Event& event) {
  if (!ValidNode(event.src) || !ValidNode(event.dst)) {
    return Status::InvalidArgument(
        internal::StrCat("event endpoints out of range: ", event.src, " -> ",
                         event.dst, " (num_nodes=", num_nodes_, ")"));
  }
  if (!events_.empty() && event.timestamp < latest_timestamp_) {
    return Status::FailedPrecondition(internal::StrCat(
        "out-of-order append: ", event.timestamp, " < ", latest_timestamp_));
  }
  Event stored = event;
  if (stored.edge_id < 0) {
    stored.edge_id = static_cast<EdgeId>(events_.size());
  }
  events_.push_back(stored);
  latest_timestamp_ = stored.timestamp;
  adjacency_[static_cast<size_t>(stored.src)].push_back(
      {stored.dst, stored.edge_id, stored.timestamp});
  if (stored.dst != stored.src) {
    adjacency_[static_cast<size_t>(stored.dst)].push_back(
        {stored.src, stored.edge_id, stored.timestamp});
  }
  return Status::OK();
}

const Event& TemporalGraph::event(EdgeId idx) const {
  APAN_CHECK_MSG(idx >= 0 && static_cast<size_t>(idx) < events_.size(),
                 "event index out of range");
  return events_[static_cast<size_t>(idx)];
}

std::vector<TemporalNeighbor> TemporalGraph::NeighborsBefore(
    NodeId node, double before_time) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (!ValidNode(node)) return {};
  const auto& adj = adjacency_[static_cast<size_t>(node)];
  // Binary search for the first occurrence at or after before_time.
  const auto end = std::lower_bound(
      adj.begin(), adj.end(), before_time,
      [](const TemporalNeighbor& n, double t) { return n.timestamp < t; });
  return std::vector<TemporalNeighbor>(adj.begin(), end);
}

std::vector<TemporalNeighbor> TemporalGraph::MostRecentNeighbors(
    NodeId node, double before_time, int64_t k) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (!ValidNode(node) || k <= 0) return {};
  const auto& adj = adjacency_[static_cast<size_t>(node)];
  const auto end = std::lower_bound(
      adj.begin(), adj.end(), before_time,
      [](const TemporalNeighbor& n, double t) { return n.timestamp < t; });
  const int64_t available = static_cast<int64_t>(end - adj.begin());
  const int64_t take = std::min(k, available);
  // Return in ascending-time order, keeping the `take` most recent.
  return std::vector<TemporalNeighbor>(end - take, end);
}

std::vector<TemporalNeighbor> TemporalGraph::UniformNeighbors(
    NodeId node, double before_time, int64_t k, Rng* rng) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (!ValidNode(node) || k <= 0) return {};
  APAN_CHECK(rng != nullptr);
  const auto& adj = adjacency_[static_cast<size_t>(node)];
  const auto end = std::lower_bound(
      adj.begin(), adj.end(), before_time,
      [](const TemporalNeighbor& n, double t) { return n.timestamp < t; });
  const size_t available = static_cast<size_t>(end - adj.begin());
  if (available == 0) return {};
  if (available <= static_cast<size_t>(k)) {
    return std::vector<TemporalNeighbor>(adj.begin(), end);
  }
  auto picks =
      rng->SampleWithoutReplacement(available, static_cast<size_t>(k));
  std::sort(picks.begin(), picks.end());
  std::vector<TemporalNeighbor> out;
  out.reserve(picks.size());
  for (size_t idx : picks) out.push_back(adj[idx]);
  return out;
}

void TemporalGraph::Reset() {
  events_.clear();
  for (auto& adj : adjacency_) adj.clear();
  latest_timestamp_ = 0.0;
}

int64_t TemporalGraph::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(events_.size() * sizeof(Event));
  for (const auto& adj : adjacency_) {
    bytes += static_cast<int64_t>(adj.size() * sizeof(TemporalNeighbor));
  }
  return bytes;
}

int64_t TemporalGraph::Degree(NodeId node) const {
  if (!ValidNode(node)) return 0;
  return static_cast<int64_t>(adjacency_[static_cast<size_t>(node)].size());
}

}  // namespace graph
}  // namespace apan
