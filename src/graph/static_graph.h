// Static (time-collapsed) projection of a temporal graph, in CSR form.
//
// The static baselines (GraphSAGE, GAT, GCN encoder of GAE/VGAE, DeepWalk,
// Node2Vec) operate on this projection — exactly the simplification the
// paper's Figure 1(b) illustrates, including its loss of time-validity.

#ifndef APAN_GRAPH_STATIC_GRAPH_H_
#define APAN_GRAPH_STATIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/temporal_graph.h"

namespace apan {
namespace graph {

/// \brief Undirected CSR adjacency with deduplicated edges.
class StaticGraph {
 public:
  /// \brief Collapses all events of `graph` with timestamp < before_time
  /// into an undirected simple graph. Parallel temporal edges become one
  /// static edge whose weight is the interaction count.
  static StaticGraph FromTemporal(const TemporalGraph& graph,
                                  double before_time);

  /// Builds from explicit (src, dst) pairs (used by unit tests).
  static StaticGraph FromEdges(int64_t num_nodes,
                               const std::vector<std::pair<NodeId, NodeId>>&
                                   edges);

  int64_t num_nodes() const { return num_nodes_; }
  /// Distinct undirected edges (self-loops count once).
  int64_t num_edges() const { return num_edges_; }

  /// Neighbor ids of `node`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId node) const;
  /// Interaction multiplicities aligned with Neighbors(node).
  std::span<const float> Weights(NodeId node) const;

  int64_t Degree(NodeId node) const {
    return static_cast<int64_t>(Neighbors(node).size());
  }

  bool HasEdge(NodeId a, NodeId b) const;

 private:
  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  std::vector<int64_t> row_ptr_;  // size num_nodes_ + 1
  std::vector<NodeId> col_;
  std::vector<float> weight_;
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_STATIC_GRAPH_H_
