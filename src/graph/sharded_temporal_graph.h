// Shard-local slices of a continuous-time dynamic graph.
//
// A ShardedTemporalGraph partitions TemporalGraph state by node ownership:
// slice s holds the time-sorted adjacency rows of the nodes shard s owns,
// plus the event-log entries shard s homes (an event is homed on its
// source endpoint's owner, matching serve::ShardRouter::HomeShardOf).
// Batch append is therefore a shard-local operation — each shard appends
// only its owned rows — and the slices together store each adjacency
// occurrence exactly once, so summed slice memory is ~1x a monolithic
// TemporalGraph over the same stream (entries carry one extra ordinal).
//
// Every adjacency entry records the global ordinal of the event that
// created it, and all reads are *versioned*: NeighborsBeforeAsOf /
// MostRecentNeighborsAsOf return only entries with ordinal strictly below
// the caller's limit. A shard sampling batch b against ordinal limit
// "events before batch b" sees exactly the graph the bulk-synchronous
// epoch gate used to expose — even while other shards run ahead appending
// later batches into their own slices. The per-slice watermark (number of
// batches appended) is what a reader checks before touching a foreign
// slice; serve::ShardedEngine routes such reads to the owner shard as
// frontier-request messages instead of reading remotely.
//
// Thread contract: slice s is appended and read by one thread (its owner
// shard's worker). watermark() is an atomic published by the appender so
// other threads may poll it. The whole-graph inspectors (num_events,
// MemoryBytes, Degree, reads with kNoOrdinalLimit) are for quiescent use
// (tests, benches, post-Flush accounting).
//
// This confinement discipline is deliberately lock-free, so the clang
// thread-safety analysis (util/thread_annotations.h) has nothing to check
// here: the invariant "slice s touched only by worker s" lives in
// ShardedEngine's routing (every slice mutation happens on the owner's
// thread via its inbox) and is soaked under TSan, not proved per-access.
// docs/static-analysis.md explains the split between annotated-lock state
// and confined state.

#ifndef APAN_GRAPH_SHARDED_TEMPORAL_GRAPH_H_
#define APAN_GRAPH_SHARDED_TEMPORAL_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/node_partition.h"
#include "graph/temporal_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace apan {
namespace graph {

/// Default owner shard of a node: SplitMix64 scramble then modulo, so
/// contiguous id ranges spread across shards. This is what
/// NodePartition::BuildDefault bakes into the shared ownership index that
/// serve::ShardRouter, the graph slices and the state stores all consume
/// — the stateless fallback when no locality index has been built.
inline int NodeShardOf(NodeId node, int num_shards) {
  if (num_shards == 1) return 0;
  SplitMix64 hash(static_cast<uint64_t>(node));
  return static_cast<int>(hash.Next() % static_cast<uint64_t>(num_shards));
}

/// \brief Hash-partitioned temporal graph: per-shard adjacency slices with
/// ordinal-versioned reads and per-shard append watermarks.
class ShardedTemporalGraph {
 public:
  /// Ordinal limit meaning "everything appended so far".
  static constexpr int64_t kNoOrdinalLimit =
      std::numeric_limits<int64_t>::max();

  /// Builds its own ownership index from the canonical hash
  /// (NodePartition::BuildDefault) — for standalone use and tests.
  ShardedTemporalGraph(int num_shards, int64_t num_nodes);

  /// Shares a caller-owned ownership index. serve::ShardedEngine builds
  /// ONE NodePartition and hands it to both the graph slices and the
  /// per-shard NodeStateStores — the two planes' maps are
  /// element-identical, so the index is stored once per engine. The
  /// partition must agree with NodeShardOf when cross-plane ownership
  /// agreement matters (the engine's does: both derive from it).
  explicit ShardedTemporalGraph(
      std::shared_ptr<const NodePartition> partition);

  ShardedTemporalGraph(const ShardedTemporalGraph&) = delete;
  ShardedTemporalGraph& operator=(const ShardedTemporalGraph&) = delete;

  int num_shards() const { return num_shards_; }
  int64_t num_nodes() const { return num_nodes_; }
  int OwnerOf(NodeId node) const {
    return partition_->owner_of[static_cast<size_t>(node)];
  }

  /// \brief Appends shard `shard`'s slice of one batch: adjacency entries
  /// for the endpoints it owns and the event-log entries it homes.
  ///
  /// `batch` must be the slice's next unappended batch (== watermark) and
  /// `base_ordinal` the global index of events[0]; on success the slice's
  /// watermark advances to batch + 1. Events must be in non-decreasing
  /// timestamp order, both within the span and across batches.
  /// \return InvalidArgument for bad endpoints, FailedPrecondition for an
  ///         out-of-order batch or timestamp.
  Status AppendBatchSlice(int shard, int64_t batch,
                          std::span<const Event> events,
                          int64_t base_ordinal);

  /// \brief Resets one slice to its freshly-constructed state: adjacency
  /// rows and homed event log emptied, latest timestamp back to -inf,
  /// watermark back to 0. Thread contract as AppendBatchSlice: call only
  /// from the slice owner's thread (serve::ShardedEngine routes epoch
  /// resets through each shard's worker for exactly this reason).
  void ResetSlice(int shard);

  /// \brief One slice's full contents in checkpointable form — the
  /// public mirror of the private Slice/Entry storage, consumed by
  /// serve/snapshot.cc. Restoring this struct reproduces the slice
  /// bitwise (same rows, same ordinals, same watermark), so versioned
  /// reads after a restore see exactly the pre-crash graph.
  struct SliceCheckpoint {
    struct AdjacencyEntry {
      NodeId node = -1;
      EdgeId edge_id = -1;
      double timestamp = 0.0;
      int64_t ordinal = 0;
    };
    /// rows[local_row] = that owned node's occurrences, storage order.
    std::vector<std::vector<AdjacencyEntry>> rows;
    std::vector<Event> homed_events;
    double latest_timestamp = -std::numeric_limits<double>::infinity();
    int64_t watermark = 0;
  };

  /// Copies out slice `shard` (owner-thread contract as AppendBatchSlice).
  SliceCheckpoint ExportSlice(int shard) const;

  /// \brief Replaces slice `shard` with a decoded checkpoint. The row
  /// count must match this graph's ownership for the shard and every
  /// entry must name a valid node with sorted (timestamp, ordinal) rows;
  /// a violation returns InvalidArgument with the slice untouched. Same
  /// owner-thread contract as AppendBatchSlice/ResetSlice.
  Status RestoreSlice(int shard, const SliceCheckpoint& checkpoint);

  /// Batches appended into `shard`'s slice. Written by the slice's owner
  /// thread, readable from anywhere.
  int64_t watermark(int shard) const {
    return slices_[static_cast<size_t>(shard)]->watermark.load(
        std::memory_order_acquire);
  }

  /// \brief All neighbors of `node` with timestamp strictly before
  /// `before_time` AND creating-event ordinal strictly below
  /// `ordinal_limit`, oldest first. Reads the owner shard's slice.
  std::vector<TemporalNeighbor> NeighborsBeforeAsOf(
      NodeId node, double before_time, int64_t ordinal_limit) const;

  /// \brief The `k` most recent of NeighborsBeforeAsOf, ascending-time
  /// order (same contract as TemporalGraph::MostRecentNeighbors).
  std::vector<TemporalNeighbor> MostRecentNeighborsAsOf(
      NodeId node, double before_time, int64_t k,
      int64_t ordinal_limit) const;

  /// Stored occurrences of `node` (quiescent inspector).
  int64_t Degree(NodeId node) const;

  /// Total events across all homed slice logs (quiescent inspector; each
  /// event is homed on exactly one slice).
  int64_t num_events() const;

  /// Events homed on one slice (quiescent inspector).
  int64_t SliceEventCount(int shard) const;

  /// Bytes of one slice's adjacency + homed event log
  /// (Mailbox::MemoryBytes-style payload accounting).
  int64_t SliceMemoryBytes(int shard) const;

  /// Summed slice memory — compare against the monolithic
  /// TemporalGraph::MemoryBytes over the same stream to verify the
  /// partition stores the graph ~once, not once per shard.
  int64_t MemoryBytes() const;

 private:
  /// One adjacency occurrence plus the global ordinal of the event that
  /// created it (the version key for as-of reads).
  struct Entry {
    NodeId node = -1;
    EdgeId edge_id = -1;
    double timestamp = 0.0;
    int64_t ordinal = 0;
  };

  struct Slice {
    /// rows[local_row_[v]] = v's occurrences, ordinal- and time-sorted.
    std::vector<std::vector<Entry>> rows;
    /// Event-log entries homed on this shard, in append order.
    std::vector<Event> homed_events;
    /// -inf so the first appended event passes the monotonicity check at
    /// any timestamp, matching TemporalGraph::AddEvent's first-event rule.
    double latest_timestamp = -std::numeric_limits<double>::infinity();
    std::atomic<int64_t> watermark{0};
  };

  bool ValidNode(NodeId node) const {
    return node >= 0 && node < num_nodes_;
  }
  const std::vector<Entry>& RowOf(NodeId node) const {
    return slices_[static_cast<size_t>(OwnerOf(node))]
        ->rows[static_cast<size_t>(
            partition_->local_row[static_cast<size_t>(node)])];
  }

  int num_shards_;
  int64_t num_nodes_;
  /// Shared ownership index (owner + local row per node); possibly the
  /// same instance the engine's NodeStateStores reference.
  std::shared_ptr<const NodePartition> partition_;
  std::vector<std::unique_ptr<Slice>> slices_;
};

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_SHARDED_TEMPORAL_GRAPH_H_
