#include "graph/sharded_temporal_graph.h"

#include <algorithm>

namespace apan {
namespace graph {

ShardedTemporalGraph::ShardedTemporalGraph(int num_shards, int64_t num_nodes)
    : ShardedTemporalGraph(
          NodePartition::BuildDefault(num_nodes, num_shards)) {}

ShardedTemporalGraph::ShardedTemporalGraph(
    std::shared_ptr<const NodePartition> partition)
    : num_shards_(partition != nullptr ? partition->num_shards : 0),
      num_nodes_(partition != nullptr ? partition->num_nodes() : 0),
      partition_(std::move(partition)) {
  APAN_CHECK_MSG(partition_ != nullptr, "null NodePartition");
  APAN_CHECK_MSG(num_shards_ > 0,
                 "ShardedTemporalGraph needs at least one shard");
  APAN_CHECK_MSG(num_nodes_ > 0,
                 "ShardedTemporalGraph needs at least one node");
  slices_.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    slices_.push_back(std::make_unique<Slice>());
    slices_.back()->rows.resize(
        static_cast<size_t>(partition_->owned_count[static_cast<size_t>(s)]));
  }
}

void ShardedTemporalGraph::ResetSlice(int shard) {
  APAN_CHECK_MSG(shard >= 0 && shard < num_shards_,
                 "shard id out of range in ResetSlice");
  Slice& slice = *slices_[static_cast<size_t>(shard)];
  for (auto& row : slice.rows) row.clear();
  slice.homed_events.clear();
  slice.latest_timestamp = -std::numeric_limits<double>::infinity();
  slice.watermark.store(0, std::memory_order_release);
}

ShardedTemporalGraph::SliceCheckpoint ShardedTemporalGraph::ExportSlice(
    int shard) const {
  APAN_CHECK_MSG(shard >= 0 && shard < num_shards_,
                 "shard id out of range in ExportSlice");
  const Slice& slice = *slices_[static_cast<size_t>(shard)];
  SliceCheckpoint out;
  out.rows.resize(slice.rows.size());
  for (size_t r = 0; r < slice.rows.size(); ++r) {
    out.rows[r].reserve(slice.rows[r].size());
    for (const Entry& e : slice.rows[r]) {
      out.rows[r].push_back({e.node, e.edge_id, e.timestamp, e.ordinal});
    }
  }
  out.homed_events = slice.homed_events;
  out.latest_timestamp = slice.latest_timestamp;
  out.watermark = slice.watermark.load(std::memory_order_acquire);
  return out;
}

Status ShardedTemporalGraph::RestoreSlice(int shard,
                                          const SliceCheckpoint& checkpoint) {
  APAN_CHECK_MSG(shard >= 0 && shard < num_shards_,
                 "shard id out of range in RestoreSlice");
  Slice& slice = *slices_[static_cast<size_t>(shard)];
  if (checkpoint.rows.size() != slice.rows.size()) {
    return Status::InvalidArgument(internal::StrCat(
        "slice restore: checkpoint has ", checkpoint.rows.size(),
        " rows but shard ", shard, " owns ", slice.rows.size(), " nodes"));
  }
  if (checkpoint.watermark < 0) {
    return Status::InvalidArgument(internal::StrCat(
        "slice restore: negative watermark ", checkpoint.watermark));
  }
  // Validate everything before mutating so a rejected checkpoint leaves
  // the live slice untouched.
  for (size_t r = 0; r < checkpoint.rows.size(); ++r) {
    const auto& row = checkpoint.rows[r];
    for (size_t i = 0; i < row.size(); ++i) {
      if (!ValidNode(row[i].node)) {
        return Status::InvalidArgument(internal::StrCat(
            "slice restore: row ", r, " entry ", i, " names node ",
            row[i].node, " outside [0, ", num_nodes_, ")"));
      }
      if (i > 0 && (row[i].timestamp < row[i - 1].timestamp ||
                    row[i].ordinal < row[i - 1].ordinal)) {
        return Status::InvalidArgument(internal::StrCat(
            "slice restore: row ", r, " is not (timestamp, ordinal) sorted ",
            "at entry ", i));
      }
    }
  }
  for (const Event& event : checkpoint.homed_events) {
    if (!ValidNode(event.src) || !ValidNode(event.dst)) {
      return Status::InvalidArgument(internal::StrCat(
          "slice restore: homed event endpoints out of range: ", event.src,
          " -> ", event.dst));
    }
  }
  for (size_t r = 0; r < slice.rows.size(); ++r) {
    slice.rows[r].clear();
    slice.rows[r].reserve(checkpoint.rows[r].size());
    for (const auto& e : checkpoint.rows[r]) {
      slice.rows[r].push_back({e.node, e.edge_id, e.timestamp, e.ordinal});
    }
  }
  slice.homed_events = checkpoint.homed_events;
  slice.latest_timestamp = checkpoint.latest_timestamp;
  slice.watermark.store(checkpoint.watermark, std::memory_order_release);
  return Status::OK();
}

Status ShardedTemporalGraph::AppendBatchSlice(int shard, int64_t batch,
                                              std::span<const Event> events,
                                              int64_t base_ordinal) {
  APAN_CHECK_MSG(shard >= 0 && shard < num_shards_,
                 "shard id out of range in AppendBatchSlice");
  Slice& slice = *slices_[static_cast<size_t>(shard)];
  const int64_t expected = slice.watermark.load(std::memory_order_relaxed);
  if (batch != expected) {
    return Status::FailedPrecondition(internal::StrCat(
        "out-of-order slice append: batch ", batch, " on shard ", shard,
        " whose watermark is ", expected));
  }
  // Validate the whole span before mutating anything: a mid-batch failure
  // must not leave the earlier events' entries behind with the watermark
  // unadvanced — re-appending the fixed batch would then duplicate them.
  double latest = slice.latest_timestamp;
  for (const Event& event : events) {
    if (!ValidNode(event.src) || !ValidNode(event.dst)) {
      return Status::InvalidArgument(internal::StrCat(
          "event endpoints out of range: ", event.src, " -> ", event.dst,
          " (num_nodes=", num_nodes_, ")"));
    }
    if (event.timestamp < latest) {
      return Status::FailedPrecondition(internal::StrCat(
          "out-of-order append: ", event.timestamp, " < ", latest));
    }
    latest = event.timestamp;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    const int64_t ordinal = base_ordinal + static_cast<int64_t>(i);
    // Default edge id = global ordinal, matching TemporalGraph::AddEvent's
    // "index into the event log" default.
    const EdgeId edge_id = event.edge_id >= 0 ? event.edge_id : ordinal;
    slice.latest_timestamp = event.timestamp;
    if (OwnerOf(event.src) == shard) {
      slice.rows[static_cast<size_t>(
                     partition_->local_row[static_cast<size_t>(event.src)])]
          .push_back({event.dst, edge_id, event.timestamp, ordinal});
      // The source endpoint's owner homes the event-log entry.
      Event stored = event;
      stored.edge_id = edge_id;
      slice.homed_events.push_back(stored);
    }
    if (OwnerOf(event.dst) == shard && event.dst != event.src) {
      slice.rows[static_cast<size_t>(
                     partition_->local_row[static_cast<size_t>(event.dst)])]
          .push_back({event.src, edge_id, event.timestamp, ordinal});
    }
  }
  slice.watermark.store(batch + 1, std::memory_order_release);
  return Status::OK();
}

namespace {

/// First row index at or past the (before_time, ordinal_limit) horizon.
/// Rows are sorted by both timestamp and ordinal (stream order), so the
/// visible prefix is the min of two independent binary-searched cuts.
template <typename Entry>
size_t VisibleEnd(const std::vector<Entry>& row, double before_time,
                  int64_t ordinal_limit) {
  const auto time_end = std::lower_bound(
      row.begin(), row.end(), before_time,
      [](const Entry& e, double t) { return e.timestamp < t; });
  auto end = time_end;
  if (ordinal_limit != std::numeric_limits<int64_t>::max()) {
    const auto ordinal_end = std::lower_bound(
        row.begin(), row.end(), ordinal_limit,
        [](const Entry& e, int64_t limit) { return e.ordinal < limit; });
    end = std::min(end, ordinal_end);
  }
  return static_cast<size_t>(end - row.begin());
}

}  // namespace

std::vector<TemporalNeighbor> ShardedTemporalGraph::NeighborsBeforeAsOf(
    NodeId node, double before_time, int64_t ordinal_limit) const {
  if (!ValidNode(node)) return {};
  const auto& row = RowOf(node);
  const size_t end = VisibleEnd(row, before_time, ordinal_limit);
  std::vector<TemporalNeighbor> out;
  out.reserve(end);
  for (size_t i = 0; i < end; ++i) {
    out.push_back({row[i].node, row[i].edge_id, row[i].timestamp});
  }
  return out;
}

std::vector<TemporalNeighbor> ShardedTemporalGraph::MostRecentNeighborsAsOf(
    NodeId node, double before_time, int64_t k,
    int64_t ordinal_limit) const {
  if (!ValidNode(node) || k <= 0) return {};
  const auto& row = RowOf(node);
  const size_t end = VisibleEnd(row, before_time, ordinal_limit);
  const size_t take =
      std::min(static_cast<size_t>(k), end);
  std::vector<TemporalNeighbor> out;
  out.reserve(take);
  for (size_t i = end - take; i < end; ++i) {
    out.push_back({row[i].node, row[i].edge_id, row[i].timestamp});
  }
  return out;
}

int64_t ShardedTemporalGraph::Degree(NodeId node) const {
  if (!ValidNode(node)) return 0;
  return static_cast<int64_t>(RowOf(node).size());
}

int64_t ShardedTemporalGraph::num_events() const {
  int64_t total = 0;
  for (const auto& slice : slices_) {
    total += static_cast<int64_t>(slice->homed_events.size());
  }
  return total;
}

int64_t ShardedTemporalGraph::SliceEventCount(int shard) const {
  return static_cast<int64_t>(
      slices_[static_cast<size_t>(shard)]->homed_events.size());
}

int64_t ShardedTemporalGraph::SliceMemoryBytes(int shard) const {
  const Slice& slice = *slices_[static_cast<size_t>(shard)];
  int64_t bytes =
      static_cast<int64_t>(slice.homed_events.size() * sizeof(Event));
  for (const auto& row : slice.rows) {
    bytes += static_cast<int64_t>(row.size() * sizeof(Entry));
  }
  return bytes;
}

int64_t ShardedTemporalGraph::MemoryBytes() const {
  int64_t total = 0;
  for (int s = 0; s < num_shards_; ++s) total += SliceMemoryBytes(s);
  return total;
}

}  // namespace graph
}  // namespace apan
