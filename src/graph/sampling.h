// k-hop temporal neighborhood expansion.
//
// APAN's mail propagator delivers a mail to the k-hop most-recent-sampled
// neighborhood of the two interacting nodes (paper §3.5, N^k_ij); the
// synchronous baselines use the same machinery to build their aggregation
// trees. Sampling never looks at events at or after `before_time` — the
// "no future leakage" invariant checked by the property tests.

#ifndef APAN_GRAPH_SAMPLING_H_
#define APAN_GRAPH_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"

namespace apan {
namespace graph {

/// One sampled node occurrence in a k-hop expansion.
struct HopEntry {
  NodeId node = -1;
  EdgeId via_edge = -1;     ///< Edge that connected it to the previous hop.
  double timestamp = 0.0;   ///< Timestamp of that edge.
  int32_t hop = 0;          ///< 1 = direct neighbor of a seed, etc.
};

/// \brief Expands the most-recent-sampled neighborhood of `seeds`.
///
/// Per hop, each frontier node contributes up to `fanout` most-recent
/// neighbors with timestamps strictly before `before_time`. Duplicates are
/// preserved (a node reachable twice appears twice) — mail reduction (ρ)
/// is the deduplicating stage by design.
///
/// \return entries for hops 1..num_hops, in hop order.
std::vector<HopEntry> KHopMostRecent(const TemporalGraph& graph,
                                     const std::vector<NodeId>& seeds,
                                     double before_time, int32_t num_hops,
                                     int64_t fanout);

/// \brief Same expansion with *uniform* historical-neighbor sampling per
/// hop — the GraphSAGE-style alternative the paper compares against
/// most-recent sampling (§3.5). Deterministic given `rng`'s state.
std::vector<HopEntry> KHopUniform(const TemporalGraph& graph,
                                  const std::vector<NodeId>& seeds,
                                  double before_time, int32_t num_hops,
                                  int64_t fanout, Rng* rng);

}  // namespace graph
}  // namespace apan

#endif  // APAN_GRAPH_SAMPLING_H_
