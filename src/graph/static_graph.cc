#include "graph/static_graph.h"

#include <algorithm>
#include <map>

namespace apan {
namespace graph {

StaticGraph StaticGraph::FromTemporal(const TemporalGraph& graph,
                                      double before_time) {
  std::map<std::pair<NodeId, NodeId>, float> counts;
  for (const Event& e : graph.events()) {
    if (e.timestamp >= before_time) break;  // events are time-sorted
    const NodeId a = std::min(e.src, e.dst);
    const NodeId b = std::max(e.src, e.dst);
    counts[{a, b}] += 1.0f;
  }
  StaticGraph out;
  out.num_nodes_ = graph.num_nodes();
  out.num_edges_ = static_cast<int64_t>(counts.size());
  // Count degrees, then fill CSR.
  std::vector<int64_t> degree(static_cast<size_t>(out.num_nodes_), 0);
  for (const auto& [key, w] : counts) {
    ++degree[static_cast<size_t>(key.first)];
    if (key.second != key.first) ++degree[static_cast<size_t>(key.second)];
  }
  out.row_ptr_.assign(static_cast<size_t>(out.num_nodes_) + 1, 0);
  for (int64_t v = 0; v < out.num_nodes_; ++v) {
    out.row_ptr_[static_cast<size_t>(v) + 1] =
        out.row_ptr_[static_cast<size_t>(v)] +
        degree[static_cast<size_t>(v)];
  }
  out.col_.resize(static_cast<size_t>(out.row_ptr_.back()));
  out.weight_.resize(out.col_.size());
  std::vector<int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (const auto& [key, w] : counts) {
    const auto [a, b] = key;
    out.col_[static_cast<size_t>(cursor[static_cast<size_t>(a)])] = b;
    out.weight_[static_cast<size_t>(cursor[static_cast<size_t>(a)]++)] = w;
    if (a != b) {
      out.col_[static_cast<size_t>(cursor[static_cast<size_t>(b)])] = a;
      out.weight_[static_cast<size_t>(cursor[static_cast<size_t>(b)]++)] = w;
    }
  }
  // std::map iteration gives sorted (a, b) pairs, so each row's neighbor
  // list is already ascending.
  return out;
}

StaticGraph StaticGraph::FromEdges(
    int64_t num_nodes,
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  TemporalGraph tg(num_nodes);
  double t = 1.0;
  for (const auto& [a, b] : edges) {
    APAN_CHECK(tg.AddEvent({a, b, t, -1}).ok());
    t += 1.0;
  }
  return FromTemporal(tg, t + 1.0);
}

std::span<const NodeId> StaticGraph::Neighbors(NodeId node) const {
  if (node < 0 || node >= num_nodes_) return {};
  const auto lo = static_cast<size_t>(row_ptr_[static_cast<size_t>(node)]);
  const auto hi =
      static_cast<size_t>(row_ptr_[static_cast<size_t>(node) + 1]);
  return {col_.data() + lo, hi - lo};
}

std::span<const float> StaticGraph::Weights(NodeId node) const {
  if (node < 0 || node >= num_nodes_) return {};
  const auto lo = static_cast<size_t>(row_ptr_[static_cast<size_t>(node)]);
  const auto hi =
      static_cast<size_t>(row_ptr_[static_cast<size_t>(node) + 1]);
  return {weight_.data() + lo, hi - lo};
}

bool StaticGraph::HasEdge(NodeId a, NodeId b) const {
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

}  // namespace graph
}  // namespace apan
