#include "graph/node_partition.h"

#include <algorithm>

#include "graph/sharded_temporal_graph.h"

namespace apan {
namespace graph {

std::shared_ptr<const NodePartition> NodePartition::Build(
    int64_t num_nodes, int num_shards,
    const std::function<int(NodeId)>& owner_fn) {
  APAN_CHECK_MSG(num_nodes > 0 && num_shards > 0,
                 "NodePartition needs positive node and shard counts");
  auto partition = std::make_shared<NodePartition>();
  partition->num_shards = num_shards;
  partition->owner_of.resize(static_cast<size_t>(num_nodes));
  partition->local_row.resize(static_cast<size_t>(num_nodes));
  partition->owned_count.assign(static_cast<size_t>(num_shards), 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const int owner = owner_fn(v);
    APAN_CHECK_MSG(owner >= 0 && owner < num_shards,
                   "ownership function returned an out-of-range shard");
    partition->owner_of[static_cast<size_t>(v)] =
        static_cast<int32_t>(owner);
    partition->local_row[static_cast<size_t>(v)] = static_cast<int32_t>(
        partition->owned_count[static_cast<size_t>(owner)]++);
  }
  return partition;
}

std::shared_ptr<const NodePartition> NodePartition::BuildDefault(
    int64_t num_nodes, int num_shards) {
  return Build(num_nodes, num_shards,
               [num_shards](NodeId v) { return NodeShardOf(v, num_shards); });
}

std::shared_ptr<const NodePartition> NodePartition::BuildLocality(
    int64_t num_nodes, int num_shards, std::span<const Event> events) {
  return BuildLocality(num_nodes, num_shards, events, LocalityOptions());
}

std::shared_ptr<const NodePartition> NodePartition::BuildLocality(
    int64_t num_nodes, int num_shards, std::span<const Event> events,
    const LocalityOptions& options) {
  APAN_CHECK_MSG(num_nodes > 0 && num_shards > 0,
                 "NodePartition needs positive node and shard counts");
  APAN_CHECK_MSG(options.balance_factor >= 1.0,
                 "balance_factor below 1.0 cannot hold every node");
  // cap >= ceil(n/shards) guarantees total capacity >= n, so a shard with
  // headroom always exists and the fill loop below cannot fail.
  const int64_t fair =
      (num_nodes + num_shards - 1) / static_cast<int64_t>(num_shards);
  const int64_t cap = std::max(
      fair, static_cast<int64_t>(options.balance_factor *
                                 static_cast<double>(num_nodes) /
                                 static_cast<double>(num_shards)));

  std::vector<int32_t> owner(static_cast<size_t>(num_nodes), -1);
  std::vector<int64_t> load(static_cast<size_t>(num_shards), 0);
  auto least_loaded = [&]() {
    int best = -1;
    for (int s = 0; s < num_shards; ++s) {
      if (load[static_cast<size_t>(s)] >= cap) continue;
      if (best < 0 ||
          load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
        best = s;  // lowest shard id wins ties — deterministic
      }
    }
    APAN_CHECK_MSG(best >= 0, "no shard below cap (capacity invariant)");
    return best;
  };
  auto assign = [&](NodeId v, int shard) {
    owner[static_cast<size_t>(v)] = static_cast<int32_t>(shard);
    ++load[static_cast<size_t>(shard)];
  };

  for (const Event& e : events) {
    APAN_CHECK_MSG(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                       e.dst < num_nodes,
                   "event endpoint out of range in BuildLocality");
    // First interaction pins a node; later events never move it (greedy,
    // one streaming pass). Co-locate with an already-placed partner when
    // its shard has headroom.
    if (owner[static_cast<size_t>(e.src)] < 0) {
      const int32_t partner = owner[static_cast<size_t>(e.dst)];
      if (partner >= 0 && load[static_cast<size_t>(partner)] < cap) {
        assign(e.src, partner);
      } else {
        assign(e.src, least_loaded());
      }
    }
    if (owner[static_cast<size_t>(e.dst)] < 0) {
      const int32_t partner = owner[static_cast<size_t>(e.src)];
      if (load[static_cast<size_t>(partner)] < cap) {
        assign(e.dst, partner);
      } else {
        assign(e.dst, least_loaded());
      }
    }
  }
  // Nodes the warmup stream never touched: spread for balance (ascending
  // id order keeps the result a pure function of the inputs).
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (owner[static_cast<size_t>(v)] < 0) assign(v, least_loaded());
  }
  return Build(num_nodes, num_shards, [&owner](NodeId v) {
    return static_cast<int>(owner[static_cast<size_t>(v)]);
  });
}

}  // namespace graph
}  // namespace apan
