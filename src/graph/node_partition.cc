#include "graph/node_partition.h"

#include "graph/sharded_temporal_graph.h"

namespace apan {
namespace graph {

std::shared_ptr<const NodePartition> NodePartition::Build(
    int64_t num_nodes, int num_shards,
    const std::function<int(NodeId)>& owner_fn) {
  APAN_CHECK_MSG(num_nodes > 0 && num_shards > 0,
                 "NodePartition needs positive node and shard counts");
  auto partition = std::make_shared<NodePartition>();
  partition->num_shards = num_shards;
  partition->owner_of.resize(static_cast<size_t>(num_nodes));
  partition->local_row.resize(static_cast<size_t>(num_nodes));
  partition->owned_count.assign(static_cast<size_t>(num_shards), 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const int owner = owner_fn(v);
    APAN_CHECK_MSG(owner >= 0 && owner < num_shards,
                   "ownership function returned an out-of-range shard");
    partition->owner_of[static_cast<size_t>(v)] =
        static_cast<int32_t>(owner);
    partition->local_row[static_cast<size_t>(v)] = static_cast<int32_t>(
        partition->owned_count[static_cast<size_t>(owner)]++);
  }
  return partition;
}

std::shared_ptr<const NodePartition> NodePartition::BuildDefault(
    int64_t num_nodes, int num_shards) {
  return Build(num_nodes, num_shards,
               [num_shards](NodeId v) { return NodeShardOf(v, num_shards); });
}

}  // namespace graph
}  // namespace apan
