#include "serve/shard_router.h"

#include <utility>

namespace apan {
namespace serve {

ShardRouter::ShardRouter(int num_shards, int64_t num_nodes)
    : partition_(graph::NodePartition::BuildDefault(num_nodes, num_shards)) {
  APAN_CHECK_MSG(num_shards > 0, "ShardRouter needs at least one shard");
  APAN_CHECK_MSG(num_nodes > 0, "ShardRouter needs a positive node count");
}

ShardRouter::ShardRouter(
    std::shared_ptr<const graph::NodePartition> partition)
    : partition_(std::move(partition)) {
  APAN_CHECK_MSG(partition_ != nullptr, "ShardRouter needs a partition");
  APAN_CHECK_MSG(partition_->num_shards > 0 && partition_->num_nodes() > 0,
                 "ShardRouter needs a non-empty partition");
}

int ShardRouter::ShardOf(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < partition_->num_nodes(),
                 "node id out of range in ShardOf");
  // Reads the shared ownership index so mailbox/memory shards and
  // graph::ShardedTemporalGraph slices agree on every node's owner.
  return partition_->owner_of[static_cast<size_t>(node)];
}

std::vector<std::vector<graph::NodeId>> ShardRouter::PartitionNodes(
    std::span<const graph::NodeId> nodes) const {
  std::vector<std::vector<graph::NodeId>> out(
      static_cast<size_t>(num_shards()));
  for (const graph::NodeId node : nodes) {
    out[static_cast<size_t>(ShardOf(node))].push_back(node);
  }
  return out;
}

std::vector<std::vector<int64_t>> ShardRouter::PartitionEvents(
    std::span<const graph::Event> events) const {
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(num_shards()));
  for (size_t i = 0; i < events.size(); ++i) {
    out[static_cast<size_t>(HomeShardOf(events[i]))].push_back(
        static_cast<int64_t>(i));
  }
  return out;
}

std::vector<int64_t> ShardRouter::OwnedNodeCounts() const {
  return partition_->owned_count;
}

}  // namespace serve
}  // namespace apan
