#include "serve/shard_router.h"

#include "graph/sharded_temporal_graph.h"

namespace apan {
namespace serve {

ShardRouter::ShardRouter(int num_shards, int64_t num_nodes)
    : num_shards_(num_shards), num_nodes_(num_nodes) {
  APAN_CHECK_MSG(num_shards > 0, "ShardRouter needs at least one shard");
  APAN_CHECK_MSG(num_nodes > 0, "ShardRouter needs a positive node count");
}

int ShardRouter::ShardOf(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                 "node id out of range in ShardOf");
  // Delegates to the shared ownership hash so mailbox/memory shards and
  // graph::ShardedTemporalGraph slices agree on every node's owner.
  return graph::NodeShardOf(node, num_shards_);
}

std::vector<std::vector<graph::NodeId>> ShardRouter::PartitionNodes(
    std::span<const graph::NodeId> nodes) const {
  std::vector<std::vector<graph::NodeId>> out(
      static_cast<size_t>(num_shards_));
  for (const graph::NodeId node : nodes) {
    out[static_cast<size_t>(ShardOf(node))].push_back(node);
  }
  return out;
}

std::vector<std::vector<int64_t>> ShardRouter::PartitionEvents(
    std::span<const graph::Event> events) const {
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(num_shards_));
  for (size_t i = 0; i < events.size(); ++i) {
    out[static_cast<size_t>(HomeShardOf(events[i]))].push_back(
        static_cast<int64_t>(i));
  }
  return out;
}

std::vector<int64_t> ShardRouter::OwnedNodeCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(num_shards_), 0);
  for (graph::NodeId v = 0; v < num_nodes_; ++v) {
    ++counts[static_cast<size_t>(ShardOf(v))];
  }
  return counts;
}

}  // namespace serve
}  // namespace apan
