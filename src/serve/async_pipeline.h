// The asynchronous serving pipeline — the system architecture of the
// paper's Figure 2(b).
//
// The synchronous link (InferBatch) runs encoder + decoder over local
// state and returns scores immediately; the completed interactions are
// enqueued and a background worker runs the asynchronous link (state
// write-back, k-hop mail propagation, graph append). The pipeline records
// per-stage latency so bench/fig6_inference_latency can report the
// synchronous-path latency the paper measures ("we only calculate the time
// from the interaction occurring to the model inference, not including the
// time on APAN's asynchronous link").
//
// Optional out-of-order injection (delay_fraction) holds back a fraction
// of mail deliveries by one batch, emulating a distributed streaming
// system that reorders messages; the mailbox's time-sorted slot order
// (maintained at write) absorbs it (paper §3.6).

#ifndef APAN_SERVE_ASYNC_PIPELINE_H_
#define APAN_SERVE_ASYNC_PIPELINE_H_

#include <memory>
#include <thread>
#include <vector>

#include "core/apan_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace apan {
namespace serve {

/// \brief Runs one ApanModel behind a synchronous-inference /
/// asynchronous-propagation split.
class AsyncPipeline {
 public:
  struct Options {
    size_t queue_capacity = 256;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Fraction of mail deliveries deferred to the next worker cycle
    /// (out-of-order injection; 0 = perfectly ordered).
    double delay_fraction = 0.0;
    uint64_t delay_seed = 17;
    /// Metrics land here; null means the pipeline owns a private
    /// registry (reachable via registry()).
    obs::Registry* registry = nullptr;
  };

  /// `model` must outlive the pipeline and must not be used concurrently
  /// by other threads while the pipeline is running.
  AsyncPipeline(core::ApanModel* model, Options options);
  ~AsyncPipeline();

  AsyncPipeline(const AsyncPipeline&) = delete;
  AsyncPipeline& operator=(const AsyncPipeline&) = delete;

  struct InferenceResult {
    /// P(edge) per event, from the link decoder.
    std::vector<float> scores;
    /// Wall-clock milliseconds of the synchronous path for this batch.
    double sync_millis = 0.0;
  };

  /// \brief Scores a batch of incoming interactions on the synchronous
  /// link and enqueues the asynchronous work. Events must arrive in
  /// non-decreasing time order across calls.
  /// \return Cancelled after Shutdown.
  Result<InferenceResult> InferBatch(const std::vector<graph::Event>& events)
      APAN_EXCLUDES(pending_mu_, model_mu_);

  /// Blocks until every enqueued batch has been fully propagated.
  void Flush() APAN_EXCLUDES(pending_mu_, model_mu_);

  /// Stops the worker (idempotent; also called by the destructor). The
  /// backlog is drained and any mail held back by the out-of-order
  /// injector is delivered before the pipeline goes quiet — Shutdown
  /// never loses accepted mail (only an overflow drop policy can, which
  /// mails_dropped() accounts for).
  void Shutdown() APAN_EXCLUDES(pending_mu_, model_mu_);

  /// Latency of the synchronous path per batch (what the user waits for).
  const obs::Histogram& sync_latency() const { return *sync_latency_; }
  /// Latency of the asynchronous propagation per batch.
  const obs::Histogram& async_latency() const { return *async_latency_; }
  /// The registry this pipeline's metrics live in (Options::registry, or
  /// the pipeline-owned default).
  obs::Registry* registry() const { return registry_; }
  /// Batches fully processed by the worker.
  int64_t batches_propagated() const APAN_EXCLUDES(pending_mu_);
  /// Interaction records whose asynchronous work was lost to an overflow
  /// drop policy (their mail was never propagated). Always 0 under
  /// OverflowPolicy::kBlock.
  int64_t mails_dropped() const APAN_EXCLUDES(pending_mu_);

 private:
  struct Job {
    std::vector<core::InteractionRecord> records;
  };

  void WorkerLoop() APAN_EXCLUDES(pending_mu_, model_mu_);

  // Pending-job accounting for Flush(). Lock order: pending_mu_ before
  // model_mu_ (Flush holds pending_mu_ across the wait, then takes
  // model_mu_ for the held-back delivery); nothing acquires them in the
  // other order.
  mutable util::Mutex pending_mu_;
  // Serializes model access between the inference thread and the worker,
  // and guards the out-of-order injector state that only moves while the
  // model is held.
  util::Mutex model_mu_ APAN_ACQUIRED_AFTER(pending_mu_);

  core::ApanModel* model_ APAN_PT_GUARDED_BY(model_mu_);
  Options options_;
  Rng delay_rng_ APAN_GUARDED_BY(model_mu_);
  BoundedQueue<Job> queue_;
  std::thread worker_;
  util::CondVar pending_cv_;
  int64_t pending_ APAN_GUARDED_BY(pending_mu_) = 0;
  int64_t propagated_batches_ APAN_GUARDED_BY(pending_mu_) = 0;
  int64_t mails_dropped_ APAN_GUARDED_BY(pending_mu_) = 0;
  bool shutdown_ APAN_GUARDED_BY(pending_mu_) = false;
  // Deliveries deferred by the out-of-order injector.
  std::vector<core::MailDelivery> held_back_ APAN_GUARDED_BY(model_mu_);
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  obs::Histogram* sync_latency_ = nullptr;   ///< "stage.sync"
  obs::Histogram* async_latency_ = nullptr;  ///< "stage.async"
};

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_ASYNC_PIPELINE_H_
