#include "serve/transport.h"

#include <algorithm>
#include <utility>

#include "serve/wire.h"

#if defined(__unix__) || defined(__APPLE__)
#define APAN_HAVE_AF_UNIX 1
#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>
#else
#define APAN_HAVE_AF_UNIX 0
#endif

namespace apan {
namespace serve {

// ---- InProcessTransport ----------------------------------------------------

Status InProcessTransport::Start(int num_shards, Handler handler) {
  if (started_) return Status::FailedPrecondition("transport already started");
  if (num_shards <= 0 || handler == nullptr) {
    return Status::InvalidArgument("Start needs shards > 0 and a handler");
  }
  num_shards_ = num_shards;
  handler_ = std::move(handler);
  started_ = true;
  return Status::OK();
}

Status InProcessTransport::Send(int from_shard, int to_shard,
                                ShardMessage message) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("transport is not running");
  }
  if (from_shard < 0 || from_shard >= num_shards_ || to_shard < 0 ||
      to_shard >= num_shards_) {
    return Status::InvalidArgument("shard id out of range");
  }
  if (metrics_.valid()) {
    metrics_.frames->Add(metrics_.lane(from_shard, to_shard), 1);
  }
  handler_(to_shard, std::move(message));
  return Status::OK();
}

// ---- UnixSocketTransport ---------------------------------------------------

bool UnixSocketTransport::Available() { return APAN_HAVE_AF_UNIX != 0; }

#if APAN_HAVE_AF_UNIX

namespace {

// A dead peer must surface as a Status on the writer's thread, not as a
// process-wide SIGPIPE: pass MSG_NOSIGNAL where the platform has it, and
// fall back to marking the socket itself on ones that spell it
// SO_NOSIGPIPE (macOS). One of the two exists everywhere AF_UNIX does.
ssize_t SendSome(int fd, const uint8_t* data, size_t size) {
#if defined(MSG_NOSIGNAL)
  return ::send(fd, data, size, MSG_NOSIGNAL);
#else
  return ::write(fd, data, size);
#endif
}

void SuppressSigpipe(int fd) {
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  static_cast<void>(fd);
#endif
}

// Reconnect policy: a handful of attempts with capped exponential
// backoff. The numbers are deliberately small — the lanes are local
// sockets, so either the rebuild succeeds immediately or the failure is
// structural and waiting longer cannot help.
constexpr int kMaxWriteAttempts = 5;
constexpr int64_t kBackoffBaseMicros = 200;
constexpr int64_t kBackoffCapMicros = 5000;

}  // namespace

UnixSocketTransport::~UnixSocketTransport() { Stop(); }

Status UnixSocketTransport::Start(int num_shards, Handler handler) {
  if (started_) return Status::FailedPrecondition("transport already started");
  if (num_shards <= 0 || handler == nullptr) {
    return Status::InvalidArgument("Start needs shards > 0 and a handler");
  }
  num_shards_ = num_shards;
  handler_ = std::move(handler);
  const size_t lane_count =
      static_cast<size_t>(num_shards) * static_cast<size_t>(num_shards);
  lanes_.reserve(lane_count);
  for (size_t i = 0; i < lane_count; ++i) {
    auto lane = std::make_unique<Lane>();
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      const int err = errno;
      for (auto& open_lane : lanes_) {
        // No reader threads exist yet, but write_fd's lock discipline is
        // declared unconditionally — take the (uncontended) lock.
        util::MutexLock lock(open_lane->write_mu);
        ::close(open_lane->write_fd);
        ::close(open_lane->read_fd);
      }
      lanes_.clear();
      return Status::IoError(
          internal::StrCat("socketpair failed: errno ", err));
    }
    SuppressSigpipe(fds[0]);
    {
      util::MutexLock lock(lane->write_mu);
      lane->write_fd = fds[0];
    }
    lane->read_fd = fds[1];
    lanes_.push_back(std::move(lane));
  }
  for (int from = 0; from < num_shards; ++from) {
    for (int to = 0; to < num_shards; ++to) {
      Lane* lane = &LaneFor(from, to);
      lane->reader = std::thread([this, lane, to] { ReaderLoop(lane, to); });
    }
  }
  started_ = true;
  return Status::OK();
}

void UnixSocketTransport::ReaderLoop(Lane* lane, int to_shard) {
  // 1 = got n bytes, 0 = clean EOF before the first byte, -1 = error or
  // EOF mid-read.
  const auto read_exact = [lane](uint8_t* buf, size_t n) -> int {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(lane->read_fd, buf + got, n - got);
      if (r == 0) return got == 0 ? 0 : -1;
      if (r < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      got += static_cast<size_t>(r);
    }
    return 1;
  };

  std::vector<uint8_t> payload;
  while (true) {
    uint8_t header[wire::kFrameHeaderBytes];
    const int header_read = read_exact(header, sizeof(header));
    if (header_read == 0) return;  // write side closed at a frame boundary
    // A mid-frame EOF or read error is a dead lane (peer death, or a
    // reconnect tearing this socket down), not a protocol bug: exit so
    // the lane can be rebuilt, instead of taking the process with it.
    // The truncated frame is discarded — its writer saw the failure as a
    // Status and re-sends the whole frame on the rebuilt lane.
    if (header_read != 1) return;
    Result<uint32_t> length =
        wire::DecodeFrameLength(std::span<const uint8_t, 4>(header));
    APAN_CHECK_MSG(length.ok(), length.status().ToString());
    payload.resize(*length);
    if (read_exact(payload.data(), payload.size()) != 1) return;
    // A frame is one message or a coalesced batch; either way it fans out
    // into per-message handler calls, so receivers never see batching.
    Result<std::vector<ShardMessage>> messages =
        wire::DecodeMessages(payload);
    APAN_CHECK_MSG(messages.ok(), messages.status().ToString());
    for (ShardMessage& message : *messages) {
      handler_(to_shard, std::move(message));
    }
  }
}

Status UnixSocketTransport::ReconnectLaneLocked(Lane& lane, int to_shard) {
  if (lane.write_fd >= 0) {
    ::close(lane.write_fd);
    lane.write_fd = -1;
  }
  // Kick the reader off the dead socket (it may be blocked in read) and
  // join it before touching read_fd: the join is what hands the fd's
  // confinement back to this thread.
  ::shutdown(lane.read_fd, SHUT_RDWR);
  if (lane.reader.joinable()) lane.reader.join();
  ::close(lane.read_fd);
  lane.read_fd = -1;
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(internal::StrCat(
        "lane reconnect: socketpair failed: errno ", errno));
  }
  SuppressSigpipe(fds[0]);
  lane.write_fd = fds[0];
  lane.read_fd = fds[1];
  Lane* lane_ptr = &lane;
  lane.reader =
      std::thread([this, lane_ptr, to_shard] { ReaderLoop(lane_ptr, to_shard); });
  return Status::OK();
}

Status UnixSocketTransport::WriteFrame(int from_shard, int to_shard,
                                       const std::vector<uint8_t>& frame,
                                       int64_t message_count) {
  Lane& lane = LaneFor(from_shard, to_shard);
  util::MutexLock lock(lane.write_mu);
  if (lane.write_fd < 0) {
    return Status::FailedPrecondition("transport is stopped");
  }
  Status last_error;
  int64_t write_calls = 0;
  for (int attempt = 0; attempt < kMaxWriteAttempts; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff, then rebuild the lane and retry the
      // whole frame. Holding write_mu through the sleep is intentional:
      // every other writer to this lane would fail the same way.
      const int64_t backoff = std::min(
          kBackoffBaseMicros << (attempt - 1), kBackoffCapMicros);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      const Status reconnected = ReconnectLaneLocked(lane, to_shard);
      if (!reconnected.ok()) {
        last_error = reconnected;
        continue;
      }
      if (metrics_.valid() && metrics_.lane_reconnects != nullptr) {
        metrics_.lane_reconnects->Add(metrics_.lane(from_shard, to_shard), 1);
      }
    }
    size_t sent = 0;
    bool failed = false;
    while (sent < frame.size()) {
      const ssize_t w =
          SendSome(lane.write_fd, frame.data() + sent, frame.size() - sent);
      ++write_calls;
      if (w < 0) {
        if (errno == EINTR) continue;
        // Peer death (EPIPE/ECONNRESET) or any other refusal: a partial
        // frame may be stranded in the old socket, but its reader dies
        // with it mid-frame and discards it, so retrying the whole frame
        // on a rebuilt lane never duplicates a delivery.
        last_error = Status::IoError(
            internal::StrCat("uds lane write failed: errno ", errno));
        failed = true;
        break;
      }
      sent += static_cast<size_t>(w);
    }
    if (!failed) {
      if (metrics_.valid()) {
        const int cell = metrics_.lane(from_shard, to_shard);
        metrics_.frames->Add(cell, message_count);
        metrics_.bytes->Add(cell, static_cast<int64_t>(frame.size()));
        metrics_.syscalls->Add(cell, write_calls);
      }
      return Status::OK();
    }
  }
  if (metrics_.valid() && metrics_.send_failures != nullptr) {
    metrics_.send_failures->Add(metrics_.lane(from_shard, to_shard), 1);
  }
  return last_error;
}

Status UnixSocketTransport::Send(int from_shard, int to_shard,
                                 ShardMessage message) {
  if (!started_) return Status::FailedPrecondition("transport not started");
  if (from_shard < 0 || from_shard >= num_shards_ || to_shard < 0 ||
      to_shard >= num_shards_) {
    return Status::InvalidArgument("shard id out of range");
  }
  std::vector<uint8_t> frame;
  wire::AppendFrame(message, &frame);
  return WriteFrame(from_shard, to_shard, frame, /*message_count=*/1);
}

Status UnixSocketTransport::SendBatch(int from_shard, int to_shard,
                                      std::vector<ShardMessage> messages) {
  if (messages.empty()) return Status::OK();
  if (!started_) return Status::FailedPrecondition("transport not started");
  if (from_shard < 0 || from_shard >= num_shards_ || to_shard < 0 ||
      to_shard >= num_shards_) {
    return Status::InvalidArgument("shard id out of range");
  }
  // The whole per-peer batch travels as ONE frame through one write loop
  // — per-peer syscalls per batch collapse from messages.size() to ~1.
  std::vector<uint8_t> frame;
  wire::AppendBatchFrame(messages, &frame);
  return WriteFrame(from_shard, to_shard, frame,
                    static_cast<int64_t>(messages.size()));
}

void UnixSocketTransport::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Closing the write side delivers EOF to the reader *after* every byte
  // already written — a stream socket never drops queued data on a
  // SHUT_WR-style close — so readers drain all accepted frames, then exit.
  for (auto& lane : lanes_) {
    util::MutexLock lock(lane->write_mu);
    ::close(lane->write_fd);
    lane->write_fd = -1;
  }
  for (auto& lane : lanes_) {
    if (lane->reader.joinable()) lane->reader.join();
  }
  for (auto& lane : lanes_) {
    ::close(lane->read_fd);
    lane->read_fd = -1;
  }
}

Status UnixSocketTransport::KillLaneForTest(int from_shard, int to_shard) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("transport is not running");
  }
  if (from_shard < 0 || from_shard >= num_shards_ || to_shard < 0 ||
      to_shard >= num_shards_) {
    return Status::InvalidArgument("shard id out of range");
  }
  Lane& lane = LaneFor(from_shard, to_shard);
  util::MutexLock lock(lane.write_mu);
  if (lane.write_fd < 0) {
    return Status::FailedPrecondition("lane already torn down");
  }
  // Receive-side shutdown is what a peer process death looks like from
  // this end: the reader sees EOF and exits, anything queued but unread
  // is gone, and the next write on the lane comes back EPIPE.
  ::shutdown(lane.read_fd, SHUT_RDWR);
  return Status::OK();
}

#else  // !APAN_HAVE_AF_UNIX

UnixSocketTransport::~UnixSocketTransport() = default;

Status UnixSocketTransport::Start(int, Handler) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

Status UnixSocketTransport::Send(int, int, ShardMessage) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

Status UnixSocketTransport::SendBatch(int, int, std::vector<ShardMessage>) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

Status UnixSocketTransport::WriteFrame(int, int, const std::vector<uint8_t>&,
                                       int64_t) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

Status UnixSocketTransport::ReconnectLaneLocked(Lane&, int) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

Status UnixSocketTransport::KillLaneForTest(int, int) {
  return Status::NotImplemented("AF_UNIX is unavailable on this platform");
}

void UnixSocketTransport::Stop() {}

#endif  // APAN_HAVE_AF_UNIX

// ---- FaultyTransport -------------------------------------------------------

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 Options options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  APAN_CHECK(inner_ != nullptr);
}

FaultyTransport::~FaultyTransport() { Stop(); }

Status FaultyTransport::Start(int num_shards, Handler handler) {
  if (started_) return Status::FailedPrecondition("transport already started");
  APAN_RETURN_NOT_OK(inner_->Start(num_shards, std::move(handler)));
  flusher_ = std::thread([this] { FlusherLoop(); });
  started_ = true;
  return Status::OK();
}

Status FaultyTransport::Send(int from_shard, int to_shard,
                             ShardMessage message) {
  if (!started_) return Status::FailedPrecondition("transport not started");
  std::vector<ShardMessage> inline_sends;
  {
    util::MutexLock lock(mu_);
    if (stop_) return Status::FailedPrecondition("transport is stopped");
    const int copies = rng_.Bernoulli(options_.duplicate_probability) ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ShardMessage copy = (c + 1 == copies) ? std::move(message) : message;
      if (rng_.Bernoulli(options_.delay_probability)) {
        const auto delay = std::chrono::microseconds(rng_.UniformInt(
            int64_t{0}, std::max<int64_t>(options_.max_delay_micros, 0)));
        held_.push_back({std::chrono::steady_clock::now() + delay, from_shard,
                         to_shard, std::move(copy)});
      } else {
        inline_sends.push_back(std::move(copy));
      }
    }
  }
  for (ShardMessage& m : inline_sends) {
    APAN_RETURN_NOT_OK(inner_->Send(from_shard, to_shard, std::move(m)));
  }
  return Status::OK();
}

Status FaultyTransport::FlushDue(bool drain) {
  std::vector<Held> due;
  {
    util::MutexLock lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    auto keep = held_.begin();
    for (auto it = held_.begin(); it != held_.end(); ++it) {
      if (drain || it->release <= now) {
        due.push_back(std::move(*it));
      } else {
        // Guard against self-move: moving an element onto itself empties
        // the vectors inside the message while keeping its tags, which
        // would silently deliver a hollowed frame.
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    held_.erase(keep, held_.end());
    // Shuffled release on top of random hold times: two messages held on
    // the same lane can come back in either order.
    rng_.Shuffle(&due);
  }
  for (Held& h : due) {
    APAN_RETURN_NOT_OK(
        inner_->Send(h.from_shard, h.to_shard, std::move(h.message)));
  }
  return Status::OK();
}

void FaultyTransport::FlusherLoop() {
  const auto period = std::chrono::microseconds(
      std::max<int64_t>(options_.flush_period_micros, 1));
  while (true) {
    {
      util::MutexLock lock(mu_);
      // A spurious wake just flushes one period early — the period is a
      // polling cadence, not a correctness deadline — so one timed wait
      // (no predicate loop) is enough here.
      if (!stop_) cv_.WaitFor(mu_, period);
      if (stop_) return;
    }
    const Status flushed = FlushDue(/*drain=*/false);
    APAN_CHECK_MSG(flushed.ok(), flushed.ToString());
  }
}

void FaultyTransport::Stop() {
  if (!flusher_.joinable()) return;
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  flusher_.join();
  // Faults degrade ordering and multiplicity, never delivery: everything
  // still held goes out before the inner transport is allowed to drain.
  const Status drained = FlushDue(/*drain=*/true);
  APAN_CHECK_MSG(drained.ok(), drained.ToString());
  inner_->Stop();
}

// ---- Factories -------------------------------------------------------------

Result<TransportKind> ParseTransportKind(std::string_view name) {
  if (name == "inproc") return TransportKind::kInProcess;
  if (name == "uds") return TransportKind::kUnixSocket;
  return Status::InvalidArgument(internal::StrCat(
      "unknown transport \"", std::string(name), "\" (inproc|uds)"));
}

TransportFactory MakeTransportFactory(TransportKind kind) {
  switch (kind) {
    case TransportKind::kUnixSocket:
      return [] { return std::make_unique<UnixSocketTransport>(); };
    case TransportKind::kInProcess:
    default:
      return [] { return std::make_unique<InProcessTransport>(); };
  }
}

}  // namespace serve
}  // namespace apan
