// Binary wire format for ShardMessage — the serialization boundary of the
// transport plane (docs/serving.md, "Transport plane").
//
// A message travels as a length-prefixed frame:
//
//   frame   := u32 payload_length | payload
//   payload := u8 kind | body
//
// Same-destination messages can coalesce into ONE frame (the per-peer
// batching that turns N syscalls per peer per batch into one on a stream
// transport): kind 4 is a batch payload whose body is a count followed by
// length-prefixed single-message payloads —
//
//   batch_payload := u8 4 | u64 count | count × (u32 len | payload)
//
// Batches never nest: an inner payload must carry a single-message kind.
//
// All integers are little-endian fixed-width; floating-point values are
// bit-cast to the same-width integer, so a round trip is bitwise exact for
// every representable value (negative zero, NaN payloads, ±inf). Vectors
// are a u64 count followed by the elements.
//
// Decoding is defensive: every read is bounds-checked, vector counts are
// validated against the bytes actually remaining before any allocation,
// and a payload with trailing bytes is rejected — a truncated or corrupt
// frame yields a non-OK Status, never UB. Encoders and decoders are pure
// functions with no shared state; they are safe to call from any thread.

#ifndef APAN_SERVE_WIRE_H_
#define APAN_SERVE_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "serve/shard_message.h"
#include "util/status.h"

namespace apan {
namespace serve {
namespace wire {

/// Bytes of the frame length prefix (u32 little-endian).
inline constexpr size_t kFrameHeaderBytes = 4;

/// Upper bound on a frame payload. Far above any real batch (a 200-event
/// batch's largest partial is a few hundred KiB); its job is to make a
/// corrupt length prefix fail fast instead of driving a giant allocation.
inline constexpr uint32_t kMaxPayloadBytes = 256u * 1024u * 1024u;

/// \brief Serializes one message into its payload form (kind byte + body,
/// no length prefix).
std::vector<uint8_t> EncodeMessage(const ShardMessage& message);

/// \brief Parses a payload produced by EncodeMessage. Rejects unknown
/// kinds, truncation anywhere, oversized vector counts, and trailing
/// bytes.
Result<ShardMessage> DecodeMessage(std::span<const uint8_t> payload);

/// \brief Appends a full frame (length prefix + payload) for `message` to
/// `out` — the unit a stream transport writes.
void AppendFrame(const ShardMessage& message, std::vector<uint8_t>* out);

/// \brief Appends ONE frame coalescing all of `messages` (kind-4 batch
/// payload; must be non-empty). A one-element span degenerates to
/// AppendFrame, so the uncoalesced fast path stays byte-identical.
void AppendBatchFrame(std::span<const ShardMessage> messages,
                      std::vector<uint8_t>* out);

/// \brief Parses a frame payload that is either a single message (kinds
/// 1–3 — returns a one-element vector) or a kind-4 batch. Rejects nested
/// batches, empty batches, and every single-message corruption mode
/// (truncation, bad counts, trailing bytes — inside each element and
/// around the batch envelope).
Result<std::vector<ShardMessage>> DecodeMessages(
    std::span<const uint8_t> payload);

/// \brief Reads the payload length from a frame header. Rejects zero (a
/// payload always holds at least the kind byte) and lengths above
/// kMaxPayloadBytes.
Result<uint32_t> DecodeFrameLength(
    std::span<const uint8_t, kFrameHeaderBytes> header);

}  // namespace wire
}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_WIRE_H_
