// Shard checkpoint format — the recovery plane's serialization boundary
// (docs/serving.md, "Recovery plane").
//
// A snapshot captures everything one shard of a serve::ShardedEngine
// cannot recompute from weights: its NodeStateStore (mailbox payload +
// timestamps + ring bookkeeping + the sorted slot permutation + z(t−)
// rows), its ShardedTemporalGraph slice (adjacency rows with ordinals,
// homed event log, append watermark), and the replay/dedup state the
// at-least-once transport contract depends on (merge cursor, per-peer
// frontier watermarks, engine batch/ordinal numbering). Restoring a
// snapshot reproduces the shard bitwise, so replaying the event tail from
// the snapshot's batch watermark yields a mailbox identical to a run that
// never crashed.
//
// The file layout is
//
//   file    := u32 magic "APSN" | u32 version | u64 payload_length
//              | payload | u32 crc32(payload)
//
// with every integer little-endian fixed-width and floating-point values
// bit-cast to same-width integers (bitwise round trips, like serve/wire.h
// — including negative zero, NaN payloads and ±inf, all of which occur in
// live mailbox state). Decoding follows wire.h's defensive discipline:
// every read is bounds-checked, vector counts are validated against the
// bytes remaining before any allocation, geometry products are checked
// for overflow, the CRC is verified before the payload is parsed, and
// trailing bytes are rejected. A truncated or corrupt snapshot yields a
// non-OK Status, never UB.
//
// Writes are crash-atomic: the file is assembled at `<path>.tmp`, fsynced,
// renamed over `path`, and the directory is fsynced — a crash mid-write
// leaves either the old snapshot or the new one, never a torn file.

#ifndef APAN_SERVE_SNAPSHOT_H_
#define APAN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/sharded_temporal_graph.h"
#include "util/status.h"

namespace apan {
namespace serve {
namespace snapshot {

/// "APSN" read as a little-endian u32.
inline constexpr uint32_t kMagic = 0x4e535041u;

/// Current format version. Bump on any layout change; decoding rejects
/// every other version (forward and backward) with InvalidArgument.
inline constexpr uint32_t kVersion = 1;

/// Bytes before the payload (magic + version + payload length).
inline constexpr size_t kHeaderBytes = 16;

/// Bytes after the payload (the CRC32 trailer).
inline constexpr size_t kTrailerBytes = 4;

/// Upper bound on a snapshot payload. Real shard snapshots at paper scale
/// are tens of MiB; the cap's job is to make a corrupt length field fail
/// fast instead of driving a giant allocation.
inline constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

/// \brief Everything needed to rebuild one shard bitwise.
struct ShardSnapshot {
  // ---- Identity: restore refuses a snapshot from another topology ------
  int32_t shard = -1;
  int32_t num_shards = 0;
  int64_t num_nodes = 0;

  // ---- Engine replay position at the (quiescent) snapshot point --------
  int64_t next_batch = 0;    ///< batches ingested == resume batch
  int64_t next_ordinal = 0;  ///< events ingested == resume ordinal

  // ---- State-plane geometry (validated against the restoring store) ----
  int64_t owned_nodes = 0;
  int64_t mailbox_slots = 0;
  int64_t mail_dim = 0;
  int64_t state_dim = 0;

  // ---- Mailbox raw planes (owned_nodes rows, storage order) ------------
  std::vector<float> mailbox_data;        ///< owned * slots * mail_dim
  std::vector<double> mailbox_timestamps; ///< owned * slots
  std::vector<int32_t> mailbox_head;      ///< owned
  std::vector<int32_t> mailbox_count;     ///< owned
  std::vector<int32_t> mailbox_order;     ///< owned * slots

  // ---- z(t−) rows (owned_nodes * state_dim) ----------------------------
  std::vector<float> z_rows;

  // ---- Graph slice -----------------------------------------------------
  graph::ShardedTemporalGraph::SliceCheckpoint slice;

  // ---- Replay/dedup state (worker-confined fields of the shard) --------
  int64_t next_merge = 0;
  /// Per sending peer, the highest accepted frontier (batch, hop).
  std::vector<std::pair<int64_t, int32_t>> accepted_request;
  int64_t last_wait_batch = -1;
  int32_t last_wait_hop = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
uint32_t Crc32(std::span<const uint8_t> bytes);

/// \brief Serializes `snap` into the full file image (header + payload +
/// CRC trailer).
std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshot& snap);

/// \brief Parses a file image produced by EncodeShardSnapshot. Rejects a
/// bad magic, any other version, a length that disagrees with the bytes
/// present, a CRC mismatch, truncation anywhere, oversized or
/// inconsistent counts, and trailing bytes.
Result<ShardSnapshot> DecodeShardSnapshot(std::span<const uint8_t> bytes);

/// \brief Writes `bytes` crash-atomically: `<path>.tmp` + fsync + rename
/// over `path` + directory fsync.
Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes);

/// Reads a whole file; IoError on open/read failure or a file above the
/// snapshot size cap.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Encode + crash-atomic write.
Status WriteShardSnapshot(const ShardSnapshot& snap, const std::string& path);

/// Read + decode.
Result<ShardSnapshot> ReadShardSnapshot(const std::string& path);

}  // namespace snapshot
}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_SNAPSHOT_H_
