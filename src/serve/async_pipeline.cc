#include "serve/async_pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "tensor/arena.h"
#include "tensor/ops.h"

namespace apan {
namespace serve {

using core::InteractionRecord;
using core::MailDelivery;

AsyncPipeline::AsyncPipeline(core::ApanModel* model, Options options)
    : model_(model),
      options_(options),
      delay_rng_(options.delay_seed),
      queue_(options.queue_capacity, options.overflow) {
  APAN_CHECK(model != nullptr);
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  sync_latency_ = registry_->GetHistogram("stage.sync");
  async_latency_ = registry_->GetHistogram("stage.async");
  {
    // No worker exists yet, but the model's lock discipline is declared
    // unconditionally — take the (uncontended) lock.
    util::MutexLock lock(model_mu_);
    model_->SetTraining(false);
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

AsyncPipeline::~AsyncPipeline() { Shutdown(); }

Result<AsyncPipeline::InferenceResult> AsyncPipeline::InferBatch(
    const std::vector<graph::Event>& events) {
  if (events.empty()) {
    return Status::InvalidArgument("InferBatch on empty batch");
  }
  {
    util::MutexLock lock(pending_mu_);
    if (shutdown_) return Status::Cancelled("pipeline is shut down");
  }

  InferenceResult result;
  Job job;
  Stopwatch watch;
  {
    // ---- Synchronous link: encoder + decoder over local state only. ----
    APAN_TRACE_SPAN("sync");
    util::MutexLock lock(model_mu_);
    tensor::NoGradGuard no_grad;
    // Per-batch arena scope: every op below draws its output from the
    // calling thread's pool (zero per-op heap allocations once warm).
    // Nothing tensor-shaped escapes this block — scores and embeddings
    // are copied into plain vectors.
    tensor::ArenaScope arena_scope;

    // Deduplicate nodes: each node's embedding is generated once per batch
    // (paper §3.2).
    std::vector<graph::NodeId> unique_nodes;
    std::unordered_map<graph::NodeId, size_t> index_of;
    auto intern = [&](graph::NodeId v) {
      auto [it, inserted] = index_of.try_emplace(v, unique_nodes.size());
      if (inserted) unique_nodes.push_back(v);
      return it->second;
    };
    std::vector<int64_t> src_rows, dst_rows;
    src_rows.reserve(events.size());
    dst_rows.reserve(events.size());
    for (const auto& e : events) {
      src_rows.push_back(static_cast<int64_t>(intern(e.src)));
      dst_rows.push_back(static_cast<int64_t>(intern(e.dst)));
    }

    core::ApanEncoder::Output enc = model_->EncodeNodes(unique_nodes);
    tensor::Tensor z_src = tensor::GatherRows(enc.embeddings, src_rows);
    tensor::Tensor z_dst = tensor::GatherRows(enc.embeddings, dst_rows);
    tensor::Tensor logits = model_->ScoreLinkLogits(z_src, z_dst);
    tensor::Tensor probs = tensor::Sigmoid(logits);
    result.scores.assign(probs.data(), probs.data() + probs.numel());

    // Package the asynchronous work while we still hold the embeddings.
    job.records.reserve(events.size());
    const int64_t d = model_->config().embedding_dim;
    const float* emb = enc.embeddings.data();
    for (size_t i = 0; i < events.size(); ++i) {
      InteractionRecord rec;
      rec.event = events[i];
      const float* zs = emb + src_rows[i] * d;
      const float* zd = emb + dst_rows[i] * d;
      rec.z_src.assign(zs, zs + d);
      rec.z_dst.assign(zd, zd + d);
      job.records.push_back(std::move(rec));
    }
  }
  result.sync_millis = watch.ElapsedMillis();
  sync_latency_->Record(result.sync_millis);

  // ---- Hand off to the asynchronous link. ----
  {
    util::MutexLock lock(pending_mu_);
    ++pending_;
  }
  const int64_t job_records = static_cast<int64_t>(job.records.size());
  std::optional<Job> evicted;
  Status push = queue_.Push(std::move(job), &evicted);
  if (evicted.has_value()) {
    // kDropOldest displaced an accepted batch; its mail is lost.
    util::MutexLock lock(pending_mu_);
    mails_dropped_ += static_cast<int64_t>(evicted->records.size());
    --pending_;
    pending_cv_.NotifyAll();
  }
  if (!push.ok()) {
    util::MutexLock lock(pending_mu_);
    if (push.IsResourceExhausted()) mails_dropped_ += job_records;
    --pending_;
    pending_cv_.NotifyAll();
    // Drop policies surface as ResourceExhausted; the inference result is
    // still valid (the mail is simply lost, as in an overloaded broker).
    if (!push.IsResourceExhausted()) return push;
  }
  return result;
}

void AsyncPipeline::WorkerLoop() {
  while (true) {
    auto job = queue_.Pop();
    if (!job.has_value()) return;  // queue closed and drained
    Stopwatch watch;
    {
      APAN_TRACE_SPAN("async");
      util::MutexLock lock(model_mu_);
      tensor::NoGradGuard no_grad;
      tensor::ArenaScope arena_scope;  // worker-thread pool, reset per job
      model_->ApplyEmbeddings(job->records);
      std::vector<MailDelivery> deliveries =
          model_->propagator().ComputeDeliveries(job->records);
      // Out-of-order injection: release what was held back last cycle,
      // hold back a fraction of this cycle's mail.
      std::vector<MailDelivery> to_deliver = std::move(held_back_);
      held_back_.clear();
      for (auto& d : deliveries) {
        if (options_.delay_fraction > 0.0 &&
            delay_rng_.Bernoulli(options_.delay_fraction)) {
          held_back_.push_back(std::move(d));
        } else {
          to_deliver.push_back(std::move(d));
        }
      }
      model_->mailbox().DeliverBatch(to_deliver);
      const Status append = model_->AppendEvents(job->records);
      APAN_CHECK_MSG(append.ok(), append.ToString());
    }
    async_latency_->Record(watch.ElapsedMillis());
    {
      util::MutexLock lock(pending_mu_);
      --pending_;
      ++propagated_batches_;
      pending_cv_.NotifyAll();
    }
  }
}

void AsyncPipeline::Flush() {
  util::MutexLock lock(pending_mu_);
  while (pending_ != 0) pending_cv_.Wait(pending_mu_);
  // Flush any held-back (out-of-order) mail so state is complete.
  // (Lock order pending_mu_ -> model_mu_, as declared on model_mu_.)
  util::MutexLock model_lock(model_mu_);
  model_->mailbox().DeliverBatch(held_back_);
  held_back_.clear();
}

void AsyncPipeline::Shutdown() {
  {
    util::MutexLock lock(pending_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.Close();
  if (worker_.joinable()) worker_.join();
  // The worker has drained the backlog and exited; deliver any mail the
  // out-of-order injector was still holding back, exactly as Flush()
  // would — shutting down must not silently lose accepted mail.
  util::MutexLock model_lock(model_mu_);
  model_->mailbox().DeliverBatch(held_back_);
  held_back_.clear();
}

int64_t AsyncPipeline::batches_propagated() const {
  util::MutexLock lock(pending_mu_);
  return propagated_batches_;
}

int64_t AsyncPipeline::mails_dropped() const {
  util::MutexLock lock(pending_mu_);
  return mails_dropped_;
}

}  // namespace serve
}  // namespace apan
