// The pluggable shard-to-shard messaging plane.
//
// serve::ShardedEngine routes every cross-shard interaction — mail
// partials, z(t−) write-backs, frontier requests and responses — through a
// Transport. The engine only assumes:
//
//   · at-least-once delivery: every accepted Send is delivered at least
//     once before Stop() returns (duplicates are allowed — the engine
//     drops them by tag);
//   · thread-safe Send from any engine thread, and a handler that may be
//     invoked from any transport thread (the engine's inbox push is
//     mutex-guarded);
//   · no ordering at all: sequence-tag replay reconstructs every order
//     that matters (docs/serving.md, "Transport plane").
//
// Implementations:
//   · InProcessTransport — Send invokes the handler synchronously on the
//     calling thread, preserving the pre-transport deque semantics
//     byte-for-byte (no serialization, no copies, per-lane FIFO).
//   · UnixSocketTransport — each directed (sender → receiver) lane is a
//     SOCK_STREAM socketpair carrying wire.h frames, with one reader
//     thread per lane decoding into the handler. The shards still share a
//     process, but no message crosses a shard boundary through shared
//     memory — the step that lets a future PR put shards in separate
//     processes by swapping socketpair() for connected AF_UNIX/TCP
//     sockets. Unavailable() on platforms without AF_UNIX.
//   · FaultyTransport — a decorator that delays, reorders, and duplicates
//     messages under a seeded RNG; the determinism soak tests run the
//     engine over it to prove tag replay absorbs an adversarial network.

#ifndef APAN_SERVE_TRANSPORT_H_
#define APAN_SERVE_TRANSPORT_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/shard_message.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace apan {
namespace serve {

/// \brief Per-lane transport accounting handles, installed by the engine
/// before Start. Each counter has num_shards² cells — one per directed
/// (from, to) lane — so concurrent lane writers never share a cell.
/// frames counts accepted messages (a coalesced SendBatch adds one per
/// element); bytes counts serialized frame bytes and syscalls counts
/// ::write calls (both zero for transports that never serialize, e.g.
/// in-process delivery) — so syscalls/frames is the coalescing ratio.
struct TransportMetrics {
  obs::Counter* frames = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* syscalls = nullptr;
  /// Robustness accounting, optional on top of valid(): lane_reconnects
  /// counts successful lane rebuilds after a peer death (one per rebuilt
  /// socketpair), send_failures counts Sends/SendBatches that returned a
  /// non-OK Status after exhausting reconnect attempts. Per directed
  /// lane, like the others. Null handles skip the count, not the retry.
  obs::Counter* lane_reconnects = nullptr;
  obs::Counter* send_failures = nullptr;
  int num_shards = 0;

  bool valid() const {
    return frames != nullptr && bytes != nullptr && syscalls != nullptr &&
           num_shards > 0;
  }
  int lane(int from_shard, int to_shard) const {
    return from_shard * num_shards + to_shard;
  }
};

/// \brief Moves ShardMessages between shards. Lifecycle: Start once, Send
/// from any thread, Stop once (idempotent; also run by the destructor).
class Transport {
 public:
  /// Delivery callback. May be invoked concurrently from transport
  /// threads; must not call back into the transport.
  using Handler = std::function<void(int to_shard, ShardMessage message)>;

  virtual ~Transport() = default;

  /// Registers the delivery handler and brings up the lanes. Must be
  /// called exactly once, before any Send.
  virtual Status Start(int num_shards, Handler handler) = 0;

  /// Queues `message` for delivery to `to_shard`. Every shard pair is a
  /// lane, including from_shard == to_shard (self-mail takes the same
  /// path as foreign mail). Fails after Stop.
  virtual Status Send(int from_shard, int to_shard, ShardMessage message) = 0;

  /// \brief Queues several messages for one destination — semantically
  /// identical to Send per element (at-least-once, unordered), but a
  /// serializing transport may coalesce the whole batch into ONE wire
  /// frame: UnixSocketTransport writes one frame with one write loop per
  /// peer batch instead of per message, which is where the per-peer
  /// syscall count of a sharded batch collapses. The default loops over
  /// Send — right for in-process delivery (no frame cost to save) and for
  /// FaultyTransport (faults must hit each message independently, or the
  /// soak would exercise less reordering than the real network can).
  virtual Status SendBatch(int from_shard, int to_shard,
                           std::vector<ShardMessage> messages) {
    for (ShardMessage& message : messages) {
      APAN_RETURN_NOT_OK(Send(from_shard, to_shard, std::move(message)));
    }
    return Status::OK();
  }

  /// Drains every accepted Send to its handler, then tears the lanes
  /// down. No Send may be in flight concurrently with Stop; after it
  /// returns no handler invocation is running or pending.
  virtual void Stop() = 0;

  virtual const char* name() const = 0;

  /// Installs per-lane accounting counters. Call before Start; the
  /// default ignores them (instrumentation is optional for transport
  /// authors). Decorators forward to their inner transport.
  virtual void SetMetrics(const TransportMetrics& metrics) {
    static_cast<void>(metrics);
  }

  /// True when every accepted Send is delivered exactly once (no
  /// duplication) — the in-process and socket lanes qualify; a
  /// fault-injecting decorator (or any future retrying transport) does
  /// not. Gates operations that rewind the engine's replay watermarks
  /// (ShardedEngine::ResetState): after a rewind, a re-delivered
  /// pre-rewind frame would be accepted as new rather than dropped by
  /// tag. Pure virtual on purpose: the safe default is to make every
  /// transport author declare this property, not inherit a permissive
  /// one.
  virtual bool exactly_once() const = 0;
};

/// Builds a fresh transport per engine (an engine owns its transport).
using TransportFactory = std::function<std::unique_ptr<Transport>()>;

/// \brief The pre-transport semantics: synchronous handler invocation on
/// the sender's thread.
class InProcessTransport : public Transport {
 public:
  Status Start(int num_shards, Handler handler) override;
  Status Send(int from_shard, int to_shard, ShardMessage message) override;
  void Stop() override { stopped_ = true; }
  const char* name() const override { return "inproc"; }
  void SetMetrics(const TransportMetrics& metrics) override {
    metrics_ = metrics;
  }
  /// Synchronous handler call: one delivery per Send, by construction.
  bool exactly_once() const override { return true; }

 private:
  Handler handler_;
  /// Frames only: nothing is serialized, so bytes/syscalls stay zero.
  TransportMetrics metrics_;
  int num_shards_ = 0;
  /// Start-before-Send and Send-after-Stop are caller contract
  /// violations; these flags turn them into Status, not UB. Sends are
  /// externally synchronized with Start/Stop per the lifecycle contract.
  bool started_ = false;
  bool stopped_ = false;
};

/// \brief Every directed lane is a Unix-domain stream socket carrying
/// length-prefixed wire.h frames; one reader thread per lane.
class UnixSocketTransport : public Transport {
 public:
  UnixSocketTransport() = default;
  ~UnixSocketTransport() override;

  /// False on platforms without AF_UNIX (tests skip, not fail).
  static bool Available();

  Status Start(int num_shards, Handler handler) override;
  Status Send(int from_shard, int to_shard, ShardMessage message) override;
  /// One coalesced frame, one write loop (typically one syscall) for the
  /// whole batch; the reader fans it back out into per-message handler
  /// calls, so delivery semantics are unchanged.
  Status SendBatch(int from_shard, int to_shard,
                   std::vector<ShardMessage> messages) override;
  void Stop() override;
  const char* name() const override { return "uds"; }
  void SetMetrics(const TransportMetrics& metrics) override {
    metrics_ = metrics;
  }
  /// Lossless FIFO socketpair lanes: one frame per Send. Reconnect keeps
  /// this true — a rebuilt lane only ever re-sends a frame whose first
  /// copy died partially written, which the dying reader discarded.
  bool exactly_once() const override { return true; }

  /// \brief Fault-injection hook for the robustness tests: simulates the
  /// (from → to) lane's peer dying by shutting the receive side down.
  /// Queued-but-unread frames are discarded with the peer (exactly what a
  /// process death does), the lane's reader exits, and the next write
  /// observes EPIPE and takes the reconnect path. Must not race Stop or a
  /// concurrent kill of the same lane.
  Status KillLaneForTest(int from_shard, int to_shard);

 private:
  struct Lane {
    /// Serializes writers (a fault decorator's flusher can race the
    /// worker) and guards write_fd against the close in Stop.
    util::Mutex write_mu;
    int write_fd APAN_GUARDED_BY(write_mu) = -1;
    /// Reader-thread-confined until the reader is joined (by Stop, or by
    /// a reconnect rebuilding the lane under write_mu); never raced.
    int read_fd = -1;
    std::thread reader;
  };

  /// Shared tail of Send/SendBatch: one locked write loop for a fully
  /// serialized frame carrying `message_count` messages. A failed write
  /// (peer death: EPIPE/ECONNRESET) is surfaced as Status, never a
  /// signal or a crash: the lane is rebuilt with capped exponential
  /// backoff and the frame retried; after the attempts are exhausted the
  /// caller gets IoError and the send_failures cell is bumped.
  Status WriteFrame(int from_shard, int to_shard,
                    const std::vector<uint8_t>& frame, int64_t message_count);
  /// Tears down and rebuilds one lane under its write lock: kicks the old
  /// reader off the dead socket, joins it, makes a fresh socketpair and
  /// respawns the reader. The joined reader hands read_fd back to this
  /// thread, so the fd swap is unraced by construction.
  Status ReconnectLaneLocked(Lane& lane, int to_shard)
      APAN_REQUIRES(lane.write_mu);

  Lane& LaneFor(int from_shard, int to_shard) {
    return *lanes_[static_cast<size_t>(from_shard) *
                       static_cast<size_t>(num_shards_) +
                   static_cast<size_t>(to_shard)];
  }
  void ReaderLoop(Lane* lane, int to_shard);

  Handler handler_;
  /// Frames + serialized bytes + ::write syscalls, per directed lane.
  TransportMetrics metrics_;
  int num_shards_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  bool started_ = false;
  bool stopped_ = false;
};

/// \brief Fault-injecting decorator: under a seeded RNG, each message may
/// be duplicated and each copy may be held back for a random interval — a
/// background flusher releases due messages in shuffled order, so
/// deliveries reorder across and within lanes. Stop releases everything
/// still held before stopping the inner transport: faults degrade
/// ordering and multiplicity, never delivery.
class FaultyTransport : public Transport {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Probability a message copy is held back instead of sent inline.
    double delay_probability = 0.5;
    /// Probability a message is sent twice (the duplicate is delayed
    /// independently).
    double duplicate_probability = 0.25;
    /// Held copies release after U[0, max_delay] microseconds.
    int64_t max_delay_micros = 2000;
    /// Flusher wake period.
    int64_t flush_period_micros = 100;
  };

  FaultyTransport(std::unique_ptr<Transport> inner, Options options);
  ~FaultyTransport() override;

  Status Start(int num_shards, Handler handler) override;
  Status Send(int from_shard, int to_shard, ShardMessage message) override
      APAN_EXCLUDES(mu_);
  void Stop() override APAN_EXCLUDES(mu_);
  const char* name() const override { return "faulty"; }
  /// The inner transport does the real moving; it does the accounting
  /// too (so injected duplicates are counted, as they cost real frames).
  void SetMetrics(const TransportMetrics& metrics) override {
    inner_->SetMetrics(metrics);
  }
  bool exactly_once() const override { return false; }

 private:
  struct Held {
    std::chrono::steady_clock::time_point release;
    int from_shard = 0;
    int to_shard = 0;
    ShardMessage message;
  };

  void FlusherLoop() APAN_EXCLUDES(mu_);
  /// Sends every held message whose deadline passed (all of them when
  /// `drain`), in RNG-shuffled order.
  Status FlushDue(bool drain) APAN_EXCLUDES(mu_);

  std::unique_ptr<Transport> inner_;
  Options options_;

  util::Mutex mu_;
  util::CondVar cv_;
  Rng rng_ APAN_GUARDED_BY(mu_);
  std::vector<Held> held_ APAN_GUARDED_BY(mu_);
  bool stop_ APAN_GUARDED_BY(mu_) = false;
  std::thread flusher_;
  bool started_ = false;
};

/// Named transports for --transport= flags.
enum class TransportKind { kInProcess, kUnixSocket };

/// "inproc" or "uds" → kind; anything else is InvalidArgument.
Result<TransportKind> ParseTransportKind(std::string_view name);

TransportFactory MakeTransportFactory(TransportKind kind);

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_TRANSPORT_H_
