// The sharded serving engine — AsyncPipeline scaled out across a node
// partition (paper §3.6: "APAN can be deployed on distributed streaming
// systems ... mails may arrive out of order", which the mailbox absorbs
// by keeping each node's slots time-sorted at write).
//
// A ShardRouter partitions the node space into N shards through a shared
// graph::NodePartition index (canonical hash by default, or a
// locality-aware index via Options::partition). Each shard
// exclusively owns its nodes' mutable state — a core::NodeStateStore
// holding its mailbox slice and z(t−) rows — AND its slice of the
// temporal graph (graph::ShardedTemporalGraph: the owned nodes'
// adjacency rows plus the event-log entries the shard homes). The model
// itself is touched only through the const core::ApanWeights view (the
// weights are replicated, the state is partitioned): the engine never
// locks or writes a byte of ApanModel's mutable state while running, so
// the model's default store stays empty and Shard::state_mu guards
// genuinely shard-private memory — no false sharing on the synchronous
// link. Each shard has a bounded inbox of batch jobs and runs one
// propagation worker. The division of labour per batch:
//
//   Synchronous link (InferBatch, what the caller waits for)
//     · the batch's unique nodes are split by owner shard and encoded
//       concurrently on a thread pool — each encode touches only its
//       shard's rows, under that shard's state lock;
//     · link scores are decoded on the calling thread and returned.
//
//   Asynchronous link (per-shard workers, off the latency path)
//     · a worker starting batch b first appends the batch's events to its
//       own graph slice — a shard-local append that advances the shard's
//       watermark to b+1. There is no global epoch gate: shards run ahead
//       of each other freely, because every slice read is versioned by
//       global event ordinal, so sampling batch b always sees exactly the
//       events of batches 0..b-1 no matter how far any slice has advanced;
//     · every event is homed on its source endpoint's shard; the home
//       shard computes the event's mail (φ) and drives its k-hop fan-out
//       (N). A hop whose frontier node is owned by a foreign shard is
//       *forwarded* to the owner as a frontier-request message through the
//       same shard-to-shard message lane; the owner samples its slice
//       (deferring the request until its watermark reaches b) and replies
//       with the sampled neighbors. Slot-sequence tags let the home shard
//       reassemble every hop in the exact monolithic expansion order;
//     · each resulting MailDelivery and z(t−) write-back is *routed* to
//       its recipient's owner shard as a ShardPartial message. Cross-shard
//       mail therefore arrives interleaved with other shards' traffic —
//       out of order by construction;
//     · a recipient shard reassembles a batch once partials from all N
//       shards have arrived, then applies state updates and mail to its
//       rows in global event order (sequence tags), restoring exactly the
//       per-node delivery order of the single-worker AsyncPipeline.
//
// Transport plane: every ShardMessage crosses shards through a pluggable
// serve::Transport (Options::transport) — synchronous in-process delivery
// by default, or a Unix-domain-socket lane per shard pair carrying
// serve/wire.h frames. The engine assumes only at-least-once delivery
// with no ordering: sequence tags reconstruct every order that matters,
// and duplicated deliveries are dropped by tag — ShardPartials by
// (batch, sender), frontier requests/responses by monotonic (batch, hop)
// watermarks per peer. With the state plane split into per-shard stores,
// nothing crosses a shard boundary through shared memory: a shard's
// entire mutable footprint (store + graph slice) is address-space
// independent, and only connected sockets separate this from a true
// multi-process deployment (docs/serving.md).
//
// Determinism: because neighborhood expansion, per-node delivery order and
// ρ-reduction are reconstructed exactly, the final mailbox timestamps and
// counts after Flush() are bitwise-identical to the single-worker
// AsyncPipeline on the same stream (mail *payloads* agree up to
// floating-point summation order; tests/serve_sharded_test.cc asserts
// both — and tests/serve_transport_test.cc re-asserts it over a socket
// transport and under injected delay/reorder/duplication faults).
//
// Deadlock freedom: batch-job inboxes are bounded (back-pressure on the
// caller), but shard-to-shard messages are unbounded — if message pushes
// could block, two shards flooding each other would deadlock. A worker
// blocked waiting for frontier responses keeps serving incoming requests
// and mail from its own inbox, and a request it cannot answer yet (its
// watermark is behind the requested batch) is deferred until its own next
// slice append — the shard at the minimum outstanding batch can always be
// answered by everyone, so expansion always makes progress.

#ifndef APAN_SERVE_SHARDED_ENGINE_H_
#define APAN_SERVE_SHARDED_ENGINE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/apan_model.h"
#include "core/node_state_store.h"
#include "graph/sharded_temporal_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/shard_message.h"
#include "serve/shard_router.h"
#include "serve/snapshot.h"
#include "serve/transport.h"
#include "util/bounded_queue.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace apan {
namespace serve {

/// \brief Runs one ApanModel behind an N-shard partition of the node
/// space: per-shard mailbox/memory/graph-slice ownership, per-shard
/// propagation workers, cross-shard mail + frontier routing over a
/// pluggable transport.
class ShardedEngine {
 public:
  struct Options {
    int num_shards = 4;
    /// Shared node-ownership index for ALL partitioned planes (router,
    /// graph slices, state stores). Null means the canonical hash
    /// (graph::NodePartition::BuildDefault). Pass a
    /// NodePartition::BuildLocality index — built from a warmup prefix or
    /// a prior epoch's events — to keep k-hop propagation shard-local.
    /// Must cover exactly the model's node count with `num_shards` shards
    /// (CHECK-enforced). Determinism is partition-independent: replay
    /// tags make delivery order irrelevant, so every suite passes under
    /// any ownership map.
    std::shared_ptr<const graph::NodePartition> partition;
    /// Maximum in-flight batches per shard before InferBatch applies the
    /// overflow policy.
    size_t queue_capacity = 256;
    /// kBlock waits for space. Any drop policy drops the *incoming* batch
    /// whole (a partially enqueued batch would wedge the cross-shard
    /// reassembly barrier); kDropOldest degrades to dropping the incoming
    /// batch for the same reason.
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Threads encoding shard slices on the synchronous link; 0 means one
    /// per shard.
    size_t encode_threads = 0;
    /// Builds the shard-to-shard message transport; null means
    /// InProcessTransport (the pre-transport deque semantics).
    TransportFactory transport;
    /// Metrics land here; null means the engine owns a private registry
    /// (reachable via registry()). Sharing one registry across engines
    /// accumulates counts across them — benches pass null per run.
    obs::Registry* registry = nullptr;
    /// Stage-level histograms, queue gauges and trace spans. Counters
    /// (the stats() substrate) are always on — they are single relaxed
    /// adds and strictly cheaper than the mutexed fields they replaced.
    /// fig10 runs each config with this off and on to price the
    /// difference (the <2% overhead contract in docs/observability.md).
    bool stage_metrics = true;
  };

  /// `model` must outlive the engine and must not be used concurrently by
  /// other threads while the engine is running. Requires
  /// PropagationSampling::kMostRecent (kUniform draws from a shared RNG,
  /// which shard-concurrent sampling would race on). The model is put in
  /// eval mode once here; afterwards the engine accesses it const-only
  /// (core::ApanWeights): served state lands in the engine's own
  /// per-shard NodeStateStores and graph slices, NOT in model->graph(),
  /// model->mailbox() or model->state_store(), which all stay empty.
  ShardedEngine(core::ApanModel* model, Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  struct InferenceResult {
    /// P(edge) per event, from the link decoder.
    std::vector<float> scores;
    /// Wall-clock milliseconds of the synchronous path for this batch.
    double sync_millis = 0.0;
  };

  /// \brief Scores a batch of interactions on the synchronous link
  /// (shard-parallel encoding) and enqueues the per-shard asynchronous
  /// work. Events must arrive in non-decreasing time order across calls;
  /// concurrent callers are serialized. \return Cancelled after Shutdown.
  Result<InferenceResult> InferBatch(const std::vector<graph::Event>& events)
      APAN_EXCLUDES(infer_mu_, flush_mu_);

  /// Blocks until every accepted batch has been sampled, routed, and
  /// applied on every shard.
  void Flush() APAN_EXCLUDES(flush_mu_);

  /// Drains all accepted work AND the transport (a socket lane can hold
  /// frames a deque never could), then stops the workers (idempotent;
  /// also called by the destructor). Shutdown never loses accepted mail.
  void Shutdown() APAN_EXCLUDES(shutdown_mu_, infer_mu_, flush_mu_);

  /// \brief Resets all streaming state between epochs, mirroring
  /// ApanModel::ResetState for the sharded layout: flushes accepted work,
  /// then routes a reset through every shard's worker that zeroes its
  /// NodeStateStore, empties its graph slice, and rewinds its replay
  /// watermarks; batch/ordinal numbering restarts at 0. After it returns
  /// the engine reproduces a fresh engine bitwise on the same stream.
  /// Stats and latency recorders stay cumulative. Callers must not run
  /// InferBatch concurrently. CHECK-enforced: the transport must report
  /// exactly_once() (inproc and uds do — their lanes are provably empty
  /// after the internal flush); a duplicating transport could re-deliver
  /// a pre-reset frame whose replay tag the reset rewound, so the engine
  /// aborts instead of corrupting silently. No-op after Shutdown.
  void ResetState() APAN_EXCLUDES(infer_mu_, flush_mu_);

  /// \brief Writes shard `shard`'s full recovery image — its
  /// NodeStateStore (mailbox planes + z(t−) rows), its graph slice, and
  /// all replay/dedup state, plus the engine's batch/ordinal numbering —
  /// crash-atomically to `path` (serve/snapshot.h format). Flushes
  /// accepted work first, then runs the capture as a control job on the
  /// shard's own worker thread (the ResetState pattern), so every
  /// worker-confined field is read by the one thread allowed to touch it.
  /// Restoring the snapshot and replaying the event stream from its batch
  /// watermark reproduces the never-crashed mailbox bitwise. Safe under
  /// any transport: capture only reads, so a late re-delivered frame is
  /// dropped by the same tags the snapshot preserves.
  Status SnapshotShard(int shard, const std::string& path)
      APAN_EXCLUDES(infer_mu_, flush_mu_);

  /// \brief Restores shard `shard` from a snapshot written by
  /// SnapshotShard: decodes + validates the file against this engine's
  /// topology (shard id, shard count, node count, mailbox/state geometry),
  /// then installs it via a control job on the shard's worker and adopts
  /// the snapshot's batch/ordinal numbering (all shards of one recovery
  /// set carry the same quiesced numbering, so per-shard adoption is
  /// idempotent across the set). A corrupt, truncated or mismatched
  /// snapshot returns a non-OK Status with the engine unchanged.
  /// Requires an exactly-once transport, for the same reason ResetState
  /// does: restore rewinds replay watermarks, and a duplicating transport
  /// could re-deliver a pre-restore frame the rewound tags would accept.
  Status RestoreShard(int shard, const std::string& path)
      APAN_EXCLUDES(infer_mu_, flush_mu_);

  /// \brief Marks a shard down (or back up) for graceful degradation.
  /// While a shard is down the engine keeps serving from the healthy
  /// shards instead of blocking on the dead one: batches' records homed
  /// to it are shed (counted in Stats::events_shed), outbound messages to
  /// it are shed at the flush point (Stats::sends_shed), its merge
  /// contribution is synthesized empty so healthy shards' reassembly
  /// barriers still complete, and k-hop frontiers it owns sample empty
  /// (stale-neighborhood degradation). Scores keep flowing — encoded
  /// against the down shard's frozen state. Flushes in-flight work before
  /// flipping the flag, so the transition lands at a batch boundary.
  /// No-op after Shutdown.
  void SetShardDown(int shard, bool down)
      APAN_EXCLUDES(infer_mu_, flush_mu_);

  struct Stats {
    int64_t batches_ingested = 0;
    /// Batches fully applied on every shard.
    int64_t batches_propagated = 0;
    /// Batches refused whole by a drop overflow policy (their records are
    /// also counted in mails_dropped). The accounting identity is
    /// batches_ingested == batches attempted − batches_rejected.
    int64_t batches_rejected = 0;
    /// MailDeliveries routed shard→shard (hop-0 plus reduced).
    int64_t mails_routed = 0;
    /// Subset of mails_routed whose sender and owner shards differ.
    int64_t mails_cross_shard = 0;
    /// Interaction records dropped whole by the overflow policy.
    int64_t mails_dropped = 0;
    /// Frontier-request messages sent to foreign graph-slice owners.
    int64_t frontier_requests = 0;
    /// Frontier nodes whose sampling was forwarded to a foreign owner.
    int64_t frontier_nodes_forwarded = 0;
    /// Messages dropped as transport re-deliveries (by replay tag). Zero
    /// under an exactly-once transport; positive under FaultyTransport.
    int64_t duplicates_dropped = 0;
    /// Interaction records homed to a down shard and shed whole while it
    /// was down (SetShardDown). Zero in any run with no shard down.
    int64_t events_shed = 0;
    /// Outbound messages shed at the flush point — destined to a down
    /// shard, or refused by the transport after its lane-level recovery
    /// (reconnect/backoff) gave up. Zero in a healthy run.
    int64_t sends_shed = 0;
  };
  Stats stats() const;

  const ShardRouter& router() const { return router_; }
  /// The transport the engine is running over ("inproc", "uds", ...).
  const char* transport_name() const { return transport_->name(); }
  /// The engine-owned shard-local graph slices (quiescent inspection:
  /// call after Flush).
  const graph::ShardedTemporalGraph& sharded_graph() const { return graph_; }
  /// One shard's mutable node state — its mailbox slice + z(t−) rows
  /// (quiescent inspection: call after Flush). Stitching the per-shard
  /// stores by router ownership reconstructs the monolithic state.
  /// Analysis opt-out: the store pointee is guarded by Shard::state_mu,
  /// but this accessor's contract is quiescence (post-Flush, no batch in
  /// flight), not a lock — taking state_mu here would hand the caller an
  /// unprotected reference anyway.
  const core::NodeStateStore& state_store(int shard) const
      APAN_NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[static_cast<size_t>(shard)]->store;
  }
  /// Latency of the synchronous path per batch (what the user waits for).
  const obs::Histogram& sync_latency() const { return *ins_.stage_sync; }
  /// Latency of per-shard batch application (merge + mailbox append).
  const obs::Histogram& async_latency() const { return *ins_.stage_merge; }
  /// The registry this engine's metrics live in (Options::registry, or
  /// the engine-owned default). Scrape after Flush for exact totals.
  obs::Registry* registry() const { return registry_; }

 private:
  /// Shared per-batch bookkeeping for the in-process job path: what every
  /// shard needs to append its own slice of the batch. (The apply barrier
  /// lives in apply_remaining_, keyed by batch — ShardPartials cross the
  /// transport and cannot carry pointers.)
  struct BatchContext {
    int64_t batch = 0;
    /// Global index of events[0] in the accepted stream; sampling for
    /// this batch reads slices as-of this ordinal (events of batches
    /// 0..batch-1 only).
    int64_t base_ordinal = 0;
    std::vector<graph::Event> events;
  };

  /// A batch's home-events slice for one shard. Jobs stay in-process
  /// (they carry the caller's encoder output); only ShardMessages travel
  /// the transport.
  struct BatchJob {
    std::shared_ptr<BatchContext> ctx;
    std::vector<core::InteractionRecord> records;
    std::vector<int64_t> event_index;  ///< Global batch positions.
    /// Control jobs run on the owning worker instead of propagating a
    /// batch: kReset clears the shard (ResetState), kSnapshot captures it
    /// to `snapshot_path`, kRestore installs `restore` into it. Routing
    /// them through the inbox keeps every worker-confined field (merge
    /// cursor, frontier watermarks, graph slice) single-threaded.
    enum class Op { kBatch, kReset, kSnapshot, kRestore };
    Op op = Op::kBatch;
    std::string snapshot_path;  ///< kSnapshot: destination file.
    /// kSnapshot: engine numbering captured under infer_mu_ at submit
    /// time (the worker cannot read it without an ACQUIRED_AFTER
    /// violation).
    int64_t snap_next_batch = 0;
    int64_t snap_next_ordinal = 0;
    /// kRestore: the decoded, topology-validated snapshot to install.
    std::shared_ptr<const snapshot::ShardSnapshot> restore;
    /// Control-job outcome, written by the worker before it decrements
    /// inflight_ under flush_mu_ — the same lock the submitting caller
    /// waits on, so the write is ordered before the caller's read.
    Status* control_status = nullptr;
  };

  /// An expansion's identity, ordered as expansions run: batch-major,
  /// hop-minor. Used as the replay watermark for frontier dedup.
  using ExpansionKey = std::pair<int64_t, int32_t>;

  struct Shard {
    /// Guards the *pointee* of `store` between the encode pool
    /// (synchronous link) and this shard's worker (batch application).
    /// The pointer itself is set once at construction and never reseated.
    util::Mutex state_mu;
    /// This shard's mutable node state: its mailbox slice + z(t−) rows,
    /// dense over the nodes the router assigns to it. Exclusively owned —
    /// no other shard (and not the model) ever touches these bytes.
    std::unique_ptr<core::NodeStateStore> store APAN_PT_GUARDED_BY(state_mu);

    /// Inbox lock. Jobs are bounded by Options::queue_capacity (client
    /// back-pressure); messages are unbounded (see deadlock note above).
    /// Lock order: a worker or caller holding `mu` never acquires another
    /// shard's `mu`, `state_mu`, or any engine mutex — inbox critical
    /// sections are push/pop only.
    util::Mutex mu;
    util::CondVar cv;
    std::deque<BatchJob> jobs APAN_GUARDED_BY(mu);
    std::deque<ShardMessage> mail APAN_GUARDED_BY(mu);
    size_t jobs_in_flight APAN_GUARDED_BY(mu) = 0;  ///< Queued + running.
    bool closed APAN_GUARDED_BY(mu) = false;

    /// Worker-local per-batch reassembly (worker thread only).
    std::map<int64_t, std::vector<ShardPartial>> pending;
    int64_t next_merge = 0;
    /// Frontier requests for batches this slice has not appended yet;
    /// re-checked after every slice append (worker thread only).
    std::vector<FrontierRequest> deferred_requests;

    /// Per-peer outbound message buffers (worker thread only). Handlers
    /// buffer instead of sending; FlushOutbound hands each peer's run of
    /// messages to Transport::SendBatch as ONE coalesced frame. Flush
    /// points are placed so the buffer is always empty before the worker
    /// can block (deadlock safety): after each hop's request fan-out,
    /// after every dispatched message, and at the end of each job.
    std::vector<std::vector<ShardMessage>> outbound;

    /// Replay protection (worker thread only). A requester issues
    /// frontier requests to a given owner at strictly increasing
    /// (batch, hop) and never has two outstanding at once, so one
    /// watermark per peer suffices to drop transport re-deliveries.
    std::vector<ExpansionKey> accepted_request;  ///< Per requester shard.
    ExpansionKey last_wait{-1, 0};  ///< Newest completed response wait.

    std::thread worker;
  };

  void WorkerLoop(int shard_id) APAN_EXCLUDES(flush_mu_);
  void ProcessJob(int shard_id, BatchJob job) APAN_EXCLUDES(flush_mu_);
  /// Worker-side half of ResetState: runs on the shard's own thread so
  /// the worker-confined replay state and graph slice stay thread-local.
  void ResetShardLocal(int shard_id);
  /// Worker-side halves of SnapshotShard / RestoreShard (same pattern).
  Status SnapshotShardLocal(int shard_id, const BatchJob& job);
  Status RestoreShardLocal(int shard_id, const BatchJob& job);
  /// Shared control-job submission: Flush, push one job to `shard`'s
  /// worker, wait for it, return the Status the worker wrote. Held
  /// infer_mu_ keeps InferBatch (and other control callers) out for the
  /// whole round trip.
  Status RunControlJob(int shard, BatchJob job)
      APAN_REQUIRES(infer_mu_) APAN_EXCLUDES(flush_mu_);
  void DispatchMessage(int shard_id, ShardMessage message)
      APAN_EXCLUDES(flush_mu_);
  void OnMail(int shard_id, ShardPartial partial) APAN_EXCLUDES(flush_mu_);
  void ApplyMergedBatch(int shard_id, std::vector<ShardPartial> parts)
      APAN_EXCLUDES(flush_mu_);
  void RouteMail(int from_shard, BatchJob& job,
                 core::PartialPropagation&& propagation);
  /// Queues `message` in the sender worker's per-peer outbound buffer;
  /// nothing crosses the transport until FlushOutbound. Worker thread
  /// only.
  void BufferMessage(int from_shard, int to_shard, ShardMessage message);
  /// Hands every buffered run to Transport::SendBatch — one coalesced
  /// frame per peer (the transport delivers back through EnqueueMessage,
  /// possibly on another thread, possibly more than once) — and empties
  /// the buffers. Worker thread only.
  void FlushOutbound(int from_shard);
  /// Retires the application legs of `batches` on `to_shard` after their
  /// ShardPartials were shed (peer down, or send refused even after the
  /// transport's own lane recovery): erases the peer from each batch's
  /// apply_remaining_ set and decrements inflight_ once per leg actually
  /// present, so Flush cannot wedge on a merge the dead peer will never
  /// perform.
  void CompensateLostPartials(int to_shard,
                              const std::vector<int64_t>& batches)
      APAN_EXCLUDES(flush_mu_);
  /// Transport delivery handler: pushes onto the target shard's inbox.
  void EnqueueMessage(int to_shard, ShardMessage message);
  void CountDuplicateDropped(int shard_id);

  /// k-hop expansion for a job's records against the sharded graph
  /// as-of the job's batch: local frontiers sampled from the own slice,
  /// foreign frontiers forwarded to their owners.
  std::vector<std::vector<graph::HopEntry>> ExpandKHop(int shard_id,
                                                       const BatchJob& job);
  /// Blocks until each shard flagged in `awaiting_from` responded for
  /// (batch, hop), serving interleaved requests/partials from the own
  /// inbox meanwhile. Re-delivered responses are dropped by tag.
  /// \return wall milliseconds spent inside the call, so ExpandKHop can
  /// attribute it to stage.frontier_wait instead of stage.sample (the
  /// time spent *dispatching* interleaved messages is subtracted out
  /// again internally — nested handlers record their own stages).
  double WaitForFrontierResponses(
      int shard_id, int64_t batch, int32_t hop,
      std::vector<char>& awaiting_from,
      std::vector<std::vector<graph::TemporalNeighbor>>& sampled);
  void HandleFrontierRequest(int shard_id, FrontierRequest request);
  void AnswerFrontierRequest(int shard_id, const FrontierRequest& request);
  /// Answers deferred requests the latest slice append unblocked.
  void ServeDeferredRequests(int shard_id);

  /// Const-only while running: weights are read through model_->weights();
  /// all mutable serve state lives in the per-shard stores above.
  const core::ApanModel* model_;
  Options options_;
  /// The ONE ownership index of this engine, shared by the router, the
  /// graph slices and every per-shard NodeStateStore (element-identical
  /// maps, stored once — ~8 bytes/node saved vs per-plane copies).
  /// Options::partition, or the canonical hash when none was given.
  /// Declared before router_/graph_: both consume it at construction.
  std::shared_ptr<const graph::NodePartition> partition_;
  ShardRouter router_;
  graph::ShardedTemporalGraph graph_;
  std::unique_ptr<Transport> transport_;
  ThreadPool encode_pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Per-shard down flags (SetShardDown), sized num_shards at
  /// construction and never resized. Atomics because the readers span
  /// lock domains — InferBatch under infer_mu_, FlushOutbound and
  /// ExpandKHop on worker threads under no engine lock — and the flag
  /// only flips at a flushed quiescent point, so relaxed reads suffice.
  std::vector<std::atomic<bool>> shard_down_;

  /// Serializes Shutdown callers end-to-end. Outermost engine lock:
  /// Shutdown holds it while taking infer_mu_ (and, via Flush, flush_mu_).
  util::Mutex shutdown_mu_;
  bool joined_ APAN_GUARDED_BY(shutdown_mu_) = false;

  /// Serializes InferBatch callers (stream-order contract) and guards the
  /// shutdown flag + batch/ordinal sequencing.
  util::Mutex infer_mu_ APAN_ACQUIRED_AFTER(shutdown_mu_);
  bool shutdown_ APAN_GUARDED_BY(infer_mu_) = false;
  int64_t next_batch_ APAN_GUARDED_BY(infer_mu_) = 0;
  int64_t next_ordinal_ APAN_GUARDED_BY(infer_mu_) = 0;  ///< Events accepted.
  /// False until the first accepted batch. Gates RestoreShard under a
  /// duplicating transport: restoring a virgin engine rewinds nothing, so
  /// there is no pre-restore frame a rewound replay tag could re-accept —
  /// which is how a fresh engine rejoins from snapshots even when its
  /// transport cannot promise exactly-once.
  bool ingested_since_start_ APAN_GUARDED_BY(infer_mu_) = false;

  /// Outstanding work legs for Flush: each accepted batch contributes
  /// num_shards sampling legs + num_shards application legs. Innermost
  /// engine lock (see the ACQUIRED_AFTER chain).
  mutable util::Mutex flush_mu_ APAN_ACQUIRED_AFTER(infer_mu_);
  util::CondVar flush_cv_;
  int64_t inflight_ APAN_GUARDED_BY(flush_mu_) = 0;
  /// Apply barrier per in-flight batch: the exact set of shards yet to
  /// merge it; the last shard to leave the set completes the batch. A set
  /// (not a count) so that shedding a partial destined to a dead peer can
  /// retire precisely the legs that were counted at ingest — a batch
  /// ingested while a shard was already down never put that shard in its
  /// set, so double-compensation is structurally impossible.
  std::map<int64_t, std::set<int>> apply_remaining_ APAN_GUARDED_BY(flush_mu_);

  /// Metric handles, resolved once at construction (the registry owns the
  /// metrics; handles are stable and lock-free). Counters are the stats()
  /// substrate — the old mutexed Stats fields migrated here, one cell per
  /// shard where the writer is per-shard. Stage histograms and queue
  /// gauges are live only when Options::stage_metrics is set.
  struct Instruments {
    obs::Counter* batches_ingested = nullptr;   ///< 1 cell (caller thread)
    obs::Counter* batches_propagated = nullptr;  ///< cell = completing shard
    obs::Counter* batches_rejected = nullptr;   ///< 1 cell
    obs::Counter* mails_routed = nullptr;       ///< cell = sender shard
    obs::Counter* mails_cross_shard = nullptr;  ///< cell = sender shard
    obs::Counter* mails_dropped = nullptr;      ///< 1 cell
    obs::Counter* frontier_requests = nullptr;  ///< cell = requester shard
    obs::Counter* frontier_nodes_forwarded = nullptr;
    obs::Counter* duplicates_dropped = nullptr;  ///< cell = dropping shard
    obs::Counter* events_homed = nullptr;        ///< cell = home shard
    obs::Counter* events_shed = nullptr;         ///< cell = down home shard
    obs::Counter* sends_shed = nullptr;          ///< cell = destination
    obs::Gauge* job_depth = nullptr;        ///< per-shard inbox depth
    obs::Gauge* job_highwater = nullptr;
    obs::Gauge* mail_depth = nullptr;
    obs::Gauge* mail_highwater = nullptr;
    obs::Histogram* stage_sync = nullptr;   ///< cell 0 (always recorded)
    obs::Histogram* stage_merge = nullptr;  ///< per-shard (always recorded)
    obs::Histogram* stage_encode = nullptr;
    obs::Histogram* stage_append = nullptr;
    obs::Histogram* stage_sample = nullptr;
    obs::Histogram* stage_frontier_wait = nullptr;
    obs::Histogram* stage_frontier_serve = nullptr;
    obs::Histogram* stage_propagate = nullptr;
    obs::Histogram* stage_route = nullptr;
    obs::Histogram* stage_idle = nullptr;
    obs::Histogram* stage_finalize = nullptr;
  };
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Instruments ins_;
  bool stage_metrics_ = true;
};

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_SHARDED_ENGINE_H_
