// The sharded serving engine — AsyncPipeline scaled out across a node
// partition (paper §3.6: "APAN can be deployed on distributed streaming
// systems ... mails may arrive out of order", which the sort-on-read
// mailbox absorbs).
//
// A ShardRouter hash-partitions the node space into N shards. Each shard
// exclusively owns its nodes' mailbox rows and z(t−) memory rows, has a
// bounded inbox of batch jobs, and runs one propagation worker. The
// division of labour per batch:
//
//   Synchronous link (InferBatch, what the caller waits for)
//     · the batch's unique nodes are split by owner shard and encoded
//       concurrently on a thread pool — each encode touches only its
//       shard's rows, under that shard's state lock;
//     · link scores are decoded on the calling thread and returned.
//
//   Asynchronous link (per-shard workers, off the latency path)
//     · every event is homed on its source endpoint's shard; the home
//       shard computes the event's mail (φ) and samples its k-hop
//       fan-out (N) — shards sample a batch concurrently;
//     · each resulting MailDelivery and z(t−) write-back is *routed* to
//       its recipient's owner shard as a ShardPartial message. Cross-shard
//       mail therefore arrives interleaved with other shards' traffic —
//       out of order by construction;
//     · a recipient shard reassembles a batch once partials from all N
//       shards have arrived, then applies state updates and mail to its
//       rows in global event order (sequence tags), restoring exactly the
//       per-node delivery order of the single-worker AsyncPipeline;
//     · the last shard to finish sampling a batch appends the batch's
//       events to the temporal graph and opens the next graph epoch —
//       batch sampling is bulk-synchronous over epochs, so neighborhoods
//       always reflect the graph at batch start.
//
// Determinism: because per-node delivery order and ρ-reduction are
// reconstructed exactly, the final mailbox timestamps and counts after
// Flush() are bitwise-identical to the single-worker AsyncPipeline on the
// same stream (mail *payloads* agree up to floating-point summation
// order; tests/serve_sharded_test.cc asserts both).
//
// Deadlock freedom: batch-job inboxes are bounded (back-pressure on the
// caller), but shard-to-shard mail is unbounded — if mail pushes could
// block, two shards flooding each other would deadlock.

#ifndef APAN_SERVE_SHARDED_ENGINE_H_
#define APAN_SERVE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/apan_model.h"
#include "serve/shard_router.h"
#include "util/bounded_queue.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace apan {
namespace serve {

/// \brief Runs one ApanModel behind an N-shard partition of the node
/// space: per-shard mailbox/memory ownership, per-shard propagation
/// workers, cross-shard mail routing.
class ShardedEngine {
 public:
  struct Options {
    int num_shards = 4;
    /// Maximum in-flight batches per shard before InferBatch applies the
    /// overflow policy.
    size_t queue_capacity = 256;
    /// kBlock waits for space. Any drop policy drops the *incoming* batch
    /// whole (a partially enqueued batch would wedge the cross-shard
    /// reassembly barrier); kDropOldest degrades to dropping the incoming
    /// batch for the same reason.
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Threads encoding shard slices on the synchronous link; 0 means one
    /// per shard.
    size_t encode_threads = 0;
  };

  /// `model` must outlive the engine and must not be used concurrently by
  /// other threads while the engine is running. Requires
  /// PropagationSampling::kMostRecent (kUniform draws from a shared RNG,
  /// which shard-concurrent sampling would race on).
  ShardedEngine(core::ApanModel* model, Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  struct InferenceResult {
    /// P(edge) per event, from the link decoder.
    std::vector<float> scores;
    /// Wall-clock milliseconds of the synchronous path for this batch.
    double sync_millis = 0.0;
  };

  /// \brief Scores a batch of interactions on the synchronous link
  /// (shard-parallel encoding) and enqueues the per-shard asynchronous
  /// work. Events must arrive in non-decreasing time order across calls;
  /// concurrent callers are serialized. \return Cancelled after Shutdown.
  Result<InferenceResult> InferBatch(const std::vector<graph::Event>& events);

  /// Blocks until every accepted batch has been sampled, routed, and
  /// applied on every shard.
  void Flush();

  /// Drains all accepted work, then stops the workers (idempotent; also
  /// called by the destructor). Shutdown never loses accepted mail.
  void Shutdown();

  struct Stats {
    int64_t batches_ingested = 0;
    /// Batches fully applied on every shard.
    int64_t batches_propagated = 0;
    /// MailDeliveries routed shard→shard (hop-0 plus reduced).
    int64_t mails_routed = 0;
    /// Subset of mails_routed whose sender and owner shards differ.
    int64_t mails_cross_shard = 0;
    /// Interaction records dropped whole by the overflow policy.
    int64_t mails_dropped = 0;
  };
  Stats stats() const;

  const ShardRouter& router() const { return router_; }
  /// Latency of the synchronous path per batch (what the user waits for).
  const LatencyRecorder& sync_latency() const { return sync_latency_; }
  /// Latency of per-shard batch application (merge + mailbox append).
  const LatencyRecorder& async_latency() const { return async_latency_; }

 private:
  /// One routed z(t−) write-back; sequence = 2 * event index + endpoint.
  struct StateUpdate {
    int64_t sequence = 0;
    graph::NodeId node = -1;
    std::vector<float> z;
  };

  /// Shared per-batch bookkeeping: the sampling barrier (last shard to
  /// finish appends the events and opens the next epoch) and the apply
  /// barrier (last shard to apply completes the batch).
  struct BatchContext {
    int64_t batch = 0;
    std::vector<graph::Event> events;
    std::atomic<int> sampling_remaining{0};
    std::atomic<int> apply_remaining{0};
  };

  /// One shard's slice of one batch's propagation output, addressed to
  /// one recipient shard. Sent for every (sender, recipient, batch)
  /// triple — empty slices included — so the recipient can detect batch
  /// completion by counting senders.
  struct ShardPartial {
    std::shared_ptr<BatchContext> ctx;
    int from_shard = 0;
    std::vector<StateUpdate> state_updates;
    std::vector<core::PartialPropagation::TaggedDelivery> hop0;
    std::vector<core::PartialPropagation::PartialReduce> partial;
  };

  /// A batch's home-events slice for one shard.
  struct BatchJob {
    std::shared_ptr<BatchContext> ctx;
    std::vector<core::InteractionRecord> records;
    std::vector<int64_t> event_index;  ///< Global batch positions.
  };

  struct Shard {
    /// Guards this shard's rows of the mailbox and the z(t−) table.
    std::mutex state_mu;

    /// Inbox. Jobs are bounded by Options::queue_capacity (client
    /// back-pressure); mail is unbounded (see deadlock note above).
    std::mutex mu;
    std::condition_variable cv;
    std::deque<BatchJob> jobs;
    std::deque<ShardPartial> mail;
    size_t jobs_in_flight = 0;  ///< Queued + running; guarded by mu.
    bool closed = false;

    /// Worker-local per-batch reassembly (worker thread only).
    std::map<int64_t, std::vector<ShardPartial>> pending;
    int64_t next_merge = 0;

    std::thread worker;
  };

  void WorkerLoop(int shard_id);
  void ProcessJob(int shard_id, BatchJob job);
  void OnMail(int shard_id, ShardPartial partial);
  void ApplyMergedBatch(int shard_id, std::vector<ShardPartial> parts);
  void RouteMail(int from_shard, BatchJob& job,
                 core::PartialPropagation&& propagation);

  core::ApanModel* model_;
  Options options_;
  ShardRouter router_;
  ThreadPool encode_pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes InferBatch callers (stream-order contract) and guards the
  /// shutdown flag + batch sequencing.
  std::mutex infer_mu_;
  bool shutdown_ = false;
  int64_t next_batch_ = 0;

  /// Serializes Shutdown callers end-to-end.
  std::mutex shutdown_mu_;
  bool joined_ = false;  ///< Guarded by shutdown_mu_.

  /// Graph epoch = number of batches appended. A worker samples batch b
  /// only once epoch_ reaches b, making the asynchronous link
  /// bulk-synchronous over batches: sampling never overlaps an append.
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  int64_t epoch_ = 0;

  /// Outstanding work legs for Flush: each accepted batch contributes
  /// num_shards sampling legs + num_shards application legs.
  mutable std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  int64_t inflight_ = 0;
  Stats stats_;  ///< Guarded by flush_mu_.

  LatencyRecorder sync_latency_;
  LatencyRecorder async_latency_;
};

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_SHARDED_ENGINE_H_
