#include "serve/wire.h"

#include <bit>
#include <cstring>

namespace apan {
namespace serve {
namespace wire {

namespace {

// Payload kind tags. Values are part of the wire format — append only.
constexpr uint8_t kShardPartialKind = 1;
constexpr uint8_t kFrontierRequestKind = 2;
constexpr uint8_t kFrontierResponseKind = 3;
// A coalesced batch of single-message payloads (never nested).
constexpr uint8_t kBatchKind = 4;

// ---- Little-endian writers -------------------------------------------------

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF32(std::vector<uint8_t>* out, float v) {
  PutU32(out, std::bit_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutF32Vec(std::vector<uint8_t>* out, const std::vector<float>& v) {
  PutU64(out, v.size());
  for (const float x : v) PutF32(out, x);
}

void PutDelivery(std::vector<uint8_t>* out, const core::MailDelivery& d) {
  PutI64(out, d.recipient);
  PutF32Vec(out, d.mail);
  PutF64(out, d.timestamp);
  PutI64(out, d.contributions);
}

// ---- Bounds-checked reader -------------------------------------------------

Status Truncated(const char* what) {
  return Status::IoError(
      internal::StrCat("wire: truncated payload reading ", what));
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* v, const char* what) {
    if (remaining() < 1) return Truncated(what);
    *v = data_[pos_++];
    return Status::OK();
  }

  Status ReadU64(uint64_t* v, const char* what) {
    if (remaining() < 8) return Truncated(what);
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    *v = x;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v, const char* what) {
    if (remaining() < 4) return Truncated(what);
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    *v = x;
    return Status::OK();
  }

  Status ReadI64(int64_t* v, const char* what) {
    uint64_t u = 0;
    APAN_RETURN_NOT_OK(ReadU64(&u, what));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status ReadI32(int32_t* v, const char* what) {
    uint32_t u = 0;
    APAN_RETURN_NOT_OK(ReadU32(&u, what));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }

  Status ReadF64(double* v, const char* what) {
    uint64_t u = 0;
    APAN_RETURN_NOT_OK(ReadU64(&u, what));
    *v = std::bit_cast<double>(u);
    return Status::OK();
  }

  Status ReadF32(float* v, const char* what) {
    uint32_t u = 0;
    APAN_RETURN_NOT_OK(ReadU32(&u, what));
    *v = std::bit_cast<float>(u);
    return Status::OK();
  }

  /// Hands out the next `n` bytes as a view without copying (batch
  /// elements decode in place from the enclosing payload).
  Status ReadSpan(size_t n, std::span<const uint8_t>* out, const char* what) {
    if (remaining() < n) return Truncated(what);
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Reads a vector count and validates it against the bytes remaining:
  /// a count claiming more than remaining()/min_element_bytes elements
  /// cannot be satisfied, so it is rejected *before* any allocation (a
  /// corrupt count must not drive a huge reserve).
  Status ReadCount(uint64_t* count, size_t min_element_bytes,
                   const char* what) {
    APAN_RETURN_NOT_OK(ReadU64(count, what));
    const uint64_t cap =
        min_element_bytes == 0
            ? static_cast<uint64_t>(remaining())
            : static_cast<uint64_t>(remaining()) / min_element_bytes;
    if (*count > cap) {
      return Status::IoError(internal::StrCat(
          "wire: corrupt count for ", what, " (", *count, " elements, ",
          remaining(), " bytes left)"));
    }
    return Status::OK();
  }

  Status ReadF32Vec(std::vector<float>* v, const char* what) {
    uint64_t count = 0;
    APAN_RETURN_NOT_OK(ReadCount(&count, 4, what));
    v->resize(static_cast<size_t>(count));
    for (auto& x : *v) APAN_RETURN_NOT_OK(ReadF32(&x, what));
    return Status::OK();
  }

  Status ReadDelivery(core::MailDelivery* d) {
    APAN_RETURN_NOT_OK(ReadI64(&d->recipient, "delivery.recipient"));
    APAN_RETURN_NOT_OK(ReadF32Vec(&d->mail, "delivery.mail"));
    APAN_RETURN_NOT_OK(ReadF64(&d->timestamp, "delivery.timestamp"));
    APAN_RETURN_NOT_OK(ReadI64(&d->contributions, "delivery.contributions"));
    return Status::OK();
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// ---- Per-kind bodies -------------------------------------------------------

void EncodeBody(std::vector<uint8_t>* out, const ShardPartial& m) {
  PutI64(out, m.batch);
  PutI32(out, m.from_shard);
  PutU64(out, m.state_updates.size());
  for (const StateUpdate& u : m.state_updates) {
    PutI64(out, u.sequence);
    PutI64(out, u.node);
    PutF32Vec(out, u.z);
  }
  PutU64(out, m.hop0.size());
  for (const core::PartialPropagation::TaggedDelivery& t : m.hop0) {
    PutI64(out, t.sequence);
    PutDelivery(out, t.delivery);
  }
  PutU64(out, m.partial.size());
  for (const core::PartialPropagation::PartialReduce& p : m.partial) {
    PutI64(out, p.recipient);
    PutF32Vec(out, p.sum);
    PutF64(out, p.newest);
    PutI64(out, p.count);
  }
}

Status DecodeBody(Reader* r, ShardPartial* m) {
  APAN_RETURN_NOT_OK(r->ReadI64(&m->batch, "partial.batch"));
  APAN_RETURN_NOT_OK(r->ReadI32(&m->from_shard, "partial.from_shard"));
  uint64_t count = 0;
  // Min element sizes are each struct's fixed fields plus its empty
  // vectors' count words.
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 24, "partial.state_updates"));
  m->state_updates.resize(static_cast<size_t>(count));
  for (StateUpdate& u : m->state_updates) {
    APAN_RETURN_NOT_OK(r->ReadI64(&u.sequence, "state_update.sequence"));
    APAN_RETURN_NOT_OK(r->ReadI64(&u.node, "state_update.node"));
    APAN_RETURN_NOT_OK(r->ReadF32Vec(&u.z, "state_update.z"));
  }
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 40, "partial.hop0"));
  m->hop0.resize(static_cast<size_t>(count));
  for (core::PartialPropagation::TaggedDelivery& t : m->hop0) {
    APAN_RETURN_NOT_OK(r->ReadI64(&t.sequence, "hop0.sequence"));
    APAN_RETURN_NOT_OK(r->ReadDelivery(&t.delivery));
  }
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 32, "partial.partial"));
  m->partial.resize(static_cast<size_t>(count));
  for (core::PartialPropagation::PartialReduce& p : m->partial) {
    APAN_RETURN_NOT_OK(r->ReadI64(&p.recipient, "reduce.recipient"));
    APAN_RETURN_NOT_OK(r->ReadF32Vec(&p.sum, "reduce.sum"));
    APAN_RETURN_NOT_OK(r->ReadF64(&p.newest, "reduce.newest"));
    APAN_RETURN_NOT_OK(r->ReadI64(&p.count, "reduce.count"));
  }
  return Status::OK();
}

void EncodeBody(std::vector<uint8_t>* out, const FrontierRequest& m) {
  PutI64(out, m.batch);
  PutI32(out, m.hop);
  PutI32(out, m.from_shard);
  PutI64(out, m.ordinal_limit);
  PutI64(out, m.fanout);
  PutU64(out, m.items.size());
  for (const FrontierItem& item : m.items) {
    PutI64(out, item.slot);
    PutI64(out, item.node);
    PutF64(out, item.before_time);
  }
}

Status DecodeBody(Reader* r, FrontierRequest* m) {
  APAN_RETURN_NOT_OK(r->ReadI64(&m->batch, "request.batch"));
  APAN_RETURN_NOT_OK(r->ReadI32(&m->hop, "request.hop"));
  APAN_RETURN_NOT_OK(r->ReadI32(&m->from_shard, "request.from_shard"));
  APAN_RETURN_NOT_OK(r->ReadI64(&m->ordinal_limit, "request.ordinal_limit"));
  APAN_RETURN_NOT_OK(r->ReadI64(&m->fanout, "request.fanout"));
  uint64_t count = 0;
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 24, "request.items"));
  m->items.resize(static_cast<size_t>(count));
  for (FrontierItem& item : m->items) {
    APAN_RETURN_NOT_OK(r->ReadI64(&item.slot, "item.slot"));
    APAN_RETURN_NOT_OK(r->ReadI64(&item.node, "item.node"));
    APAN_RETURN_NOT_OK(r->ReadF64(&item.before_time, "item.before_time"));
  }
  return Status::OK();
}

void EncodeBody(std::vector<uint8_t>* out, const FrontierResponse& m) {
  PutI64(out, m.batch);
  PutI32(out, m.hop);
  PutI32(out, m.from_shard);
  PutU64(out, m.slots.size());
  for (const int64_t slot : m.slots) PutI64(out, slot);
  PutU64(out, m.neighbors.size());
  for (const std::vector<graph::TemporalNeighbor>& row : m.neighbors) {
    PutU64(out, row.size());
    for (const graph::TemporalNeighbor& n : row) {
      PutI64(out, n.node);
      PutI64(out, n.edge_id);
      PutF64(out, n.timestamp);
    }
  }
}

Status DecodeBody(Reader* r, FrontierResponse* m) {
  APAN_RETURN_NOT_OK(r->ReadI64(&m->batch, "response.batch"));
  APAN_RETURN_NOT_OK(r->ReadI32(&m->hop, "response.hop"));
  APAN_RETURN_NOT_OK(r->ReadI32(&m->from_shard, "response.from_shard"));
  uint64_t count = 0;
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 8, "response.slots"));
  m->slots.resize(static_cast<size_t>(count));
  for (int64_t& slot : m->slots) {
    APAN_RETURN_NOT_OK(r->ReadI64(&slot, "response.slot"));
  }
  APAN_RETURN_NOT_OK(r->ReadCount(&count, 8, "response.neighbors"));
  m->neighbors.resize(static_cast<size_t>(count));
  for (std::vector<graph::TemporalNeighbor>& row : m->neighbors) {
    uint64_t row_count = 0;
    APAN_RETURN_NOT_OK(r->ReadCount(&row_count, 24, "response.row"));
    row.resize(static_cast<size_t>(row_count));
    for (graph::TemporalNeighbor& n : row) {
      APAN_RETURN_NOT_OK(r->ReadI64(&n.node, "neighbor.node"));
      APAN_RETURN_NOT_OK(r->ReadI64(&n.edge_id, "neighbor.edge_id"));
      APAN_RETURN_NOT_OK(r->ReadF64(&n.timestamp, "neighbor.timestamp"));
    }
  }
  return Status::OK();
}

}  // namespace

namespace {

void EncodePayloadTo(const ShardMessage& message, std::vector<uint8_t>* out) {
  if (const auto* partial = std::get_if<ShardPartial>(&message)) {
    PutU8(out, kShardPartialKind);
    EncodeBody(out, *partial);
  } else if (const auto* request = std::get_if<FrontierRequest>(&message)) {
    PutU8(out, kFrontierRequestKind);
    EncodeBody(out, *request);
  } else {
    PutU8(out, kFrontierResponseKind);
    EncodeBody(out, std::get<FrontierResponse>(message));
  }
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const ShardMessage& message) {
  std::vector<uint8_t> out;
  EncodePayloadTo(message, &out);
  return out;
}

Result<ShardMessage> DecodeMessage(std::span<const uint8_t> payload) {
  Reader reader(payload);
  uint8_t kind = 0;
  APAN_RETURN_NOT_OK(reader.ReadU8(&kind, "kind"));
  ShardMessage message;
  switch (kind) {
    case kShardPartialKind: {
      ShardPartial m;
      APAN_RETURN_NOT_OK(DecodeBody(&reader, &m));
      message = std::move(m);
      break;
    }
    case kFrontierRequestKind: {
      FrontierRequest m;
      APAN_RETURN_NOT_OK(DecodeBody(&reader, &m));
      message = std::move(m);
      break;
    }
    case kFrontierResponseKind: {
      FrontierResponse m;
      APAN_RETURN_NOT_OK(DecodeBody(&reader, &m));
      message = std::move(m);
      break;
    }
    default:
      return Status::IoError(internal::StrCat(
          "wire: unknown message kind ", static_cast<int>(kind)));
  }
  if (reader.remaining() != 0) {
    return Status::IoError(internal::StrCat(
        "wire: ", reader.remaining(), " trailing bytes after message"));
  }
  return message;
}

void AppendFrame(const ShardMessage& message, std::vector<uint8_t>* out) {
  // Encode the payload straight into `out` after a length slot that is
  // patched afterwards — the frame is built once, with no intermediate
  // payload buffer to copy (Send hits this for every cross-shard message).
  const size_t header_at = out->size();
  PutU32(out, 0);
  EncodePayloadTo(message, out);
  const size_t payload_size = out->size() - header_at - kFrameHeaderBytes;
  APAN_CHECK_MSG(payload_size <= kMaxPayloadBytes,
                 "wire: frame payload exceeds kMaxPayloadBytes");
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload_size >> (8 * i));
  }
}

void AppendBatchFrame(std::span<const ShardMessage> messages,
                      std::vector<uint8_t>* out) {
  APAN_CHECK_MSG(!messages.empty(), "wire: batch frame needs >= 1 message");
  if (messages.size() == 1) {
    AppendFrame(messages.front(), out);  // dominant case, byte-identical
    return;
  }
  const size_t header_at = out->size();
  PutU32(out, 0);
  PutU8(out, kBatchKind);
  PutU64(out, messages.size());
  for (const ShardMessage& message : messages) {
    const size_t inner_at = out->size();
    PutU32(out, 0);
    EncodePayloadTo(message, out);
    const size_t inner_size = out->size() - inner_at - kFrameHeaderBytes;
    APAN_CHECK_MSG(inner_size <= kMaxPayloadBytes,
                   "wire: batch element exceeds kMaxPayloadBytes");
    for (int i = 0; i < 4; ++i) {
      (*out)[inner_at + static_cast<size_t>(i)] =
          static_cast<uint8_t>(inner_size >> (8 * i));
    }
  }
  const size_t payload_size = out->size() - header_at - kFrameHeaderBytes;
  APAN_CHECK_MSG(payload_size <= kMaxPayloadBytes,
                 "wire: batch frame payload exceeds kMaxPayloadBytes");
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload_size >> (8 * i));
  }
}

Result<std::vector<ShardMessage>> DecodeMessages(
    std::span<const uint8_t> payload) {
  if (payload.empty()) {
    return Status::IoError("wire: empty payload");
  }
  std::vector<ShardMessage> messages;
  if (payload.front() != kBatchKind) {
    Result<ShardMessage> single = DecodeMessage(payload);
    APAN_RETURN_NOT_OK(single.status());
    messages.push_back(std::move(*single));
    return messages;
  }
  Reader reader(payload);
  uint8_t kind = 0;
  APAN_RETURN_NOT_OK(reader.ReadU8(&kind, "batch.kind"));
  uint64_t count = 0;
  // Each element is at least a length word plus a kind byte.
  APAN_RETURN_NOT_OK(
      reader.ReadCount(&count, kFrameHeaderBytes + 1, "batch.count"));
  if (count == 0) {
    return Status::IoError("wire: empty batch frame");
  }
  messages.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    APAN_RETURN_NOT_OK(reader.ReadU32(&length, "batch.element_length"));
    if (length == 0 || length > kMaxPayloadBytes) {
      return Status::IoError(internal::StrCat(
          "wire: corrupt batch element length ", length));
    }
    std::span<const uint8_t> element;
    APAN_RETURN_NOT_OK(reader.ReadSpan(length, &element, "batch.element"));
    // DecodeMessage rejects kBatchKind as unknown, so batches never nest.
    Result<ShardMessage> message = DecodeMessage(element);
    APAN_RETURN_NOT_OK(message.status());
    messages.push_back(std::move(*message));
  }
  if (reader.remaining() != 0) {
    return Status::IoError(internal::StrCat(
        "wire: ", reader.remaining(), " trailing bytes after batch"));
  }
  return messages;
}

Result<uint32_t> DecodeFrameLength(
    std::span<const uint8_t, kFrameHeaderBytes> header) {
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(header[static_cast<size_t>(i)])
              << (8 * i);
  }
  if (length == 0) {
    return Status::IoError("wire: zero-length frame payload");
  }
  if (length > kMaxPayloadBytes) {
    return Status::IoError(internal::StrCat(
        "wire: frame payload of ", length, " bytes exceeds the ",
        kMaxPayloadBytes, "-byte cap"));
  }
  return length;
}

}  // namespace wire
}  // namespace serve
}  // namespace apan
